//! Umbrella crate of the YaskSite reproduction: re-exports every
//! workspace crate under one roof so the `examples/` can be written
//! against a single dependency. See the README for the architecture and
//! `DESIGN.md` for the experiment index.

#![forbid(unsafe_code)]

pub use offsite;
pub use yasksite;
pub use yasksite_arch as arch;
pub use yasksite_ecm as ecm;
pub use yasksite_engine as engine;
pub use yasksite_grid as grid;
pub use yasksite_memsim as memsim;
pub use yasksite_ode as ode;
pub use yasksite_stencil as stencil;
