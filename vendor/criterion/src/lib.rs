//! Hermetic stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this crate provides the registration API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher`, `Throughput`, `BenchmarkId`) with drastically simplified
//! semantics: each benchmark body runs a small fixed number of timed
//! iterations and the mean wall-clock time is printed. There is no warmup
//! modelling, no statistics, no plotting, and no `target/criterion`
//! report. The point is that `cargo bench` compiles, runs, and gives a
//! rough number — not that it produces publishable measurements.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark body (tiny on purpose: smoke-run semantics).
const ITERS: u32 = 3;

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` a few times and records the mean wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }
}

/// Throughput annotation; accepted and echoed, never used for rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Id with a function-name prefix.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        nanos_per_iter: 0.0,
    };
    f(&mut b);
    let (value, unit) = if b.nanos_per_iter >= 1e6 {
        (b.nanos_per_iter / 1e6, "ms")
    } else if b.nanos_per_iter >= 1e3 {
        (b.nanos_per_iter / 1e3, "us")
    } else {
        (b.nanos_per_iter, "ns")
    };
    println!("bench {label:<40} {value:>10.2} {unit}/iter");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs few iters.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; not used for rate reporting.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The harness entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Final configuration hook (no-op in the stub).
    #[must_use]
    pub fn final_summary(self) -> Self {
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's historic name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
