//! Hermetic stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this crate reimplements the subset of proptest's API that the
//! workspace's property tests use (see `vendor/README.md`):
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, `prop_recursive` and `boxed`;
//! * range, tuple, [`Just`](strategy::Just), `Union` (via [`prop_oneof!`])
//!   and [`collection::vec`] strategies;
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_oneof!`] macros;
//! * [`ProptestConfig`](test_runner::ProptestConfig) with `with_cases`.
//!
//! Semantics differ from upstream in two deliberate ways: generation is
//! **deterministic** (a fixed seed, overridable with the `PROPTEST_SEED`
//! environment variable, with the case count overridable via
//! `PROPTEST_CASES`) so CI runs are reproducible, and there is **no
//! shrinking** — a failing case reports its seed and case number instead.
//! `*.proptest-regressions` files are ignored.

pub mod test_runner {
    //! Deterministic RNG, configuration and failure type.

    use std::fmt;

    /// Splitmix64-based RNG: cheap, seedable, good enough for test-case
    /// generation (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG seeded directly.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// RNG for one test case: decorrelates cases under one seed.
        #[must_use]
        pub fn for_case(seed: u64, case: u64) -> Self {
            TestRng::new(seed.wrapping_add(case.wrapping_mul(0xBF58_476D_1CE4_E5B9)))
        }

        /// Next raw 64-bit draw (splitmix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Runner configuration (cases per property, base seed).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Base seed; every case derives its own RNG from it.
        pub seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x5EED_CAFE_F00D_D00D);
            ProptestConfig { cases, seed }
        }
    }

    impl ProptestConfig {
        /// Default configuration with an explicit case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// A failed property case (carried out of the test body by
    /// `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Failure with a message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then with the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategy: `self` generates leaves, `recurse` builds
        /// one level on top of an inner strategy. `depth` levels are
        /// constructed; `_desired_size`/`_expected_branch_size` are
        /// accepted for upstream API compatibility and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut current = self.clone().boxed();
            for _ in 0..depth {
                // Lean toward recursion (2:1) so trees actually grow, while
                // the leaf arm keeps expected size finite.
                current = Union::weighted(vec![
                    (1, self.clone().boxed()),
                    (2, recurse(current).boxed()),
                ])
                .boxed();
            }
            current
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Chooses among boxed alternatives (the engine behind
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total_weight: self.total_weight,
            }
        }
    }

    impl<T> Union<T> {
        /// Uniform choice among `arms`.
        ///
        /// # Panics
        /// Panics if `arms` is empty.
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted choice among `arms`.
        ///
        /// # Panics
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs a non-empty arm list");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights cover the draw range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    #[allow(clippy::cast_possible_truncation)]
                    let u = rng.next_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    #[allow(clippy::cast_possible_truncation)]
                    let u = rng.next_f64() as $t;
                    self.start() + u * (self.end() - self.start())
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: the upstream default also avoids NaN.
            rng.next_f64() * 2e6 - 1e6
        }
    }

    /// Strategy over a type's full (finite) domain.
    #[derive(Debug, Clone, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec()`].
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (inclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` etc. resolve as upstream.
    pub use crate as prop;
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item runs `cases` times with deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        __config.seed,
                        u64::from(__case),
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (seed {}): {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __config.seed,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Property-test assertion: fails the current case (with its seed) rather
/// than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l != *__r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
}

/// Chooses uniformly among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-2i32..=2).generate(&mut rng);
            assert!((-2..=2).contains(&b));
            let c = (-3.0f64..3.0).generate(&mut rng);
            assert!((-3.0..3.0).contains(&c));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec((0u64..100, -1.0f64..1.0), 1..8);
        let a: Vec<_> = (0..16)
            .map(|i| strat.generate(&mut TestRng::for_case(42, i)))
            .collect();
        let b: Vec<_> = (0..16)
            .map(|i| strat.generate(&mut TestRng::for_case(42, i)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from(*v >= 0),
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i32..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(11);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&tree.generate(&mut rng)));
        }
        assert!(max_depth > 1, "recursion never recursed");
        assert!(max_depth <= 5, "depth bound exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The proptest! macro itself wires patterns, strategies and
        /// assertions together.
        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(0u32..50, 0..6), k in 1u32..4) {
            let doubled: Vec<u32> = xs.iter().map(|x| x * k).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            for (d, x) in doubled.iter().zip(&xs) {
                prop_assert!(d % k == 0, "{d} not divisible by {k}");
                prop_assert_eq!(*d, x * k);
            }
        }
    }
}
