//! Hermetic stand-in for the `serde` façade crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so every external dependency is either dropped or replaced by a small
//! in-repo crate with a compatible API surface (see `vendor/README.md`).
//! This crate keeps the `#[derive(Serialize, Deserialize)]` annotations in
//! `yasksite-arch` compiling: the traits are empty markers and the derives
//! emit empty impls. No (de)serialisation is performed anywhere in the
//! workspace today; if a real serialisation format is ever needed, point
//! the workspace `serde` dependency back at crates.io and everything
//! downstream keeps compiling unchanged.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
