//! No-op `Serialize`/`Deserialize` derives for the in-repo serde stand-in.
//!
//! The derive macros locate the name of the annotated `struct`/`enum`
//! (skipping attributes, doc comments and visibility) and emit an empty
//! marker-trait impl. Generic types are not supported — the workspace only
//! derives on concrete machine-model types.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the first `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive(Serialize) on a struct or enum");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input).expect("derive(Deserialize) on a struct or enum");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
