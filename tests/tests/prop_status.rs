//! Properties of the daemon observability layer.
//!
//! Two families:
//!
//! 1. The rolling-window histogram behind the `status` snapshot —
//!    window expiry, merge associativity, percentile monotonicity and
//!    bounded memory, quantified over arbitrary event streams.
//! 2. The daemon path of the telemetry-never-changes-results contract:
//!    the same request script answered with telemetry disabled, fully
//!    recording, or head-sampled must produce bitwise-identical
//!    `tune`/`predict` response lines, while the `status` snapshot and
//!    its Prometheus exposition always validate.

use proptest::prelude::*;
use yasksite::telemetry::json::{self, Json};
use yasksite::telemetry::{Level, RollingHistogram, Telemetry};
use yasksite::{validate_prometheus_text, validate_status_json, ServeConfig, ServeState};

/// One observation stream: `(seconds since epoch, value)` pairs.
fn events() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((0.0f64..600.0), (0.01f64..50_000.0)), 1..64)
}

fn filled(events: &[(f64, f64)]) -> RollingHistogram {
    let mut h = RollingHistogram::for_latency_ms(60.0);
    for &(t, v) in events {
        h.observe_at(t, v);
    }
    h
}

fn max_time(events: &[(f64, f64)]) -> f64 {
    events.iter().map(|&(t, _)| t).fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Everything observed is visible right away; nothing survives a
    /// full window plus one slot of silence.
    #[test]
    fn window_expiry_is_complete(evs in events()) {
        let h = filled(&evs);
        let t = max_time(&evs);
        let now = h.snapshot_at(t);
        prop_assert!(now.count >= 1, "the newest observation is in range");
        prop_assert!(
            now.count <= evs.len() as u64,
            "a snapshot never invents samples"
        );
        let slot = h.window_secs() / h.slot_cap() as f64;
        let later = h.snapshot_at(t + h.window_secs() + slot);
        prop_assert_eq!(later.count, 0, "expired slots leave the window");
        prop_assert_eq!(later.sum.to_bits(), 0.0f64.to_bits());
    }

    /// Merging is associative: sharded collection reassembles to the
    /// same window no matter how the shards were combined.
    #[test]
    fn merge_is_associative(
        evs in events(),
        cut_a in 0usize..64,
        cut_b in 0usize..64,
        query in 0.0f64..700.0,
    ) {
        let a_end = cut_a.min(evs.len());
        let b_end = (a_end + cut_b).min(evs.len());
        let (a, b, c) = (&evs[..a_end], &evs[a_end..b_end], &evs[b_end..]);

        let mut left = filled(a);
        left.merge_from(&filled(b));
        left.merge_from(&filled(c));

        let mut bc = filled(b);
        bc.merge_from(&filled(c));
        let mut right = filled(a);
        right.merge_from(&bc);

        let (ls, rs) = (left.snapshot_at(query), right.snapshot_at(query));
        prop_assert_eq!(&ls.counts, &rs.counts);
        prop_assert_eq!(ls.count, rs.count);
        prop_assert_eq!(ls.sum.to_bits(), rs.sum.to_bits());
        prop_assert_eq!(ls.min.map(f64::to_bits), rs.min.map(f64::to_bits));
        prop_assert_eq!(ls.max.map(f64::to_bits), rs.max.map(f64::to_bits));
    }

    /// Percentile estimates are ordered and finite whenever the window
    /// holds any samples, at every query time.
    #[test]
    fn percentiles_are_monotone(evs in events(), query in 0.0f64..700.0) {
        let h = filled(&evs);
        let snap = h.snapshot_at(query);
        if let Some(p) = snap.percentiles() {
            prop_assert!(p.p50.is_finite() && p.p95.is_finite() && p.p99.is_finite());
            prop_assert!(p.p50 <= p.p95, "p50 {} <= p95 {}", p.p50, p.p95);
            prop_assert!(p.p95 <= p.p99, "p95 {} <= p99 {}", p.p95, p.p99);
            prop_assert!(p.count == snap.count);
        } else {
            prop_assert_eq!(snap.count, 0, "only an empty window lacks percentiles");
        }
    }

    /// The slot map never outgrows its cap, however long and sparse the
    /// stream — the memory bound that makes per-tenant windows safe.
    #[test]
    fn memory_stays_bounded(
        evs in prop::collection::vec(((0.0f64..1.0e6), (0.01f64..100.0)), 1..128),
    ) {
        let mut h = RollingHistogram::for_latency_ms(60.0);
        for &(t, v) in &evs {
            h.observe_at(t, v);
            prop_assert!(h.live_slots() <= h.slot_cap());
        }
        let mut other = RollingHistogram::for_latency_ms(60.0);
        other.merge_from(&h);
        prop_assert!(other.live_slots() <= other.slot_cap());
    }
}

/// Runs the same request script through a fresh daemon state with the
/// given telemetry configuration; returns all response lines.
fn run_script(script: &[String], tel: Telemetry, trace_sample: Option<u64>) -> Vec<String> {
    let mut state = ServeState::new(ServeConfig {
        telemetry: tel,
        trace_sample,
        ..ServeConfig::default()
    });
    script
        .iter()
        .filter_map(|line| state.handle_line(line))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The daemon leg of the PR 3 contract: tracing off, on, or
    /// head-sampled — the `tune` and `predict` answers are bitwise
    /// identical.
    #[test]
    fn daemon_responses_are_identical_under_any_tracing(
        cores in prop_oneof![Just(1usize), Just(2)],
        sample in prop_oneof![Just(Some(0u64)), Just(Some(1)), Just(Some(2))],
    ) {
        let script: Vec<String> = vec![
            format!(
                r#"{{"id":"t1","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","cores":{cores}}}"#
            ),
            r#"{"id":"p1","op":"predict","stencil":"heat-2d-r1","domain":"64x64x1","block":"64x16x1","cores":2}"#.to_string(),
            format!(
                r#"{{"id":"t2","op":"tune","stencil":"heat-2d-r1","domain":"32x32x1","cores":{cores}}}"#
            ),
        ];
        let baseline = run_script(&script, Telemetry::disabled(), None);
        let (tel, _sink) = Telemetry::recording(Level::Debug);
        let recorded = run_script(&script, tel.clone(), None);
        tel.finish();
        let (tel, _sink) = Telemetry::recording(Level::Debug);
        let sampled = run_script(&script, tel.clone(), sample);
        tel.finish();
        prop_assert_eq!(&baseline, &recorded, "recording changed a response");
        prop_assert_eq!(&baseline, &sampled, "head-sampling changed a response");
    }
}

fn body_of(response: &str) -> Json {
    json::parse(response).expect("daemon answers valid JSON")
}

#[test]
fn status_snapshot_and_prometheus_exposition_always_validate() {
    let (tel, _sink) = Telemetry::recording(Level::Debug);
    let mut state = ServeState::new(ServeConfig {
        telemetry: tel,
        trace_sample: Some(1),
        ..ServeConfig::default()
    });
    for i in 0..3 {
        let line = format!(
            r#"{{"id":"t{i}","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","cores":2,"tenant":"acme"}}"#
        );
        state.handle_line(&line).expect("tune answered");
    }
    let status = state
        .handle_line(r#"{"id":"s","op":"status"}"#)
        .expect("status answered");
    let j = body_of(&status);
    let check = validate_status_json(&j).expect("snapshot validates");
    assert!(check.kinds >= 1, "at least the tune kind has a window");
    assert!(check.latency_samples >= 3, "three tunes were sampled");

    let prom = state
        .handle_line(r#"{"id":"pr","op":"status","format":"prom"}"#)
        .expect("prom status answered");
    let j = body_of(&prom);
    let body = j
        .get("body")
        .and_then(Json::as_str)
        .expect("prom response carries the exposition body");
    let samples = validate_prometheus_text(body).expect("exposition validates");
    assert!(samples > 10, "a loaded daemon exports a real metric set");
    assert!(body.contains("yasksite_tier_ran_total{tier="), "{body}");
    assert!(
        body.contains(r#"yasksite_tenant_latency_ms{tenant="acme""#),
        "{body}"
    );
}
