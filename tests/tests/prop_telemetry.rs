//! Telemetry is purely observational: attaching a sink of any kind to a
//! tuning session must never change its outcome. The properties here run
//! the same request with telemetry disabled, with the null sink and with
//! a recording JSONL sink — across strategies, job counts, fault plans
//! and budgets — and require the winner, ranking, provenances and the
//! deterministic [`yasksite::TuneCost`] fields to stay bitwise-identical.
//! The recorded stream itself must be valid schema-v1 JSONL with
//! balanced spans, and the metrics registry must reconcile exactly with
//! the cost ledger the session returned.

use std::sync::Arc;

use proptest::prelude::*;
use yasksite::telemetry::{check_trace, Level, Telemetry};
use yasksite::{
    FaultPlan, PredictionCache, SearchSpace, Solution, TrialBudget, TrialConfig, TuneRequest,
    TuneResult, TuneStrategy,
};
use yasksite_arch::Machine;
use yasksite_stencil::builders::heat2d;

fn setup() -> (Solution, SearchSpace) {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat2d(1), [64, 64, 1], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    (sol, space)
}

/// Runs `req` with a fresh private cache and the given telemetry handle.
fn run_with(
    sol: &Solution,
    space: &SearchSpace,
    req: &TuneRequest,
    jobs: usize,
    tel: Telemetry,
) -> TuneResult {
    let req = req
        .clone()
        .cache(Arc::new(PredictionCache::new()))
        .jobs(jobs)
        .telemetry(tel);
    sol.tune_space_with(space, &req).expect("tuning succeeds")
}

/// The documented determinism guarantee: identical modulo wall time and
/// cache-warmth counters.
fn assert_identical(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.ranked.len(), b.ranked.len());
    for ((pa, sa), (pb, sb)) in a.ranked.iter().zip(b.ranked.iter()) {
        assert_eq!(pa, pb);
        assert_eq!(sa.to_bits(), sb.to_bits());
    }
    assert_eq!(a.provenances, b.provenances);
    let (ca, cb) = (
        a.cost.without_cache_counters().without_wall_clock(),
        b.cost.without_cache_counters().without_wall_clock(),
    );
    assert_eq!(ca.model_evals, cb.model_evals);
    assert_eq!(ca.engine_runs, cb.engine_runs);
    assert_eq!(ca.fallbacks, cb.fallbacks);
    assert_eq!(ca.target_seconds.to_bits(), cb.target_seconds.to_bits());
    assert_eq!(a.budget.runs_used, b.budget.runs_used);
}

/// Counters in a *fresh* telemetry session must agree with the returned
/// cost ledger, field for field.
fn assert_reconciles(tel: &Telemetry, r: &TuneResult) {
    assert_eq!(tel.counter("tune.model_evals"), r.cost.model_evals as u64);
    assert_eq!(tel.counter("tune.engine_runs"), r.cost.engine_runs as u64);
    assert_eq!(tel.counter("tune.cache_hits"), r.cost.cache_hits as u64);
    assert_eq!(tel.counter("tune.cache_misses"), r.cost.cache_misses as u64);
    assert_eq!(tel.counter("tune.fallbacks"), r.cost.fallbacks as u64);
    assert_eq!(tel.counter("trial.fallbacks"), r.trials.fallbacks as u64);
    assert_eq!(tel.counter("trial.retries"), r.trials.retries as u64);
    assert_eq!(tel.spans_opened(), tel.spans_closed(), "balanced spans");
}

fn strategy_from(ix: usize) -> TuneStrategy {
    match ix {
        0 => TuneStrategy::Analytic,
        1 => TuneStrategy::Empirical,
        _ => TuneStrategy::Hybrid { shortlist: 3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core invariant of the observability layer, quantified over
    /// strategy, worker count, fault injection and budget pressure.
    #[test]
    fn telemetry_never_changes_the_tuning_result(
        strategy_ix in 0usize..3,
        jobs in prop_oneof![Just(1usize), Just(2), Just(4)],
        fault_seed in prop_oneof![Just(None), (0u64..1000).prop_map(Some)],
        budget_runs in prop_oneof![Just(None), (1usize..20).prop_map(Some)],
    ) {
        let (sol, space) = setup();
        let mut req = TuneRequest::new(strategy_from(strategy_ix))
            .trial(TrialConfig::single_shot());
        if let Some(seed) = fault_seed {
            req = req.faults(FaultPlan::noisy(seed));
        }
        if let Some(runs) = budget_runs {
            req = req.budget(TrialBudget::runs(runs));
        }

        let baseline = run_with(&sol, &space, &req, jobs, Telemetry::disabled());
        let nulled = run_with(&sol, &space, &req, jobs, Telemetry::null(Level::Debug));
        assert_identical(&baseline, &nulled);

        let (tel, sink) = Telemetry::recording(Level::Debug);
        let recorded = run_with(&sol, &space, &req, jobs, tel.clone());
        assert_identical(&baseline, &recorded);
        assert_reconciles(&tel, &recorded);

        // The stream is valid schema-v1 JSONL with balanced spans.
        let text = sink.lines().join("\n");
        prop_assert!(!text.is_empty(), "recording run must emit events");
        let stats = check_trace(&text).expect("valid balanced trace");
        prop_assert_eq!(stats.spans_opened, stats.spans_closed);
        prop_assert!(stats.spans_opened > 0);
    }
}

#[test]
fn registry_reconciles_with_cost_under_faults_and_budget() {
    let (sol, space) = setup();
    let req = TuneRequest::new(TuneStrategy::Empirical)
        .trial(TrialConfig::default())
        .faults(FaultPlan::noisy(41))
        .budget(TrialBudget::runs(7));
    let (tel, _sink) = Telemetry::recording(Level::Debug);
    let r = run_with(&sol, &space, &req, 1, tel.clone());
    assert_reconciles(&tel, &r);
    assert!(r.budget.exhausted(), "a 7-run budget must run out here");
    assert!(
        tel.counter("budget.exhausted") == 1,
        "exactly one exhaustion flip event"
    );
    assert!(r.cost.fallbacks > 0, "post-exhaustion trials fall back");
}

#[test]
fn every_recorded_line_is_json_with_the_required_keys() {
    let (sol, space) = setup();
    let req =
        TuneRequest::new(TuneStrategy::Hybrid { shortlist: 2 }).trial(TrialConfig::single_shot());
    let (tel, sink) = Telemetry::recording(Level::Debug);
    let _ = run_with(&sol, &space, &req, 2, tel.clone());
    tel.finish();
    let lines = sink.lines();
    assert!(!lines.is_empty());
    for line in &lines {
        let v = yasksite::telemetry::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        assert_eq!(
            v.get("v").and_then(|x| x.as_u64()),
            Some(yasksite::telemetry::SCHEMA_VERSION),
            "{line}"
        );
        assert!(v.get("ev").and_then(|x| x.as_str()).is_some(), "{line}");
        assert!(v.get("t_us").and_then(|x| x.as_u64()).is_some(), "{line}");
    }
    // finish() appended the metric summary lines.
    assert!(
        lines.iter().any(|l| l.contains("\"ev\":\"metric\"")),
        "metric summaries present after finish()"
    );
}
