//! Property tests tying the simulator to physical lower/upper bounds for
//! arbitrary stencil configurations.

use proptest::prelude::*;
use xtests::seeded_grid;
use yasksite_arch::Machine;
use yasksite_engine::{apply_simulated, SimContext, TuningParams};
use yasksite_grid::{Fold, Grid3};
use yasksite_stencil::builders::star3d;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cold sweep's memory reads are bounded below by the compulsory
    /// input footprint and above by the total issued accesses; writes
    /// never exceed the lines the output occupies (plus eviction slack).
    #[test]
    fn traffic_within_physical_bounds(
        r in 1usize..3,
        nx in 16usize..48,
        ny in 8usize..24,
        nz in 4usize..16,
        by in 2usize..16,
        bz in 2usize..16,
        cores in 1usize..4,
    ) {
        let m = Machine::cascade_lake();
        let s = star3d(r, &vec![0.25; r + 1]);
        let fold = Fold::new(8, 1, 1);
        let n = [nx, ny, nz];
        let u = seeded_grid("u", n, [r, r, r], fold, 5);
        let o = Grid3::new("o", n, [r, r, r], fold);
        let p = TuningParams::new([nx, by, bz], fold).threads(cores);
        let mut ctx = SimContext::new(&m, cores);
        apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
        let st = ctx.finish().stats;

        // Lower bound: every distinct input line must be fetched once.
        let input_lines = (u.bytes() / 64) as u64;
        // The traversal touches at most the allocated lines of both grids
        // once each... per block-halo reload; accesses is a hard ceiling.
        prop_assert!(st.mem_read_lines >= input_lines / 2, "reads {} < {}", st.mem_read_lines, input_lines / 2);
        prop_assert!(st.mem_read_lines <= st.accesses);
        // Writebacks cannot exceed all dirty lines ever created.
        let output_lines = (o.bytes() / 64) as u64;
        prop_assert!(st.mem_write_lines <= output_lines + input_lines);
        // Boundary monotonicity: inner boundaries carry at least what
        // crosses the memory interface.
        prop_assert!(st.boundary_total(0) >= st.boundary_total(2));
    }

    /// The per-core split covers all work: every active core issues
    /// accesses when there are at least as many blocks as cores.
    #[test]
    fn every_core_participates(
        ny in 16usize..32,
        nz in 16usize..32,
        cores in 2usize..6,
    ) {
        let m = Machine::cascade_lake();
        let s = star3d(1, &[0.5, 0.1]);
        let fold = Fold::new(8, 1, 1);
        let n = [16, ny, nz];
        let u = seeded_grid("u", n, [1, 1, 1], fold, 9);
        let o = Grid3::new("o", n, [1, 1, 1], fold);
        let p = TuningParams::new([16, 4, 4], fold).threads(cores);
        let mut ctx = SimContext::new(&m, cores);
        apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
        let st = ctx.finish().stats;
        for c in 0..cores {
            prop_assert!(st.boundary_lines[0][c] > 0, "core {c} got no work");
        }
    }
}
