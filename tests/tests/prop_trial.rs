//! Property-based tests of the fault-tolerant trial layer and the tuners
//! built on it: under *any* seeded fault plan the public tuning API must
//! terminate, never panic, never emit a non-finite estimate, and label
//! every result with accurate provenance.

use proptest::prelude::*;
use yasksite::{
    run_trial, FallbackReason, FaultPlan, FaultyBackend, MeasureBackend, OnlineTuner, Provenance,
    SearchSpace, Solution, ToolError, TrialBudget, TrialConfig, TuneStrategy,
};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::builders::heat2d;

/// A fast deterministic measurement landscape: no simulation, just a
/// smooth function of the block so tuner properties run in microseconds.
struct Synthetic;

impl MeasureBackend for Synthetic {
    fn run_sample(&mut self, params: &TuningParams) -> Result<f64, ToolError> {
        let [bx, by, bz] = params.block;
        Ok(1e-3 * (1.0 + 8.0 / by as f64 + bz as f64 / 64.0 + bx as f64 * 1e-6))
    }
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    let mixed = (
        any::<u64>(),
        0.0f64..0.9,
        0.0f64..0.3,
        0.0f64..0.5,
        1.0f64..16.0,
    )
        .prop_map(
            |(seed, fail_prob, nan_prob, spike_prob, spike_factor)| FaultPlan {
                seed,
                fail_prob,
                nan_prob,
                spike_prob,
                spike_factor,
                ..FaultPlan::none()
            },
        );
    prop_oneof![
        3 => mixed,
        1 => any::<u64>().prop_map(FaultPlan::always_fail),
        1 => Just(FaultPlan::none()),
    ]
}

fn arb_cfg() -> impl Strategy<Value = TrialConfig> {
    (0usize..3, 1usize..6, 0usize..4).prop_map(|(warmup, samples, max_retries)| TrialConfig {
        warmup,
        samples,
        max_retries,
        ..TrialConfig::default()
    })
}

fn small_setup() -> (Solution, SearchSpace, TuningParams) {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat2d(1), [64, 64, 1], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    let template = TuningParams::new([64, 8, 1], Fold::new(8, 1, 1)).threads(1);
    (sol, space, template)
}

proptest! {
    /// `run_trial` never fails, never returns a non-finite estimate, and
    /// its provenance matches what actually happened.
    #[test]
    fn trial_is_total_and_honest(plan in arb_plan(), cfg in arb_cfg()) {
        let params = TuningParams::new([32, 8, 1], Fold::new(8, 1, 1));
        let fallback = 0.125;
        let mut budget = TrialBudget::unlimited();
        let mut backend = FaultyBackend::new(Synthetic, plan);
        let r = run_trial(&mut backend, &params, fallback, &cfg, &mut budget);

        prop_assert!(r.seconds_per_sweep.is_finite() && r.seconds_per_sweep > 0.0);
        prop_assert!(r.retries <= cfg.max_retries);
        prop_assert!(r.samples.len() <= cfg.samples);
        match r.provenance {
            Provenance::Measured => prop_assert_eq!(r.retries, 0),
            Provenance::Retried { retries } => {
                prop_assert_eq!(retries, r.retries);
                prop_assert!(retries > 0);
            }
            Provenance::PredictedFallback { reason } => {
                // Fallback means no usable sample survived; the estimate
                // is exactly the analytic prediction.
                prop_assert_eq!(r.seconds_per_sweep.to_bits(), fallback.to_bits());
                prop_assert_eq!(r.kept, 0);
                prop_assert_eq!(reason, FallbackReason::AllSamplesFailed);
            }
        }
        if !r.provenance.is_fallback() {
            prop_assert!(r.kept >= 1);
            prop_assert_eq!(r.kept + r.rejected, r.samples.len());
        }
        // A guaranteed-hostile plan must always fall back.
        if plan.fail_prob >= 1.0 {
            prop_assert!(r.provenance.is_fallback());
        }
    }

    /// Identical seeds reproduce trials bit-for-bit.
    #[test]
    fn trials_are_deterministic(plan in arb_plan(), cfg in arb_cfg()) {
        let params = TuningParams::new([32, 8, 1], Fold::new(8, 1, 1));
        let once = |()| {
            let mut budget = TrialBudget::unlimited();
            let mut backend = FaultyBackend::new(Synthetic, plan);
            run_trial(&mut backend, &params, 0.125, &cfg, &mut budget)
        };
        let (a, b) = (once(()), once(()));
        prop_assert_eq!(a.seconds_per_sweep.to_bits(), b.seconds_per_sweep.to_bits());
        prop_assert_eq!(a.provenance, b.provenance);
        prop_assert_eq!(a.attempts, b.attempts);
        prop_assert_eq!(a.samples.len(), b.samples.len());
    }

    /// The online tuner terminates under any fault plan, returns a
    /// configuration from its own lattice, and accounts for every trial.
    #[test]
    fn online_tuner_survives_any_fault_plan(plan in arb_plan(), cfg in arb_cfg()) {
        let (sol, space, template) = small_setup();
        let mut tuner = OnlineTuner::new(&space, template).unwrap();
        let mut backend = FaultyBackend::new(Synthetic, plan);
        let mut budget = TrialBudget::unlimited();
        let best = tuner
            .run_to_convergence(&sol, &mut backend, &cfg, &mut budget)
            .expect("tuning is total under faults");

        // The pick is a real lattice point.
        let in_lattice = space
            .blocks()
            .iter()
            .any(|b| b[1] == best.block[1] && b[2] == best.block[2]);
        prop_assert!(in_lattice, "{:?} not in lattice", best.block);
        prop_assert!(tuner.trials() > 0);
        prop_assert!(tuner.trials() <= tuner.lattice_size());
        let s = tuner.summary();
        prop_assert_eq!(s.trials, tuner.trials());
        prop_assert!(s.fallbacks <= s.trials);
        let prov = tuner.best_provenance().expect("winner was recorded");
        if plan.fail_prob >= 1.0 {
            prop_assert!(prov.is_fallback());
            prop_assert_eq!(s.fallbacks, s.trials);
        }
    }

    /// The batch tuner ranks the *whole* space under any fault plan with
    /// finite scores and provenance for every candidate, and reproduces
    /// itself from the same seed.
    #[test]
    fn batch_tuner_ranks_everything_under_faults(plan in arb_plan()) {
        let (sol, space, _) = small_setup();
        let cfg = TrialConfig { samples: 2, ..TrialConfig::default() };
        let once = |()| {
            let mut backend = FaultyBackend::new(Synthetic, plan);
            let mut budget = TrialBudget::unlimited();
            sol.tune_space_with_backend(
                &mut backend,
                &space,
                TuneStrategy::Empirical,
                1,
                &cfg,
                &mut budget,
            )
            .expect("tuning is total under faults")
        };
        let r = once(());
        prop_assert_eq!(r.ranked.len(), space.len());
        prop_assert_eq!(r.provenances.len(), r.ranked.len());
        for (p, score) in &r.ranked {
            prop_assert!(score.is_finite() && *score > 0.0, "{p}: {score}");
        }
        prop_assert!(r.fallback_count() <= r.ranked.len());
        if plan.fail_prob >= 1.0 {
            prop_assert_eq!(r.fallback_count(), r.ranked.len());
        }
        let r2 = once(());
        prop_assert_eq!(r.best.block, r2.best.block);
        prop_assert_eq!(r.best_score.to_bits(), r2.best_score.to_bits());
    }

    /// Exhausting the budget mid-session never loses candidates: every
    /// point is still ranked, the overflow on analytic fallbacks.
    #[test]
    fn budget_exhaustion_degrades_gracefully(plan in arb_plan(), max_runs in 1usize..30) {
        let (sol, space, _) = small_setup();
        let mut backend = FaultyBackend::new(Synthetic, plan);
        let mut budget = TrialBudget::runs(max_runs);
        let r = sol
            .tune_space_with_backend(
                &mut backend,
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::default(),
                &mut budget,
            )
            .expect("tuning is total under budgets");
        prop_assert_eq!(r.ranked.len(), space.len());
        for (_, score) in &r.ranked {
            prop_assert!(score.is_finite() && *score > 0.0);
        }
        prop_assert!(budget.runs_used <= max_runs);
    }
}
