//! Property-based tests of the crash-safe persistence layer: under *any*
//! seeded I/O fault plan the journal's readable content is a clean prefix
//! of what was written, a damaged state directory reloads to that prefix
//! (emitting `persist.recovered`) and keeps accepting writes, and tuning
//! with a warm-started persistent cache is bitwise identical to tuning
//! without persistence at all.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use yasksite::telemetry::{Level, Telemetry};
use yasksite::{
    decode_journal, decode_prediction, encode_prediction, FaultPlan, FaultyMedium, Journal,
    JournalKind, MemMedium, PersistentStore, PredictKey, PredictionCache, PredictionRecord,
    SearchSpace, Solution, TuneRequest, TuneResult, TuneStrategy,
};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::builders::heat2d;

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let d = std::env::temp_dir().join(format!(
        "yasksite-prop-persist-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A distinct, decodable prediction record per index.
fn sample_pred(i: u64) -> PredictionRecord {
    let params = TuningParams::new([16 + i as usize, 8, 4], Fold::new(8, 1, 1))
        .threads(1 + (i as usize % 4))
        .wavefront(1 + (i as usize % 3));
    PredictionRecord {
        key: PredictKey::new(0xD00D_0000 + i, &params, 2),
        mlups_bits: (900.0 + i as f64).to_bits(),
        seconds_bits: (1e-3 / (1.0 + i as f64)).to_bits(),
        wavefront_effective: i.is_multiple_of(2),
    }
}

fn arb_io_plan() -> impl Strategy<Value = FaultPlan> {
    let mixed = (any::<u64>(), 0.0f64..0.6, 0.0f64..0.4, 0.0f64..0.4).prop_map(
        |(seed, short, corrupt, enospc)| FaultPlan::io_faults(seed, short, corrupt, enospc),
    );
    prop_oneof![
        4 => mixed,
        1 => Just(FaultPlan::none()),
    ]
}

/// Reloads raw journal bytes through a real state directory and checks the
/// full recovery contract: the store holds exactly `expect` records (a
/// clean prefix), damage emits `persist.recovered`, and the recovered
/// store accepts new writes.
fn check_reload(
    tag: &str,
    bytes: &[u8],
    expect: usize,
    damaged: bool,
) -> Result<(), TestCaseError> {
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join(JournalKind::Predictions.file_name()), bytes).expect("seed journal");
    let (tel, _sink) = Telemetry::recording(Level::Info);
    let mut store = PersistentStore::open(&dir, &tel).expect("open recovers, never fails");
    prop_assert_eq!(store.prediction_count(), expect);
    if damaged {
        prop_assert!(!store.recoveries().is_empty(), "damage must be reported");
        prop_assert!(tel.counter("persist.recovered") >= 1);
    }
    // The recovered store keeps working: journals are healthy and a
    // subsequent write round-trips through yet another reopen.
    prop_assert!(store.healthy());
    let extra = sample_pred(90_000);
    prop_assert!(store
        .record_prediction(extra.clone())
        .expect("append after recovery"));
    drop(store);
    let reread = PersistentStore::open(&dir, &tel).expect("reopen");
    prop_assert_eq!(reread.prediction_count(), expect + 1);
    prop_assert!(reread.has_prediction(&extra.key));
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    /// Appending through any seeded fault plan leaves media whose readable
    /// frames are, in order, a prefix of the payloads written — never a
    /// reordering, duplication, or invention — and a `PersistentStore`
    /// reload of those bytes yields exactly that prefix, reports the
    /// damage, and keeps serving.
    #[test]
    fn faulted_journal_reloads_to_a_clean_prefix(plan in arb_io_plan(), n in 1usize..20) {
        let mem = MemMedium::new();
        let mut journal = Journal::create(
            Box::new(FaultyMedium::new(mem.clone(), plan)),
            JournalKind::Predictions,
        );
        let written: Vec<Vec<u8>> = (0..n).map(|i| encode_prediction(&sample_pred(i as u64))).collect();
        let mut errored = false;
        for payload in &written {
            errored |= journal.append(payload).is_err();
        }
        prop_assert_eq!(journal.healthy(), !errored, "poisoned exactly by the first error");

        let bytes = mem.contents();
        let (frames, report) = decode_journal(&bytes, JournalKind::Predictions);
        prop_assert!(frames.len() <= written.len());
        for (got, expect) in frames.iter().zip(&written) {
            prop_assert_eq!(got, expect, "readable frames are the written prefix, in order");
            decode_prediction(got).expect("every surviving frame decodes");
        }
        if plan == FaultPlan::none() {
            prop_assert!(report.is_clean());
            prop_assert_eq!(frames.len(), written.len());
        }

        let damaged = !report.is_clean();
        check_reload("fault", &bytes, frames.len(), damaged)?;
    }

    /// A kill at *any* byte offset — mid-append or mid-compaction, the
    /// snapshot path writes the same framing — leaves a file that reloads
    /// to a clean prefix and keeps accepting writes.
    #[test]
    fn truncation_at_any_offset_recovers_to_a_prefix(n in 1usize..12, cut_frac in 0.0f64..1.0) {
        let mem = MemMedium::new();
        let mut journal = Journal::create(Box::new(mem.clone()), JournalKind::Predictions);
        for i in 0..n {
            journal.append(&encode_prediction(&sample_pred(i as u64))).expect("clean append");
        }
        let full = mem.contents();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let (frames, report) = decode_journal(&full[..cut], JournalKind::Predictions);
        prop_assert!(frames.len() <= n);
        for (i, f) in frames.iter().enumerate() {
            prop_assert_eq!(
                decode_prediction(f).expect("prefix frame decodes"),
                sample_pred(i as u64)
            );
        }
        check_reload("cut", &full[..cut], frames.len(), !report.is_clean())?;
    }
}

fn assert_identical(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.ranked.len(), b.ranked.len());
    for ((pa, sa), (pb, sb)) in a.ranked.iter().zip(b.ranked.iter()) {
        assert_eq!(pa, pb);
        assert_eq!(sa.to_bits(), sb.to_bits());
    }
    assert_eq!(a.provenances, b.provenances);
}

/// Persistence must be invisible to the numbers: a tune warm-started from
/// a reloaded state directory returns bitwise-identical results to a tune
/// with no persistence at all, because persisted records only enter the
/// cache after the *live* model reproduces them.
#[test]
fn warm_started_tuning_is_bitwise_identical_to_cold() {
    let machine = Machine::cascade_lake();
    let sol = Solution::new(heat2d(1), [64, 64, 1], machine.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &machine);
    let req = TuneRequest::new(TuneStrategy::Analytic).cores(2);

    // Persistence off.
    let cold = sol.tune_space_with(&space, &req).expect("cold tune");

    // Session 1 with persistence: tune through a private cache, absorb it.
    let dir = tmp_dir("bitwise");
    let tel = Telemetry::disabled();
    let mut store = PersistentStore::open(&dir, &tel).expect("open");
    let cache1 = Arc::new(PredictionCache::new());
    let first = sol
        .tune_space_with(&space, &req.clone().cache(cache1.clone()))
        .expect("session 1 tune");
    let absorbed = store.absorb_cache(&cache1);
    assert!(absorbed.persisted > 0, "session 1 persisted its cache");
    assert_eq!(absorbed.errors, 0);
    drop(store);

    // Session 2: reload, verified warm start, tune again.
    let store2 = PersistentStore::open(&dir, &tel).expect("reopen");
    assert!(
        store2.recoveries().is_empty(),
        "clean shutdown, clean reload"
    );
    let cache2 = Arc::new(PredictionCache::new());
    let warm = store2.warm_solution(&sol, &cache2);
    assert!(warm.loaded > 0, "records verified against the live model");
    assert_eq!(warm.stale, 0, "same model, nothing stale");
    let second = sol
        .tune_space_with(&space, &req.clone().cache(cache2.clone()))
        .expect("session 2 tune");
    assert!(
        second.cost.cache_hits > 0,
        "the warm start actually served predictions from the cache"
    );

    assert_identical(&cold, &first);
    assert_identical(&cold, &second);
    let _ = std::fs::remove_dir_all(&dir);
}
