//! Property tests of the expression compiler: the tape interpreter and
//! the linear fast form must agree with the recursive reference evaluator
//! for arbitrary (including nonlinear) expressions.

use proptest::prelude::*;
use xtests::seeded_grid;
use yasksite_engine::CompiledStencil;
use yasksite_grid::Fold;
use yasksite_stencil::{at, c, Expr, Stencil};

/// Strategy: arbitrary expression trees over one grid, radius ≤ 2,
/// including products of accesses (nonlinear).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-3.0f64..3.0).prop_map(c),
        ((-2i32..=2), (-2i32..=2), (-2i32..=2)).prop_map(|(x, y, z)| at(0, x, y, z)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            inner.prop_map(|a| -a),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `CompiledStencil::eval_at` (linear form or tape) equals the
    /// recursive interpreter everywhere, on every fold layout.
    #[test]
    fn compiled_matches_interpreter(expr in arb_expr(), fold_pick in 0usize..4) {
        let folds = [Fold::new(8, 1, 1), Fold::new(4, 2, 1), Fold::new(2, 2, 2), Fold::unit()];
        let fold = folds[fold_pick];
        let stencil = Stencil::new("prop", 3, 1, expr);
        let compiled = CompiledStencil::compile(&stencil);
        let u = seeded_grid("u", [6, 5, 4], [2, 2, 2], fold, 42);
        for k in 0..4isize {
            for j in 0..5isize {
                for i in 0..6isize {
                    let want = stencil.eval(&[&u], i, j, k);
                    let got = compiled.eval_at(&[&u], i, j, k);
                    // Nonlinear products can legitimately differ in the
                    // last bits through reassociation in the linear
                    // collector; demand tight agreement anyway.
                    prop_assert!(
                        (want - got).abs() <= 1e-9 * (1.0 + want.abs()),
                        "({i},{j},{k}): {want} vs {got}"
                    );
                }
            }
        }
    }

    /// Linear detection is sound: whenever the compiler chooses the
    /// linear form, the expression really is affine in the grid values
    /// (checked by superposition: f(u+v) + f(0) == f(u) + f(v)).
    #[test]
    fn linear_form_is_actually_affine(expr in arb_expr()) {
        let stencil = Stencil::new("prop", 3, 1, expr);
        let compiled = CompiledStencil::compile(&stencil);
        if !compiled.is_linear() {
            return Ok(());
        }
        let n = [4, 3, 3];
        let halo = [2, 2, 2];
        let u = seeded_grid("u", n, halo, Fold::unit(), 1);
        let v = seeded_grid("v", n, halo, Fold::unit(), 2);
        let mut uv = u.clone();
        for k in -2..5isize {
            for j in -2..5isize {
                for i in -2..6isize {
                    uv.set(i, j, k, u.get(i, j, k) + v.get(i, j, k));
                }
            }
        }
        let mut zero = u.clone();
        zero.fill_all(0.0);
        let p = (1isize, 1isize, 1isize);
        let f = |g: &yasksite_grid::Grid3| compiled.eval_at(&[g], p.0, p.1, p.2);
        let lhs = f(&uv) + f(&zero);
        let rhs = f(&u) + f(&v);
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()));
    }
}
