//! Correctness of the rebuilt native execution layer: the blocked and
//! threaded wavefront path must reproduce the plain stepper *bitwise*
//! (same per-point FP op order), and the pool-based spatial path must be
//! bitwise identical to the seed's scoped-thread implementation for
//! arbitrary blocks, sub-blocks and thread counts.

use proptest::prelude::*;
use xtests::seeded_grid;
use yasksite_engine::{
    CompiledStencil, SweepProfiler, SweepRequest, Tier, TierPolicy, TuningParams,
};
use yasksite_grid::{Fold, Grid3};
use yasksite_stencil::builders::heat3d;
use yasksite_stencil::{at, c, Expr, Stencil};

/// Reference: `depth` plain ping-pong sweeps through `SweepRequest::apply`,
/// returning the grid holding the newest time level. The plain path and
/// the wavefront path compute each point with the identical FP op order,
/// so comparisons against this reference are exact (`== 0.0`).
fn stepper_reference(
    stencil: &Stencil,
    a: &mut Grid3,
    b: &mut Grid3,
    depth: usize,
    params: &TuningParams,
) {
    let plain = params.clone().wavefront(1);
    let request = SweepRequest::new(&plain).tier(TierPolicy::Auto);
    for s in 0..depth {
        if s % 2 == 0 {
            request.apply(stencil, &[&*a], b).unwrap();
        } else {
            request.apply(stencil, &[&*b], a).unwrap();
        }
    }
    // Mirror SweepRequest::run_wavefront's convention: newest level ends
    // in `a`.
    if depth % 2 == 1 {
        a.swap_data(b).unwrap();
    }
}

/// The full matrix the issue asks for: radius-1 and radius-2 stencils ×
/// fold shapes × wavefront depths × thread counts × tier policies ×
/// profiled on/off, every cell bitwise-identical to the plain stepper.
/// Folded-layout wavefronts must match scalar-layout wavefronts exactly,
/// and forcing a tier must never change results.
#[test]
fn wavefront_matrix_bitwise_matches_plain_stepper() {
    for radius in [1usize, 2] {
        let stencil = heat3d(radius);
        let halo = [radius, radius, radius];
        let n = [24, 14, 12];
        for fold in [Fold::new(8, 1, 1), Fold::new(4, 1, 1), Fold::unit()] {
            for depth in [1usize, 2, 3, 5] {
                // Reference once per (radius, fold, depth).
                let mut ra = seeded_grid("ra", n, halo, fold, 11);
                let mut rb = seeded_grid("rb", n, halo, fold, 11);
                ra.fill_halo(0.0);
                rb.fill_halo(0.0);
                let base = TuningParams::new([24, 4, 4], fold);
                stepper_reference(&stencil, &mut ra, &mut rb, depth, &base);

                for threads in [1usize, 2, 4] {
                    for policy in [TierPolicy::ForceScalar, TierPolicy::ForceFolded] {
                        for profiled in [false, true] {
                            let mut a = seeded_grid("a", n, halo, fold, 11);
                            let mut b = seeded_grid("b", n, halo, fold, 11);
                            a.fill_halo(0.0);
                            b.fill_halo(0.0);
                            let p = base.clone().threads(threads).wavefront(depth);
                            let prof = SweepProfiler::enabled();
                            let mut request = SweepRequest::new(&p).tier(policy);
                            if profiled {
                                request = request.profiler(&prof);
                            }
                            let report = request.run_wavefront(&stencil, &mut a, &mut b).unwrap();
                            assert_eq!(
                                a.max_abs_diff(&ra).unwrap(),
                                0.0,
                                "radius {radius}, fold {fold}, depth {depth}, \
                                 threads {threads}, policy {policy:?}, \
                                 profiled {profiled} diverged"
                            );
                            assert_eq!(report.wavefront_depth, depth);
                            // Forcing folded on a lane-capable fold must
                            // truthfully report the folded tier; x-folds
                            // without a supported lane count degrade to
                            // scalar with the reason recorded.
                            if policy == TierPolicy::ForceFolded && fold.x >= 2 {
                                assert_eq!(report.tier, Tier::Folded, "fold {fold}");
                            }
                            if policy == TierPolicy::ForceScalar {
                                assert_eq!(report.tier, Tier::Scalar, "fold {fold}");
                            }
                            assert!(!report.tier_reason.is_empty());
                        }
                    }
                }
            }
        }
    }
}

/// Seed-replica of the original `linear_fast_path`: scoped threads spawned
/// per sweep, z-slab split at block boundaries, per-row descriptor Vecs.
/// The rebuilt pool-based engine must match it bit for bit.
fn seed_scoped_linear(stencil: &Stencil, input: &Grid3, out: &mut Grid3, params: &TuningParams) {
    let compiled = CompiledStencil::compile(stencil);
    let (terms, constant) = compiled.linear_terms().expect("linear stencil");
    let n = out.n();
    let block = params.clipped_block(n);
    let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));

    let ia = input.alloc();
    let ih = input.halo();
    let (iax, iay) = (ia[0] as isize, ia[1] as isize);
    let (ihx, ihy, ihz) = (ih[0] as isize, ih[1] as isize, ih[2] as isize);
    let term_desc: Vec<(isize, f64)> = terms
        .iter()
        .map(|&((_, o), co)| {
            let off = (o[2] as isize * iay + o[1] as isize) * iax + o[0] as isize;
            (off, co)
        })
        .collect();

    let oa = out.alloc();
    let oh = out.halo();
    let (oax, oay) = (oa[0] as isize, oa[1] as isize);
    let (ohx, ohy, ohz) = (oh[0] as isize, oh[1] as isize, oh[2] as isize);
    let plane_elems = (oax * oay) as usize;

    let nblocks_z = n[2].div_ceil(block[2]);
    let threads = params.threads.clamp(1, nblocks_z);
    let mut slab_limits = Vec::with_capacity(threads + 1);
    for t in 0..=threads {
        slab_limits.push(t * nblocks_z / threads);
    }

    let src_all = input.as_slice();
    let data = out.as_mut_slice();
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut consumed = 0usize;
        for t in 0..threads {
            let (kb0, kb1) = (slab_limits[t], slab_limits[t + 1]);
            if kb0 == kb1 {
                continue;
            }
            let k0 = kb0 * block[2];
            let k1 = (kb1 * block[2]).min(n[2]);
            let first_plane = k0 + ohz as usize;
            let last_plane = k1 + ohz as usize;
            let skip = (first_plane - consumed) * plane_elems;
            let take = (last_plane - first_plane) * plane_elems;
            let (before, after) = rest.split_at_mut(skip + take);
            let slab = &mut before[skip..];
            rest = after;
            consumed = last_plane;
            let term_desc = &term_desc;
            scope.spawn(move || {
                let slab_base = (first_plane * plane_elems) as isize;
                for kb in (k0..k1).step_by(block[2]) {
                    let kz1 = (kb + block[2]).min(k1);
                    for jb in (0..n[1]).step_by(block[1]) {
                        let jy1 = (jb + block[1]).min(n[1]);
                        for ib in (0..n[0]).step_by(block[0]) {
                            let ix1 = (ib + block[0]).min(n[0]);
                            for skb in (kb..kz1).step_by(sub[2]) {
                                let skz = (skb + sub[2]).min(kz1);
                                for sjb in (jb..jy1).step_by(sub[1]) {
                                    let sjy = (sjb + sub[1]).min(jy1);
                                    for sib in (ib..ix1).step_by(sub[0]) {
                                        let six = (sib + sub[0]).min(ix1);
                                        for k in skb..skz {
                                            for j in sjb..sjy {
                                                let out_row = ((k as isize + ohz) * oay
                                                    + (j as isize + ohy))
                                                    * oax
                                                    + ohx
                                                    - slab_base;
                                                let in_row = ((k as isize + ihz) * iay
                                                    + (j as isize + ihy))
                                                    * iax
                                                    + ihx;
                                                let in_rows: Vec<(isize, f64)> = term_desc
                                                    .iter()
                                                    .map(|&(off, co)| (in_row + off, co))
                                                    .collect();
                                                for i in sib..six {
                                                    let mut acc = constant;
                                                    for &(base, co) in &in_rows {
                                                        acc += co
                                                            * src_all[(base + i as isize) as usize];
                                                    }
                                                    slab[(out_row + i as isize) as usize] = acc;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    });
}

/// Strategy: a random single-input linear stencil with offsets within
/// radius 2 (the same family `prop_engine.rs` uses).
fn arb_linear_stencil() -> impl Strategy<Value = Stencil> {
    proptest::collection::vec(((-2i32..=2), (-2i32..=2), (-2i32..=2), -2.0f64..2.0), 1..8).prop_map(
        |terms| {
            let exprs: Vec<Expr> = terms
                .iter()
                .map(|&(dx, dy, dz, w)| c(w) * at(0, dx, dy, dz))
                .collect();
            Stencil::new("prop", 3, 1, Expr::sum(exprs))
        },
    )
}

fn arb_row_major_fold() -> impl Strategy<Value = Fold> {
    prop_oneof![
        Just(Fold::new(8, 1, 1)),
        Just(Fold::new(4, 1, 1)),
        Just(Fold::unit()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The pool-based engine is bitwise identical to the seed's
    /// scoped-thread implementation for arbitrary blocks, sub-blocks and
    /// thread counts (determinism invariant: work decomposition depends
    /// only on `(domain, params.threads)`, never on pool width).
    #[test]
    fn pool_execution_is_bitwise_identical_to_scoped_seed(
        stencil in arb_linear_stencil(),
        fold in arb_row_major_fold(),
        bx in 1usize..24,
        by in 1usize..8,
        bz in 1usize..8,
        use_sub in any::<bool>(),
        sx in 1usize..12,
        sy in 1usize..6,
        sz in 1usize..6,
        threads in 1usize..6,
        nx in 4usize..24,
        ny in 3usize..10,
        nz in 3usize..10,
    ) {
        let n = [nx, ny, nz];
        let halo = stencil.info().radius;
        let u = seeded_grid("u", n, halo, fold, 17);
        let mut params = TuningParams::new([bx, by, bz], fold).threads(threads);
        if use_sub {
            params = params.sub_block([sx, sy, sz]);
        }

        let mut want = Grid3::new("w", n, halo, fold);
        seed_scoped_linear(&stencil, &u, &mut want, &params);

        let mut got = Grid3::new("g", n, halo, fold);
        SweepRequest::new(&params).apply(&stencil, &[&u], &mut got).unwrap();
        prop_assert_eq!(got.max_abs_diff(&want).unwrap(), 0.0);
    }
}
