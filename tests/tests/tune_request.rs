//! Cross-crate contract tests for the unified [`TuneRequest`] API: the
//! parallel tuning engine must be jobs-invariant — `jobs = N` returns a
//! bitwise-identical result to `jobs = 1` for every strategy, with or
//! without injected faults — and the memoized prediction cache must be
//! transparent (a cached prediction equals a fresh one, bit for bit).

use std::sync::Arc;

use proptest::prelude::*;
use yasksite::{FaultPlan, TrialBudget};
use yasksite::{
    PredictionCache, SearchSpace, Solution, TrialConfig, TuneRequest, TuneResult, TuneStrategy,
};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::builders::{heat2d, heat3d};

fn setup() -> (Solution, SearchSpace) {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat2d(1), [64, 64, 1], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    (sol, space)
}

/// Runs `req` with a fresh private cache so runs never share state.
fn run_isolated(sol: &Solution, space: &SearchSpace, req: &TuneRequest, jobs: usize) -> TuneResult {
    let req = req
        .clone()
        .cache(Arc::new(PredictionCache::new()))
        .jobs(jobs);
    sol.tune_space_with(space, &req).expect("tuning succeeds")
}

/// Asserts two tune results are bitwise-identical modulo wall time and
/// cache counters (the documented determinism guarantee).
fn assert_identical(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.ranked.len(), b.ranked.len());
    for ((pa, sa), (pb, sb)) in a.ranked.iter().zip(b.ranked.iter()) {
        assert_eq!(pa, pb);
        assert_eq!(sa.to_bits(), sb.to_bits());
    }
    assert_eq!(a.provenances, b.provenances);
    let (ca, cb) = (
        a.cost.without_cache_counters(),
        b.cost.without_cache_counters(),
    );
    assert_eq!(ca.model_evals, cb.model_evals);
    assert_eq!(ca.engine_runs, cb.engine_runs);
    assert_eq!(ca.target_seconds.to_bits(), cb.target_seconds.to_bits());
    assert_eq!(a.budget.runs_used, b.budget.runs_used);
}

#[test]
fn every_strategy_is_jobs_invariant() {
    let (sol, space) = setup();
    for strategy in [
        TuneStrategy::Analytic,
        TuneStrategy::Empirical,
        TuneStrategy::Hybrid { shortlist: 3 },
    ] {
        let req = TuneRequest::new(strategy).trial(TrialConfig::single_shot());
        let serial = run_isolated(&sol, &space, &req, 1);
        for jobs in [2, 4, 7] {
            let parallel = run_isolated(&sol, &space, &req, jobs);
            assert_identical(&serial, &parallel);
        }
    }
}

#[test]
fn jobs_invariance_holds_under_seeded_faults() {
    let (sol, space) = setup();
    let plan = FaultPlan {
        seed: 0xDEC0DE,
        fail_prob: 0.4,
        nan_prob: 0.1,
        spike_prob: 0.2,
        spike_factor: 8.0,
        ..FaultPlan::none()
    };
    for strategy in [
        TuneStrategy::Empirical,
        TuneStrategy::Hybrid { shortlist: 4 },
    ] {
        let req = TuneRequest::new(strategy)
            .trial(TrialConfig {
                samples: 2,
                ..TrialConfig::default()
            })
            .faults(plan);
        let serial = run_isolated(&sol, &space, &req, 1);
        let parallel = run_isolated(&sol, &space, &req, 4);
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn jobs_invariance_holds_under_a_tight_budget() {
    let (sol, space) = setup();
    let req = TuneRequest::new(TuneStrategy::Empirical)
        .trial(TrialConfig::default())
        .budget(TrialBudget::runs(7));
    let serial = run_isolated(&sol, &space, &req, 1);
    let parallel = run_isolated(&sol, &space, &req, 4);
    assert_identical(&serial, &parallel);
    assert!(serial.budget.exhausted());
}

#[test]
fn oversubscribed_jobs_are_harmless() {
    // More workers than candidates must neither panic nor change output.
    let (sol, space) = setup();
    let req = TuneRequest::new(TuneStrategy::Analytic);
    let serial = run_isolated(&sol, &space, &req, 1);
    let flooded = run_isolated(&sol, &space, &req, 10 * space.len().max(1));
    assert_identical(&serial, &flooded);
}

#[test]
fn warm_cache_changes_counters_but_not_the_answer() {
    let (sol, space) = setup();
    let cache = Arc::new(PredictionCache::new());
    let req = TuneRequest::new(TuneStrategy::Analytic).cache(Arc::clone(&cache));
    let cold = sol.tune_space_with(&space, &req).expect("cold tune");
    let warm = sol.tune_space_with(&space, &req).expect("warm tune");
    assert_identical(&cold, &warm);
    assert_eq!(cold.cost.cache_hits, 0);
    assert!(cold.cost.cache_misses > 0);
    assert_eq!(warm.cost.cache_misses, 0);
    assert_eq!(warm.cost.cache_hits, cold.cost.cache_misses);
}

#[test]
fn legacy_tune_agrees_with_the_request_form() {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat3d(1), [48, 24, 24], m);
    let legacy = sol.tune(TuneStrategy::Analytic, 2).expect("legacy tune");
    let req = TuneRequest::new(TuneStrategy::Analytic)
        .cores(2)
        .trial(TrialConfig::single_shot())
        .cache(Arc::new(PredictionCache::new()));
    let modern = sol.tune_with(&req).expect("request tune");
    assert_eq!(legacy.best, modern.best);
    assert_eq!(legacy.best_score.to_bits(), modern.best_score.to_bits());
}

fn arb_params() -> impl Strategy<Value = TuningParams> {
    (
        1usize..=96,
        1usize..=96,
        prop_oneof![Just(Fold::new(8, 1, 1)), Just(Fold::new(4, 2, 1))],
        1usize..=8,
    )
        .prop_map(|(bx, by, fold, threads)| TuningParams::new([bx, by, 1], fold).threads(threads))
}

proptest! {
    /// The prediction cache is transparent: for any tuning point and core
    /// count, the cached value is bitwise-equal to a fresh prediction,
    /// and a second lookup is a hit returning the same bits.
    #[test]
    fn cached_prediction_equals_fresh(params in arb_params(), cores in 1usize..=8) {
        let m = Machine::cascade_lake();
        let sol = Solution::new(heat2d(1), [96, 96, 1], m);
        let cache = PredictionCache::new();

        let fresh = sol.predict(&params, cores);
        let (first, hit1) = cache.predict(&sol, &params, cores);
        let (second, hit2) = cache.predict(&sol, &params, cores);

        prop_assert!(!hit1, "first lookup must miss");
        prop_assert!(hit2, "second lookup must hit");
        for (a, b) in [(&first, &fresh), (&second, &fresh)] {
            prop_assert_eq!(a.mlups.to_bits(), b.mlups.to_bits());
            prop_assert_eq!(
                a.seconds_per_sweep.to_bits(),
                b.seconds_per_sweep.to_bits()
            );
            prop_assert_eq!(a.wavefront_effective, b.wavefront_effective);
        }
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(cache.misses(), 1);
    }
}
