//! Property suite for the online tuner's drift feedback loop.
//!
//! Three guarantees, over arbitrary seeds:
//!
//! 1. **Determinism** — the same seeded backend reproduces the climb,
//!    its fitted corrections, suspect count and re-ranks bit-for-bit.
//! 2. **No-op below threshold** — when measurements track the analytic
//!    model (drift under `DRIFT_SUSPECT_THRESHOLD`), a feedback-enabled
//!    climb is bitwise identical to a feedback-disabled one: corrections
//!    never change results they were not needed for.
//! 3. **Closed loop above threshold** — a backend that is uniformly 4x
//!    slower than the model drives every measured key SUSPECT, fires the
//!    correction, and the fitted coefficient pulls the key's drift back
//!    under the threshold.

use proptest::prelude::*;
use yasksite::{
    KeyCorrection, MeasureBackend, OnlineTuner, PredictionCache, SearchSpace, Solution, ToolError,
    TrialBudget, TrialConfig, TrialRng,
};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::builders::heat2d;

/// A backend that echoes the analytic model: each sample is the ECM
/// prediction times `factor`, with seeded multiplicative noise of
/// amplitude `wobble`. `factor = 1, wobble small` keeps drift below the
/// SUSPECT threshold; `factor = 4` blows past it on every key.
struct ModelEcho<'a> {
    sol: &'a Solution,
    factor: f64,
    wobble: f64,
    rng: TrialRng,
}

impl MeasureBackend for ModelEcho<'_> {
    fn run_sample(&mut self, params: &TuningParams) -> Result<f64, ToolError> {
        let pred = self
            .sol
            .predict(params, params.threads.max(1))
            .seconds_per_sweep;
        let eps = self.wobble * (self.rng.next_f64() - 0.5);
        Ok(pred * self.factor * (1.0 + eps))
    }
}

fn setup() -> (Solution, SearchSpace, TuningParams) {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat2d(1), [64, 64, 1], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    let template = TuningParams::new([64, 8, 1], Fold::new(8, 1, 1)).threads(1);
    (sol, space, template)
}

#[allow(clippy::type_complexity)]
fn climb(
    sol: &Solution,
    space: &SearchSpace,
    template: &TuningParams,
    factor: f64,
    wobble: f64,
    seed: u64,
    feedback: bool,
) -> (TuningParams, usize, usize, usize, Vec<KeyCorrection>) {
    let mut tuner = OnlineTuner::new(space, template.clone())
        .unwrap()
        .feedback(feedback);
    let mut backend = ModelEcho {
        sol,
        factor,
        wobble,
        rng: TrialRng::new(seed),
    };
    let best = tuner
        .run_to_convergence_cached(
            sol,
            &mut backend,
            &TrialConfig::default(),
            &mut TrialBudget::unlimited(),
            &PredictionCache::new(),
        )
        .expect("climb is total");
    (
        best,
        tuner.trials(),
        tuner.model_suspects(),
        tuner.reranks(),
        tuner.corrections(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The feedback loop is fully deterministic under a seed: climbs,
    /// corrections, suspect counts and re-ranks all reproduce.
    #[test]
    fn feedback_loop_is_deterministic_under_seed(
        seed in any::<u64>(),
        factor in prop_oneof![Just(1.0f64), Just(4.0f64)],
    ) {
        let (sol, space, template) = setup();
        let a = climb(&sol, &space, &template, factor, 0.05, seed, true);
        let b = climb(&sol, &space, &template, factor, 0.05, seed, true);
        prop_assert_eq!(&a.0, &b.0, "winner must reproduce");
        prop_assert_eq!(a.1, b.1, "trial count must reproduce");
        prop_assert_eq!(a.2, b.2, "suspect count must reproduce");
        prop_assert_eq!(a.3, b.3, "re-rank count must reproduce");
        prop_assert_eq!(&a.4, &b.4, "fitted corrections must reproduce bitwise");
    }

    /// Below the SUSPECT threshold the feedback loop never acts: the
    /// climb is bitwise identical with feedback on and off.
    #[test]
    fn below_threshold_feedback_changes_nothing(seed in any::<u64>()) {
        let (sol, space, template) = setup();
        // 5% noise around the model itself: p95 drift ~2.5%, far under
        // the 50% threshold.
        let on = climb(&sol, &space, &template, 1.0, 0.05, seed, true);
        let off = climb(&sol, &space, &template, 1.0, 0.05, seed, false);
        prop_assert_eq!(on.2, 0, "no key may go suspect under clean drift");
        prop_assert_eq!(on.3, 0, "no re-rank without a suspect");
        prop_assert_eq!(&on.0, &off.0, "winner must match the no-feedback climb");
        prop_assert_eq!(on.1, off.1, "trial count must match the no-feedback climb");
        prop_assert!(off.4.is_empty(), "disabled feedback fits nothing");
        // Feedback-on still *observes* drift state for every measured key.
        prop_assert_eq!(on.4.len(), on.1, "every measured key carries its state");
        for c in &on.4 {
            prop_assert!(!c.suspect, "{c:?}");
        }
    }

    /// A backend uniformly 4x slower than the model drives keys SUSPECT,
    /// fires corrections, and each fitted coefficient closes the loop:
    /// re-deriving drift under the corrected prediction lands below the
    /// threshold.
    #[test]
    fn high_drift_fires_and_the_correction_closes_the_loop(seed in any::<u64>()) {
        let (sol, space, template) = setup();
        let (best, trials, suspects, reranks, corrections) =
            climb(&sol, &space, &template, 4.0, 0.05, seed, true);
        prop_assert!(trials > 0);
        prop_assert!(suspects > 0, "4x drift must flag keys suspect");
        prop_assert!(reranks >= suspects, "every suspect re-ranks the open queue");
        let in_lattice = space
            .blocks()
            .iter()
            .any(|b| b[1] == best.block[1] && b[2] == best.block[2]);
        prop_assert!(in_lattice, "{:?} not in lattice", best.block);
        for c in &corrections {
            prop_assert!(c.suspect, "uniform 4x drift must mark every key: {c:?}");
            // The key measured ~4x slower, so the fitted throughput
            // coefficient is ~1/4 ...
            prop_assert!((c.coeff - 0.25).abs() < 0.05, "coeff {} not ~0.25", c.coeff);
            // ... and correcting the prediction by it cancels the
            // drift: |(1 + d)/coeff - 1| stays under the threshold for
            // the whole observed drift range (signed d in
            // [-max_abs, -p50] here, since the backend only slows).
            for d in [-c.stats.max_abs, -c.stats.p95, -c.stats.p50] {
                let residual = ((1.0 + d) / c.coeff - 1.0).abs();
                prop_assert!(
                    residual < yasksite_ecm::DRIFT_SUSPECT_THRESHOLD,
                    "corrected residual {residual} at drift {d} (coeff {})",
                    c.coeff
                );
            }
        }
    }
}
