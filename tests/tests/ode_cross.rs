//! Cross-crate ODE tests: plans executed by the engine vs hand-rolled
//! reference steps, threading invariance, and simulated plan costs.

use offsite::{measure_plan, predict_plan};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::{Fold, Grid3};
use yasksite_ode::ivps::{Heat2d, Ivp, Wave2d};
use yasksite_ode::{erk_plan, Integrator, Tableau, Variant};

/// One hand-rolled RK4 step on the Heat2D system, as an independent
/// reference for the plan machinery.
fn manual_rk4_step(ivp: &Heat2d, u0: &Grid3, h: f64) -> Grid3 {
    let rhs = ivp.rhs(0);
    let n = ivp.domain();
    let halo = ivp.halo();
    let eval = |state: &Grid3| -> Grid3 {
        let mut k = Grid3::new("k", n, halo, Fold::unit());
        rhs.apply_reference(&[state], &mut k).unwrap();
        k
    };
    let axpy = |a: &Grid3, s: f64, b: &Grid3| -> Grid3 {
        let mut r = a.clone();
        for j in 0..n[1] as isize {
            for i in 0..n[0] as isize {
                r.set(i, j, 0, a.get(i, j, 0) + s * b.get(i, j, 0));
            }
        }
        r
    };
    let k1 = eval(u0);
    let k2 = eval(&axpy(u0, h / 2.0, &k1));
    let k3 = eval(&axpy(u0, h / 2.0, &k2));
    let k4 = eval(&axpy(u0, h, &k3));
    let mut out = u0.clone();
    for j in 0..n[1] as isize {
        for i in 0..n[0] as isize {
            let incr =
                k1.get(i, j, 0) + 2.0 * k2.get(i, j, 0) + 2.0 * k3.get(i, j, 0) + k4.get(i, j, 0);
            out.set(i, j, 0, u0.get(i, j, 0) + h / 6.0 * incr);
        }
    }
    out
}

#[test]
fn plan_step_matches_manual_rk4() {
    let ivp = Heat2d::new(12);
    let h = 1e-4;
    let params = TuningParams::new([12, 12, 1], Fold::new(8, 1, 1));
    for variant in Variant::all() {
        let plan = erk_plan(&Tableau::rk4(), &ivp, h, variant);
        let mut integ = Integrator::new(&ivp, plan, h, params.clone()).unwrap();
        integ.step().unwrap();

        let mut u0 = Grid3::new("u0", ivp.domain(), ivp.halo(), Fold::unit());
        u0.fill_with(|i, j, k| ivp.initial(0, i, j, k));
        u0.fill_halo(0.0);
        let want = manual_rk4_step(&ivp, &u0, h);
        let got = integ.state(0);
        assert!(
            got.max_abs_diff(&want).unwrap() < 1e-11,
            "variant {variant} diverges from manual RK4"
        );
    }
}

#[test]
fn integration_is_thread_invariant() {
    let ivp = Heat2d::new(24);
    let h = 5e-5;
    let mk = |threads: usize| {
        let params = TuningParams::new([24, 8, 1], Fold::new(8, 1, 1)).threads(threads);
        let plan = erk_plan(&Tableau::kutta3(), &ivp, h, Variant::D);
        let mut integ = Integrator::new(&ivp, plan, h, params).unwrap();
        integ.run(12).unwrap();
        integ.state(0)
    };
    let one = mk(1);
    let four = mk(4);
    assert!(one.max_abs_diff(&four).unwrap() < 1e-12);
}

#[test]
fn wave_system_energy_stays_bounded() {
    let ivp = Wave2d::new(24, 1.0);
    let h = 5e-4;
    let params = TuningParams::new([24, 8, 1], Fold::new(8, 1, 1));
    let plan = erk_plan(&Tableau::rk4(), &ivp, h, Variant::A);
    let mut integ = Integrator::new(&ivp, plan, h, params).unwrap();
    integ.run(100).unwrap();
    // Standing wave: |u| must stay <= 1 + small integration error.
    let u = integ.state(0);
    for j in 0..24isize {
        for i in 0..24isize {
            assert!(u.get(i, j, 0).abs() < 1.05);
        }
    }
}

#[test]
fn fused_variants_measurably_cheaper_in_simulation() {
    // On a memory-exercising domain, variant D must move less data and
    // take less simulated time per step than variant A.
    let ivp = Heat2d::new(512); // 2 MB/grid, rk4 pool ~ 14 MB
    let m = Machine::rome(); // 16 MB CCX L3 -> pool exceeds eff. capacity
    let params = TuningParams::new([512, 16, 1], Fold::new(4, 1, 1));
    let h = 1e-7;
    let a = measure_plan(&erk_plan(&Tableau::rk4(), &ivp, h, Variant::A), &m, &params).unwrap();
    let d = measure_plan(&erk_plan(&Tableau::rk4(), &ivp, h, Variant::D), &m, &params).unwrap();
    assert!(
        d.seconds_per_step < a.seconds_per_step,
        "D {:.3e}s vs A {:.3e}s",
        d.seconds_per_step,
        a.seconds_per_step
    );
    assert!(d.mem_bytes_per_step <= a.mem_bytes_per_step * 1.05);
}

#[test]
fn plan_prediction_orders_variants_like_simulation() {
    let ivp = Heat2d::new(512);
    let m = Machine::rome();
    let params = TuningParams::new([512, 16, 1], Fold::new(4, 1, 1));
    let h = 1e-7;
    let mut pred = Vec::new();
    let mut meas = Vec::new();
    for v in [Variant::A, Variant::D, Variant::E] {
        let plan = erk_plan(&Tableau::rk4(), &ivp, h, v);
        pred.push(predict_plan(&plan, &m, &params, 1).seconds_per_step);
        meas.push(measure_plan(&plan, &m, &params).unwrap().seconds_per_step);
    }
    let argmin = |v: &[f64]| {
        v.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap()
    };
    assert_eq!(
        argmin(&pred),
        argmin(&meas),
        "prediction must rank the fastest variant first (pred {pred:?}, meas {meas:?})"
    );
}
