//! Property-based tests of the ECM model and the cache simulator:
//! structural invariants that must hold for any configuration.

use proptest::prelude::*;
use yasksite_arch::Machine;
use yasksite_ecm::{EcmModel, KernelDesc};
use yasksite_grid::Fold;
use yasksite_memsim::MemHierarchy;
use yasksite_stencil::builders::{heat2d, heat3d, star3d};

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        Just(Machine::cascade_lake()),
        Just(Machine::rome()),
        Just(Machine::host()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Predictions are finite and positive for arbitrary tiles and core
    /// counts. For a *fixed* single-core characterisation, the scaling
    /// curve `min(n·P₁, P_sat)` is monotone in `n`. (Across `predict_at`
    /// calls the curve may legitimately dip: more cores shrink the
    /// effective shared-cache share and can break a layer condition.)
    #[test]
    fn prediction_sane_and_monotone(
        machine in arb_machine(),
        n in 16usize..400,
        ty in 2usize..64,
        tz in 2usize..64,
        r in 1usize..4,
    ) {
        let s = heat3d(r);
        let fold = Fold::new(machine.lanes(), 1, 1);
        let desc = KernelDesc::new(&s, [n, n, n]).tile([n, ty, tz]).fold(fold);
        let model = EcmModel::new(&machine);
        let max = machine.cores_per_socket;
        for cores in [1, 2.min(max), max] {
            let p = model.predict_at(&desc, cores);
            prop_assert!(p.t_ecm.is_finite() && p.t_ecm > 0.0);
            prop_assert!(p.mlups_sat > 0.0);
            // The fixed-characterisation scaling curve is monotone.
            let mut last = 0.0;
            for nn in 1..=max {
                let perf = p.mlups(nn);
                prop_assert!(perf.is_finite() && perf > 0.0);
                prop_assert!(perf + 1e-9 >= last);
                last = perf;
            }
        }
    }

    /// Traffic never increases toward memory: outer boundaries carry at
    /// most what inner boundaries carry.
    #[test]
    fn boundary_traffic_is_monotone(
        machine in arb_machine(),
        n in 32usize..512,
        ty in 2usize..128,
        r in 1usize..5,
    ) {
        let s = star3d(r, &vec![0.5; r + 1]);
        let desc = KernelDesc::new(&s, [n, n, n]).tile([n, ty, ty]);
        let p = EcmModel::new(&machine).predict(&desc);
        let lines = &p.traffic.per_boundary_lines;
        for b in 1..lines.len() {
            prop_assert!(
                lines[b] <= lines[b - 1] + 1e-12,
                "boundary {b} carries more than boundary {}: {lines:?}",
                b - 1
            );
        }
    }

    /// A bigger cache of the same geometry never produces more misses on
    /// the same access stream (LRU inclusion property, spot-checked).
    #[test]
    fn bigger_cache_never_worse(
        seed in 0u64..1000,
        len in 100usize..2000,
    ) {
        let mut small = Machine::cascade_lake();
        small.cores_per_socket = 1;
        let mut big = small.clone();
        big.caches[0].size_bytes *= 2;
        let mut hs = MemHierarchy::new(&small, 1);
        let mut hb = MemHierarchy::new(&big, 1);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (x >> 20) % (1 << 22);
            hs.read(0, addr);
            hb.read(0, addr);
        }
        prop_assert!(hb.stats().level[0].misses <= hs.stats().level[0].misses);
    }

    /// The 2-D variants of a stencil never move more data per update than
    /// the 3-D variants (fewer live layers).
    #[test]
    fn two_d_cheaper_than_three_d(machine in arb_machine(), n in 64usize..512) {
        let d2 = KernelDesc::new(&heat2d(1), [n, n, 1]).tile([n, 16, 1]);
        let d3 = KernelDesc::new(&heat3d(1), [n, n, 64]).tile([n, 16, 16]);
        let m = EcmModel::new(&machine);
        let p2 = m.predict(&d2);
        let p3 = m.predict(&d3);
        prop_assert!(p2.bytes_per_lup_mem <= p3.bytes_per_lup_mem + 1e-9);
    }
}
