//! Property-based bitwise-identity suite for the vector-folded tier:
//! for arbitrary stencils (radius 1 and 2, specialised and dynamic
//! arity), fold shapes, thread counts and profiled/unprofiled runs, the
//! folded tier must reproduce the scalar tier *bit for bit*. Every tier
//! computes each output point with the identical FP op order
//! (`acc = constant; for each term: acc += coeff * src`), so all
//! comparisons here are exact (`== 0.0`), never epsilon-based.

use proptest::prelude::*;
use xtests::seeded_grid;
use yasksite_engine::{SweepProfiler, SweepRequest, Tier, TierPolicy, TuningParams};
use yasksite_grid::{Fold, Grid3};
use yasksite_stencil::{at, c, Expr, Stencil};

/// Strategy: a random linear stencil with offsets within `radius` and
/// `arity` terms. Arities outside {1, 2, 7, 9, 27} exercise the
/// dynamic-arity scalar row (`row_dyn`) as the comparison baseline.
fn arb_linear_stencil(
    radius: i32,
    arity: std::ops::Range<usize>,
) -> impl Strategy<Value = Stencil> {
    proptest::collection::vec(
        (
            (-radius..=radius),
            (-radius..=radius),
            (-radius..=radius),
            -2.0f64..2.0,
        ),
        arity,
    )
    .prop_map(|terms| {
        let exprs: Vec<Expr> = terms
            .iter()
            .map(|&(dx, dy, dz, w)| c(w) * at(0, dx, dy, dz))
            .collect();
        Stencil::new("prop_fold", 3, 1, Expr::sum(exprs))
    })
}

/// Row-major folds with a supported lane count (the folded lane tier).
fn arb_lane_fold() -> impl Strategy<Value = Fold> {
    prop_oneof![
        Just(Fold::new(2, 1, 1)),
        Just(Fold::new(4, 1, 1)),
        Just(Fold::new(8, 1, 1)),
        Just(Fold::new(16, 1, 1)),
    ]
}

/// Multi-dimensional folds with a supported element count (the folded
/// brick tier).
fn arb_brick_fold() -> impl Strategy<Value = Fold> {
    prop_oneof![
        Just(Fold::new(4, 2, 1)),
        Just(Fold::new(2, 2, 2)),
        Just(Fold::new(2, 2, 1)),
        Just(Fold::new(1, 2, 1)),
        Just(Fold::new(4, 4, 1)),
    ]
}

/// Runs one sweep under `policy`, optionally profiled, returning the
/// output grid and the tier that actually executed.
fn run_tier(
    stencil: &Stencil,
    u: &Grid3,
    params: &TuningParams,
    policy: TierPolicy,
    profiled: bool,
) -> (Grid3, Tier) {
    let n = u.n();
    let mut out = Grid3::new("o", n, stencil.info().radius, params.fold);
    let prof = SweepProfiler::enabled();
    let mut request = SweepRequest::new(params).tier(policy);
    if profiled {
        request = request.profiler(&prof);
    }
    let report = request.apply(stencil, &[u], &mut out).unwrap();
    (out, report.tier)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Folded lane tier == scalar tier, bit for bit, across radius ×
    /// lane fold × threads × profiled on/off. Arities 1..30 cover both
    /// the specialised scalar rows and the dynamic-arity fallback.
    #[test]
    fn lane_tier_is_bitwise_identical_to_scalar_tier(
        (stencil, fold, threads, profiled, nx, ny, nz) in (
            (1i32..=2).prop_flat_map(|radius| arb_linear_stencil(radius, 1..30)),
            arb_lane_fold(),
            1usize..5,
            any::<bool>(),
            4usize..24,
            3usize..10,
            3usize..10,
        ),
    ) {
        let n = [nx, ny, nz];
        let halo = stencil.info().radius;
        let u = seeded_grid("u", n, halo, fold, 21);
        let params = TuningParams::new([n[0], 4, 4], fold).threads(threads);

        let (scalar, t_s) = run_tier(&stencil, &u, &params, TierPolicy::ForceScalar, profiled);
        let (folded, t_f) = run_tier(&stencil, &u, &params, TierPolicy::ForceFolded, profiled);

        prop_assert_eq!(t_s, Tier::Scalar);
        prop_assert_eq!(t_f, Tier::Folded);
        prop_assert_eq!(folded.max_abs_diff(&scalar).unwrap(), 0.0);
    }

    /// Folded brick tier == the pre-folded-tier generic path (what
    /// `ForceScalar` degrades to on multi-dimensional folds), bit for
    /// bit, across fold shape × threads × profiled on/off.
    #[test]
    fn brick_tier_is_bitwise_identical_to_generic_path(
        (stencil, fold, threads, profiled, nx, ny, nz) in (
            arb_linear_stencil(2, 1..30),
            arb_brick_fold(),
            1usize..5,
            any::<bool>(),
            4usize..20,
            3usize..10,
            3usize..10,
        ),
    ) {
        let n = [nx, ny, nz];
        let halo = stencil.info().radius;
        let u = seeded_grid("u", n, halo, fold, 23);
        let params = TuningParams::new([n[0], 4, 4], fold).threads(threads);

        let (generic, t_g) = run_tier(&stencil, &u, &params, TierPolicy::ForceScalar, profiled);
        let (brick, t_b) = run_tier(&stencil, &u, &params, TierPolicy::ForceFolded, profiled);

        prop_assert_eq!(t_g, Tier::Generic);
        prop_assert_eq!(t_b, Tier::Folded);
        prop_assert_eq!(brick.max_abs_diff(&generic).unwrap(), 0.0);
    }

    /// The tier never depends on thread count, and the folded tier is
    /// thread-count invariant: every thread count produces the same bits
    /// as single-threaded folded execution.
    #[test]
    fn folded_tier_is_thread_count_invariant(
        stencil in arb_linear_stencil(2, 1..30),
        fold in arb_lane_fold(),
        threads in 2usize..7,
    ) {
        let n = [19, 7, 9];
        let halo = stencil.info().radius;
        let u = seeded_grid("u", n, halo, fold, 29);
        let p1 = TuningParams::new([19, 4, 4], fold).threads(1);
        let pt = TuningParams::new([19, 4, 4], fold).threads(threads);

        let (one, _) = run_tier(&stencil, &u, &p1, TierPolicy::ForceFolded, false);
        let (many, _) = run_tier(&stencil, &u, &pt, TierPolicy::ForceFolded, false);
        prop_assert_eq!(many.max_abs_diff(&one).unwrap(), 0.0);
    }

    /// Folded wavefronts == scalar wavefronts, bit for bit, for any
    /// depth and thread count.
    #[test]
    fn folded_wavefront_is_bitwise_identical_to_scalar_wavefront(
        stencil in arb_linear_stencil(2, 1..12),
        fold in arb_lane_fold(),
        depth in 1usize..5,
        threads in 1usize..4,
    ) {
        let n = [16, 6, 7];
        let halo = stencil.info().radius;
        let params = TuningParams::new([16, 4, 4], fold).threads(threads).wavefront(depth);

        let run = |policy: TierPolicy| {
            let mut a = seeded_grid("a", n, halo, fold, 31);
            let mut b = seeded_grid("b", n, halo, fold, 31);
            a.fill_halo(0.0);
            b.fill_halo(0.0);
            let report = SweepRequest::new(&params)
                .tier(policy)
                .run_wavefront(&stencil, &mut a, &mut b)
                .unwrap();
            (a, report.tier)
        };

        let (scalar, t_s) = run(TierPolicy::ForceScalar);
        let (folded, t_f) = run(TierPolicy::ForceFolded);
        prop_assert_eq!(t_s, Tier::Scalar);
        prop_assert_eq!(t_f, Tier::Folded);
        prop_assert_eq!(folded.max_abs_diff(&scalar).unwrap(), 0.0);
    }
}
