//! End-to-end pipeline tests spanning all crates: model ↔ simulator
//! agreement, tuner quality, and the Offsite integration.

use offsite::{MethodSpec, Offsite};
use yasksite::{SearchSpace, Solution, TuneStrategy};
use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_ode::ivps::Heat2d;
use yasksite_ode::Tableau;
use yasksite_stencil::builders::heat3d;

/// The paper's central claim in miniature: on a memory-exercising domain,
/// the analytic ECM prediction tracks the simulator-measured performance
/// within a modest factor across block sizes.
#[test]
fn model_tracks_simulator_across_blocks() {
    let m = Machine::cascade_lake();
    let domain = [96, 48, 48];
    let sol = Solution::new(heat3d(1), domain, m.clone());
    let fold = Fold::new(8, 1, 1);
    for block in [[96, 48, 48], [96, 8, 8], [96, 16, 16]] {
        let p = TuningParams::new(block, fold);
        let pred = sol.predict(&p, 1).mlups;
        let meas = sol.measure(&p).unwrap().mlups;
        let ratio = pred / meas;
        assert!(
            (0.3..3.4).contains(&ratio),
            "block {block:?}: predicted {pred:.0} vs measured {meas:.0} MLUP/s"
        );
    }
}

/// Analytic tuning must agree with empirical tuning about which of two
/// extreme configurations is better.
#[test]
fn analytic_and_empirical_agree_on_extremes() {
    let m = Machine::cascade_lake();
    let domain = [96, 96, 96]; // 2 grids x 7 MB: beyond L2, plane > L1
    let sol = Solution::new(heat3d(1), domain, m);
    let fold = Fold::new(8, 1, 1);
    let good = TuningParams::new([96, 8, 8], fold);
    let bad = TuningParams::new([1, 1, 96], fold); // pathological layout
    let pred_good = sol.predict(&good, 1).mlups;
    let pred_bad = sol.predict(&bad, 1).mlups;
    let meas_good = sol.measure(&good).unwrap().mlups;
    let meas_bad = sol.measure(&bad).unwrap().mlups;
    assert!(pred_good > pred_bad, "model must prefer sane blocks");
    assert!(meas_good > meas_bad, "simulator must prefer sane blocks");
}

/// The hybrid tuner's pick is never worse than the pure-analytic pick
/// (measured), and costs far fewer runs than exhaustive search.
#[test]
fn hybrid_tuning_cost_quality_tradeoff() {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat3d(1), [48, 48, 48], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    let hybrid = sol
        .tune_space(&space, TuneStrategy::Hybrid { shortlist: 3 }, 1)
        .unwrap();
    let analytic = sol.tune_space(&space, TuneStrategy::Analytic, 1).unwrap();
    let hybrid_meas = sol.measure(&hybrid.best).unwrap().mlups;
    let analytic_meas = sol.measure(&analytic.best).unwrap().mlups;
    assert!(hybrid_meas >= 0.95 * analytic_meas);
    assert!(hybrid.cost.engine_runs == 3);
    assert!(hybrid.cost.engine_runs < space.len());
}

/// Offsite end-to-end: variants are predicted and measured consistently;
/// the predicted pick lands near the top of the measured ranking; the
/// tuned pick beats the naive baseline.
#[test]
fn offsite_pipeline_on_heat2d() {
    let offsite = Offsite::new(Machine::cascade_lake(), 1);
    let ivp = Heat2d::new(192);
    let methods = [
        MethodSpec::erk(Tableau::heun2()),
        MethodSpec::erk(Tableau::rk4()),
    ];
    let r = offsite.evaluate(&ivp, &methods, 1e-6).unwrap();
    assert_eq!(r.candidates.len(), 8);
    assert!(
        r.rank_of_pick <= 2,
        "prediction pick should be near the top, got rank {}",
        r.rank_of_pick
    );
    assert!(r.mean_rel_err < 1.0, "mean rel err {}", r.mean_rel_err);
    for (method, speedup) in &r.speedups {
        assert!(
            *speedup >= 0.8,
            "{method}: tuned pick should not lose badly to naive ({speedup:.2}x)"
        );
    }
}

/// The generated kernel source is consistent with the tuned parameters.
#[test]
fn codegen_reflects_tuning() {
    let m = Machine::rome();
    let sol = Solution::new(heat3d(1), [64, 64, 64], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    let r = sol.tune_space(&space, TuneStrategy::Analytic, 4).unwrap();
    let code = sol.codegen(&r.best);
    assert!(code.source.contains(&format!("kb += {}", r.best.block[2])));
    assert!(code
        .source
        .contains(&format!("#define FOLD_X {}", r.best.fold.x)));
    assert!(code.source.contains("num_threads(4)"));
}

/// Machine models produce different tuning outcomes (the paper's
/// cross-architecture point): Rome and CLX need not pick the same block.
#[test]
fn predictions_differ_across_machines() {
    let domain = [96, 96, 96];
    let clx = Solution::new(heat3d(1), domain, Machine::cascade_lake());
    let rome = Solution::new(heat3d(1), domain, Machine::rome());
    let p_clx = clx.predict(&TuningParams::new([96, 8, 8], Fold::new(8, 1, 1)), 1);
    let p_rome = rome.predict(&TuningParams::new([96, 8, 8], Fold::new(4, 1, 1)), 1);
    assert!(p_clx.mlups > 0.0 && p_rome.mlups > 0.0);
    assert!((p_clx.mlups - p_rome.mlups).abs() > 1e-6);
}
