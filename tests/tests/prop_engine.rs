//! Property-based tests of the execution engine: for arbitrary stencils,
//! folds, blocks and thread counts, every optimised path must equal the
//! scalar reference.

use proptest::prelude::*;
use xtests::seeded_grid;
use yasksite_engine::{SweepRequest, TuningParams};
use yasksite_grid::{Fold, Grid3};
use yasksite_stencil::{at, c, Expr, Stencil};

/// Strategy: a random linear stencil with offsets within radius 2.
fn arb_linear_stencil() -> impl Strategy<Value = Stencil> {
    proptest::collection::vec(((-2i32..=2), (-2i32..=2), (-2i32..=2), -2.0f64..2.0), 1..8).prop_map(
        |terms| {
            let exprs: Vec<Expr> = terms
                .iter()
                .map(|&(dx, dy, dz, w)| c(w) * at(0, dx, dy, dz))
                .collect();
            Stencil::new("prop", 3, 1, Expr::sum(exprs))
        },
    )
}

fn arb_fold() -> impl Strategy<Value = Fold> {
    prop_oneof![
        Just(Fold::new(8, 1, 1)),
        Just(Fold::new(4, 2, 1)),
        Just(Fold::new(2, 2, 2)),
        Just(Fold::unit()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked + folded + threaded execution equals the scalar reference
    /// for arbitrary linear stencils.
    #[test]
    fn native_equals_reference(
        stencil in arb_linear_stencil(),
        fold in arb_fold(),
        bx in 1usize..20,
        by in 1usize..8,
        bz in 1usize..8,
        threads in 1usize..4,
        nx in 4usize..20,
        ny in 3usize..10,
        nz in 3usize..10,
    ) {
        let n = [nx, ny, nz];
        let halo = stencil.info().radius;
        let u = seeded_grid("u", n, halo, fold, 7);
        let mut out = Grid3::new("o", n, halo, fold);
        let params = TuningParams::new([bx, by, bz], fold).threads(threads);
        SweepRequest::new(&params).apply(&stencil, &[&u], &mut out).unwrap();

        let u_ref = seeded_grid("ur", n, halo, Fold::unit(), 7);
        let mut want = Grid3::new("w", n, halo, Fold::unit());
        stencil.apply_reference(&[&u_ref], &mut want).unwrap();
        prop_assert!(out.max_abs_diff(&want).unwrap() < 1e-9);
    }

    /// Wavefront execution of any depth equals repeated plain sweeps.
    #[test]
    fn wavefront_equals_repeated_sweeps(
        stencil in arb_linear_stencil(),
        depth in 1usize..5,
        nx in 4usize..16,
        ny in 3usize..8,
        nz in 3usize..8,
    ) {
        let n = [nx, ny, nz];
        let halo = stencil.info().radius;
        let fold = Fold::new(8, 1, 1);
        let params = TuningParams::new(n, fold).wavefront(depth);

        // Wavefront path.
        let mut a = seeded_grid("a", n, halo, fold, 3);
        let mut b = seeded_grid("b", n, halo, fold, 3);
        b.fill_halo(0.0);
        a.fill_halo(0.0);
        SweepRequest::new(&params).run_wavefront(&stencil, &mut a, &mut b).unwrap();

        // Plain path: depth sweeps with ping-pong, halos fixed at 0.
        let mut x = seeded_grid("x", n, halo, fold, 3);
        let mut y = seeded_grid("y", n, halo, fold, 3);
        x.fill_halo(0.0);
        y.fill_halo(0.0);
        let plain = TuningParams::new(n, fold);
        for _ in 0..depth {
            SweepRequest::new(&plain).apply(&stencil, &[&x], &mut y).unwrap();
            x.swap_data(&mut y).unwrap();
        }
        prop_assert!(a.max_abs_diff(&x).unwrap() < 1e-9);
    }

    /// Results never depend on the block decomposition at all.
    #[test]
    fn block_invariance(
        stencil in arb_linear_stencil(),
        b1 in 1usize..32,
        b2 in 1usize..32,
    ) {
        let n = [13, 7, 5];
        let halo = stencil.info().radius;
        let fold = Fold::new(8, 1, 1);
        let u = seeded_grid("u", n, halo, fold, 11);
        let mut o1 = Grid3::new("o1", n, halo, fold);
        let mut o2 = Grid3::new("o2", n, halo, fold);
        SweepRequest::new(&TuningParams::new([b1, b2, b1], fold)).apply(&stencil, &[&u], &mut o1).unwrap();
        SweepRequest::new(&TuningParams::new([b2, b1, b2], fold)).apply(&stencil, &[&u], &mut o2).unwrap();
        prop_assert_eq!(o1.max_abs_diff(&o2).unwrap(), 0.0);
    }
}
