//! The sweep profiler is purely observational: turning it on must never
//! change what a tuning session computes. The properties here run the
//! same request with `profile` off and on — across strategies, worker
//! counts and fault plans — and require the winner, ranking, provenances
//! and the deterministic [`yasksite::TuneCost`] fields to stay
//! bitwise-identical. The profiled run must additionally return a
//! non-empty [`yasksite_engine::ProfileReport`] and record `profile`
//! events into the trace that `check_trace` accepts.

use std::sync::Arc;

use proptest::prelude::*;
use yasksite::telemetry::{check_trace, Level, Telemetry};
use yasksite::{
    FaultPlan, PredictionCache, SearchSpace, Solution, TrialConfig, TuneRequest, TuneResult,
    TuneStrategy,
};
use yasksite_arch::Machine;
use yasksite_stencil::builders::heat2d;

fn setup() -> (Solution, SearchSpace) {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat2d(1), [64, 64, 1], m.clone());
    let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
    (sol, space)
}

fn run_with(
    sol: &Solution,
    space: &SearchSpace,
    req: &TuneRequest,
    jobs: usize,
    tel: Telemetry,
) -> TuneResult {
    let req = req
        .clone()
        .cache(Arc::new(PredictionCache::new()))
        .jobs(jobs)
        .telemetry(tel);
    sol.tune_space_with(space, &req).expect("tuning succeeds")
}

/// The documented determinism guarantee: identical modulo wall time and
/// cache-warmth counters.
fn assert_identical(a: &TuneResult, b: &TuneResult) {
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
    assert_eq!(a.ranked.len(), b.ranked.len());
    for ((pa, sa), (pb, sb)) in a.ranked.iter().zip(b.ranked.iter()) {
        assert_eq!(pa, pb);
        assert_eq!(sa.to_bits(), sb.to_bits());
    }
    assert_eq!(a.provenances, b.provenances);
    assert_eq!(a.drift, b.drift, "the drift ledger is deterministic");
    let (ca, cb) = (
        a.cost.without_cache_counters().without_wall_clock(),
        b.cost.without_cache_counters().without_wall_clock(),
    );
    assert_eq!(ca.model_evals, cb.model_evals);
    assert_eq!(ca.engine_runs, cb.engine_runs);
    assert_eq!(ca.fallbacks, cb.fallbacks);
    assert_eq!(ca.drift_records, cb.drift_records);
    assert_eq!(ca.target_seconds.to_bits(), cb.target_seconds.to_bits());
    assert_eq!(a.budget.runs_used, b.budget.runs_used);
}

fn strategy_from(ix: usize) -> TuneStrategy {
    match ix {
        0 => TuneStrategy::Analytic,
        1 => TuneStrategy::Empirical,
        _ => TuneStrategy::Hybrid { shortlist: 3 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core invariant of the profiler: profiling the winner never
    /// changes the winner, quantified over strategy, worker count and
    /// fault injection.
    #[test]
    fn profiling_never_changes_the_tuning_result(
        strategy_ix in 0usize..3,
        jobs in prop_oneof![Just(1usize), Just(2), Just(4)],
        fault_seed in prop_oneof![Just(None), (0u64..1000).prop_map(Some)],
    ) {
        let (sol, space) = setup();
        let mut req = TuneRequest::new(strategy_from(strategy_ix))
            .trial(TrialConfig::single_shot());
        if let Some(seed) = fault_seed {
            req = req.faults(FaultPlan::noisy(seed));
        }

        let plain = run_with(&sol, &space, &req, jobs, Telemetry::disabled());
        prop_assert!(plain.profile.is_none(), "profiling is opt-in");

        let profiled = run_with(
            &sol,
            &space,
            &req.clone().profile(),
            jobs,
            Telemetry::disabled(),
        );
        assert_identical(&plain, &profiled);
        let report = profiled.profile.expect("profiled run returns a report");
        prop_assert!(report.enabled);
        prop_assert!(!report.phases.is_empty(), "winner run records phases");
    }
}

#[test]
fn profiled_trace_round_trips_through_check_and_report() {
    let (sol, space) = setup();
    let req = TuneRequest::new(TuneStrategy::Hybrid { shortlist: 2 })
        .trial(TrialConfig::single_shot())
        .profile();
    let (tel, sink) = Telemetry::recording(Level::Debug);
    let r = run_with(&sol, &space, &req, 2, tel.clone());
    tel.finish();
    assert!(r.profile.is_some());
    assert!(!r.drift.is_empty(), "hybrid sessions measure trials");

    let text = sink.lines().join("\n");
    let stats = check_trace(&text).expect("profiled trace stays valid schema-v1");
    assert_eq!(stats.spans_opened, stats.spans_closed);
    assert!(
        text.contains("\"ev\":\"profile\""),
        "profile events recorded"
    );
    assert!(text.contains("\"ev\":\"drift\""), "drift events recorded");

    let rendered = yasksite::render_report(&text, None).expect("report renders the trace");
    assert!(rendered.contains("phase breakdown:"), "{rendered}");
    assert!(rendered.contains("drift:"), "{rendered}");
    assert!(rendered.contains("heat-2d-r1"), "{rendered}");
}
