//! Integration-test crate: the tests live in `tests/tests/`. This library
//! only hosts small helpers shared between them.

#![forbid(unsafe_code)]

use yasksite_grid::{Fold, Grid3};

/// Builds a deterministic, pseudo-random-valued grid for comparisons.
#[must_use]
pub fn seeded_grid(name: &str, n: [usize; 3], halo: [usize; 3], fold: Fold, seed: u64) -> Grid3 {
    let mut g = Grid3::new(name, n, halo, fold);
    g.fill_with(|i, j, k| {
        let x = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
            .wrapping_add((k as u64).wrapping_mul(2862933555777941757))
            .wrapping_add(seed);
        ((x >> 33) % 1000) as f64 / 500.0 - 1.0
    });
    g.fill_halo(0.0);
    g
}
