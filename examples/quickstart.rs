//! Quickstart: tune a stencil for a machine you do not have.
//!
//! This walks the core YaskSite workflow: define a stencil, bind it to a
//! domain and a machine model, let the ECM model pick tuning parameters
//! analytically, inspect the prediction, verify it on the simulated
//! hierarchy, and dump the kernel source the configuration corresponds
//! to.
//!
//! Run with: `cargo run --release --example quickstart`

use yasksite_repro::arch::Machine;
use yasksite_repro::stencil::builders::heat3d;
use yasksite_repro::yasksite::{Solution, TuneRequest, TuneStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A stencil and a target: the 7-point heat kernel on one socket of
    //    a Cascade Lake machine (which this host is not — the machine is
    //    a model).
    let stencil = heat3d(1);
    let machine = Machine::cascade_lake();
    let domain = [96, 96, 96];
    let solution = Solution::new(stencil, domain, machine);

    // 2. Analytic tuning: rank the whole parameter space with the ECM
    //    model; nothing is executed. The request API is the canonical
    //    entry point — `jobs` parallelises the ranking without changing
    //    a single bit of the result (omit it to use all cores).
    let cores = 8;
    let req = TuneRequest::new(TuneStrategy::Analytic)
        .cores(cores)
        .jobs(4);
    let result = solution.tune_with(&req)?;
    println!("candidates ranked analytically: {}", result.ranked.len());
    println!(
        "model evaluations:              {}",
        result.cost.model_evals
    );
    println!(
        "kernel runs needed:             {}",
        result.cost.engine_runs
    );
    println!("selected parameters:            {}", result.best);

    // 3. What does the model say about the winner?
    let pred = solution.predict(&result.best, cores);
    println!("\nECM prediction @ {cores} cores:");
    println!("  {}", pred.ecm.summary());
    println!(
        "  => {:.0} MLUP/s, {:.3} ms/sweep",
        pred.mlups,
        pred.seconds_per_sweep * 1e3
    );

    // 4. Check it against the simulated Cascade Lake hierarchy.
    let measured = solution.measure(&result.best)?;
    println!("\nsimulated measurement: {:.0} MLUP/s", measured.mlups);
    println!(
        "model error: {:.0}%",
        (pred.mlups - measured.mlups).abs() / measured.mlups * 100.0
    );

    // 5. The kernel source this configuration generates.
    let code = solution.codegen(&result.best);
    println!(
        "\ngenerated kernel: {} lines in {:.1} ms (first lines below)",
        code.lines,
        code.gen_seconds * 1e3
    );
    for line in code.source.lines().take(6) {
        println!("  | {line}");
    }
    Ok(())
}
