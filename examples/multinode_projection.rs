//! Project multi-node scaling from single-socket predictions.
//!
//! YASK runs under MPI; the paper tunes single sockets, but the tool's
//! predictions compose: take the ECM-predicted step time of one socket,
//! decompose the domain over ranks, and add the halo-exchange cost of
//! the interconnect. This example sweeps rank counts for the heat-3d
//! kernel on Cascade Lake sockets over two network classes.
//!
//! Run with: `cargo run --release --example multinode_projection`

use yasksite_repro::arch::Machine;
use yasksite_repro::engine::{predict_multirank, Interconnect, RankDecomposition, TuningParams};
use yasksite_repro::grid::Fold;
use yasksite_repro::stencil::builders::heat3d;
use yasksite_repro::yasksite::Solution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::cascade_lake();
    let domain = [512, 512, 512];
    let stencil = heat3d(1);
    let sol = Solution::new(stencil, domain, machine.clone());
    let cores = machine.cores_per_socket;
    let params = TuningParams::new([512, 16, 16], Fold::new(8, 1, 1)).threads(cores);
    let single = sol.predict(&params, cores);
    let step_s = single.seconds_per_sweep;
    println!(
        "single socket ({} cores): {:.0} MLUP/s, {:.2} ms/step",
        cores,
        single.mlups,
        step_s * 1e3
    );

    for (name, net) in [
        ("InfiniBand HDR", Interconnect::infiniband()),
        ("100 GbE", Interconnect::ethernet100g()),
    ] {
        println!(
            "\n{name} ({:.0} GB/s, {:.0} µs):",
            net.bandwidth_gbs,
            net.latency_s * 1e6
        );
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>11}",
            "ranks", "step [ms]", "comp [ms]", "comm [ms]", "efficiency"
        );
        for ranks in [1usize, 2, 4, 8, 16, 32] {
            let d = RankDecomposition::new(domain, ranks, 1)?;
            let p = predict_multirank(step_s, &d, 1, &net);
            println!(
                "{ranks:>6} {:>12.3} {:>10.3} {:>10.3} {:>10.0}%",
                p.step_s * 1e3,
                p.compute_s * 1e3,
                p.comm_s * 1e3,
                p.efficiency * 100.0
            );
        }
    }
    println!("\n(halo exchange: 2 x 1 plane of 512x512 doubles = 4 MB per rank per step)");
    Ok(())
}
