//! Actually solve a PDE: integrate the 2-D heat equation with RK4 on the
//! host and compare against the analytic solution — the "it really
//! computes" end of the reproduction, complementing the performance-side
//! examples.
//!
//! Run with: `cargo run --release --example solve_heat`

use yasksite_repro::engine::TuningParams;
use yasksite_repro::grid::Fold;
use yasksite_repro::ode::ivps::Heat2d;
use yasksite_repro::ode::{erk_plan, Integrator, Tableau, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 63;
    let ivp = Heat2d::new(n);
    let h: f64 = 2e-5; // within RK4's stability region for this grid
    let t_end = 2e-2;
    let steps = (t_end / h).round() as usize;

    let params = TuningParams::new([n, 16, 1], Fold::new(8, 1, 1));
    let plan = erk_plan(&Tableau::rk4(), &ivp, h, Variant::D);
    println!(
        "integrating Heat2D({n}) with {} ({} sweeps/step), {steps} steps to t={t_end}",
        plan.name,
        plan.ops.len()
    );
    let mut integ = Integrator::new(&ivp, plan, h, params)?;

    let start = std::time::Instant::now();
    for chunk in 0..10 {
        integ.run(steps / 10)?;
        let err = integ
            .error_vs_exact(&ivp)
            .expect("heat2d has an exact solution");
        let mid = integ.state(0).get(n as isize / 2, n as isize / 2, 0);
        println!(
            "t = {:.4}  u(mid) = {:.5}  max error vs exact = {:.2e}",
            integ.time(),
            mid,
            err
        );
        let _ = chunk;
    }
    let secs = start.elapsed().as_secs_f64();
    let lups = steps as f64 * integ.plan().updates_per_step() as f64;
    println!(
        "\ndone in {secs:.2}s — {:.0} MLUP/s sustained on the host",
        lups / secs / 1e6
    );
    Ok(())
}
