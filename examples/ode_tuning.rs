//! The paper's headline application: offline tuning of explicit ODE
//! methods with Offsite driving YaskSite predictions.
//!
//! For the 2-D heat IVP, every (method × implementation variant)
//! candidate is predicted analytically, validated on the simulated
//! Cascade Lake hierarchy, and the selected variant's speedup over a
//! naive implementation is reported.
//!
//! Run with: `cargo run --release --example ode_tuning`

use yasksite_repro::arch::Machine;
use yasksite_repro::ode::ivps::Heat2d;
use yasksite_repro::ode::Tableau;
use yasksite_repro::offsite::{EvalOptions, MethodSpec, Offsite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::cascade_lake();
    let cores = 2;
    let offsite = Offsite::new(machine, cores);
    let ivp = Heat2d::new(256);
    let methods = vec![
        MethodSpec::erk(Tableau::heun2()),
        MethodSpec::erk(Tableau::rk4()),
        MethodSpec::pirk(Tableau::radau_iia2(), 3),
    ];

    println!(
        "tuning Heat2D(256) on {} with {cores} cores...",
        offsite.machine().tag()
    );
    // The options builder mirrors YaskSite's `TuneRequest`: `jobs`
    // parallelises the analytic rankings (results are jobs-invariant),
    // and repeated predictions of the shared stage stencils are served
    // from the memoized prediction cache (see `select_cost` below).
    let opts = EvalOptions::default().jobs(2);
    let report = offsite.evaluate_with(&ivp, &methods, 1e-6, &opts)?;

    println!(
        "\n{:<24} {:>13} {:>13} {:>6}",
        "method/variant", "predicted[s]", "measured[s]", "err%"
    );
    for c in &report.candidates {
        println!(
            "{:<24} {:>13.3e} {:>13.3e} {:>6.0}",
            format!("{}/{}", c.method, c.variant),
            c.predicted_s,
            c.measured_s,
            c.rel_err * 100.0
        );
    }
    println!(
        "\nprediction picked the measured rank-{} candidate{}",
        report.rank_of_pick + 1,
        if report.picked_best {
            " — the true best"
        } else {
            ""
        }
    );
    println!("mean prediction error: {:.0}%", report.mean_rel_err * 100.0);
    println!("\nspeedups over the naive baseline:");
    for (m, s) in &report.speedups {
        println!("  {m:<20} {s:.2}x");
    }
    println!("\ncosts:");
    println!(
        "  selection  (model only): {}",
        report.select_cost.summary()
    );
    println!(
        "  validation (exhaustive): {}",
        report.validate_cost.summary()
    );
    Ok(())
}
