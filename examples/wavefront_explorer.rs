//! Explore wavefront temporal blocking: how deep should the time skew be?
//!
//! Sweeps the wavefront depth for the heat-3d kernel on the Cascade Lake
//! and Rome models, showing the memory-traffic reduction the simulator
//! observes and the point where the ECM model says the skewed working
//! set stops fitting the last-level cache.
//!
//! Run with: `cargo run --release --example wavefront_explorer`

use yasksite_repro::arch::Machine;
use yasksite_repro::engine::TuningParams;
use yasksite_repro::grid::Fold;
use yasksite_repro::stencil::builders::heat3d;
use yasksite_repro::yasksite::Solution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = [96, 96, 96];
    for machine in [Machine::cascade_lake(), Machine::rome()] {
        let fold = Fold::new(machine.lanes(), 1, 1);
        let sol = Solution::new(heat3d(1), domain, machine.clone());
        println!(
            "\n{} — heat-3d {}x{}x{}, 1 core",
            machine.tag(),
            domain[0],
            domain[1],
            domain[2]
        );
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>8}",
            "depth", "ECM", "measured", "memB/LUP", "fits?"
        );
        for depth in [1usize, 2, 4, 8, 16] {
            let p = TuningParams::new([domain[0], 8, 8], fold).wavefront(depth);
            let pred = sol.predict(&p, 1);
            let meas = sol.measure(&p)?;
            let bytes = meas.stats.as_ref().map_or(0.0, |st| {
                st.mem_bytes(machine.line_bytes())
                    / (2 * depth) as f64
                    / sol.updates_per_sweep() as f64
            });
            println!(
                "{:>6} {:>10.0} {:>10.0} {:>10.1} {:>8}",
                depth,
                pred.mlups,
                meas.mlups,
                bytes,
                if depth == 1 {
                    "-"
                } else if pred.wavefront_effective {
                    "yes"
                } else {
                    "no"
                }
            );
        }
    }
    println!("\n(memB/LUP falls with depth while the skew fits the LLC; the model\n marks the breakdown point with fits?=no)");
    Ok(())
}
