//! The Execution–Cache–Memory (ECM) analytic performance model.
//!
//! This is the paper's analytic engine: given a stencil's static analysis,
//! the iteration tile (block) shape, the vector fold and a machine model, it
//! predicts single-core cycles per unit of work and the multi-core scaling
//! curve *without running the kernel*. The model has three parts:
//!
//! 1. **In-core** ([`incore`]): cycles the core needs to execute one cache
//!    line's worth of updates when all data is in L1, split into the
//!    overlapping arithmetic part `T_OL` and the non-overlapping
//!    load/store part `T_nOL`.
//! 2. **Data transfers** ([`traffic`]): cache lines crossing each hierarchy
//!    boundary per unit of work, derived from *layer conditions*
//!    ([`layer`]) — the capacity conditions under which a stencil's
//!    vertical reuse is captured by a given cache level.
//! 3. **Composition + scaling**: on Intel-style cores the data terms
//!    serialise (`T_ECM = max(T_OL, T_nOL + ΣT_data)`); multi-core
//!    performance scales linearly until the saturated memory bandwidth is
//!    hit.
//!
//! A classic Roofline model ([`roofline`]) is included as the baseline the
//! paper compares against.
//!
//! # Examples
//!
//! ```
//! use yasksite_arch::Machine;
//! use yasksite_ecm::{EcmModel, KernelDesc};
//! use yasksite_grid::Fold;
//! use yasksite_stencil::builders::heat3d;
//!
//! let machine = Machine::cascade_lake();
//! let stencil = heat3d(1);
//! let desc = KernelDesc::new(&stencil, [512, 512, 512])
//!     .tile([512, 8, 8])
//!     .fold(Fold::new(8, 1, 1));
//! let p = EcmModel::new(&machine).predict(&desc);
//! assert!(p.mlups(1) > 100.0);
//! assert!(p.sat_cores <= machine.cores_per_socket);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod incore;
pub mod layer;
pub mod roofline;
pub mod traffic;

mod model;

pub use drift::{drift_fraction, DriftStats, DRIFT_SUSPECT_THRESHOLD};
pub use incore::InCore;
pub use layer::{LayerStatus, LcReport};
pub use model::{EcmModel, EcmPrediction, KernelDesc, OverlapPolicy};
pub use roofline::roofline_mlups;
pub use traffic::{traffic_pessimistic, traffic_resident, TrafficModel};
