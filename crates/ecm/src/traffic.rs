//! Data-traffic prediction from layer conditions.

use yasksite_arch::Machine;
use yasksite_stencil::StencilInfo;

use crate::layer::{layer_conditions, LayerStatus, LcReport};

/// Predicted cache-line traffic per **unit of work** (one cache line of
/// results = 8 updates) crossing each hierarchy boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    /// Lines crossing boundary `b` per unit of work; boundary `b` connects
    /// level `b` and level `b+1`, the last boundary is LLC ↔ memory.
    pub per_boundary_lines: Vec<f64>,
    /// Memory bytes per lattice update (the denominator of the bandwidth
    /// ceiling).
    pub bytes_per_lup_mem: f64,
    /// Layer-condition reports, one per input grid.
    pub lc: Vec<LcReport>,
}

/// Lines of input grid `g` crossing a boundary whose governing level has
/// the given layer-condition status.
fn input_lines(status: LayerStatus, info: &StencilInfo, g: usize) -> f64 {
    match status {
        // Full vertical reuse: each element travels once.
        LayerStatus::Layers => 1.0,
        // Plane reuse lost: reloaded once per distinct z-layer use.
        LayerStatus::Rows => info.layers_read(g) as f64,
        // Row reuse lost too: reloaded once per distinct (y, z) offset.
        // (x-direction reuse survives inside the line itself.)
        LayerStatus::None => info.rows_read(g) as f64,
    }
}

/// Capacity fraction a steady-state resident set may occupy before the
/// fit is considered broken. More generous than the layer-condition
/// safety factor: an LRU cache retains a repeatedly-swept pool well up to
/// most of its capacity.
pub const RESIDENCY_SAFETY: f64 = 0.75;

/// Like [`traffic`], but with an explicit steady-state resident-set size:
/// when the kernel's whole working data (`resident_bytes`, e.g. all grids
/// of an ODE step plan) fits into a cache level, the boundaries below that
/// level carry no steady-state traffic — successive sweeps hit in cache.
#[must_use]
pub fn traffic_resident(
    info: &StencilInfo,
    tile: [usize; 3],
    domain: [usize; 3],
    machine: &Machine,
    ncores: usize,
    streaming_stores: bool,
    resident_bytes: f64,
) -> TrafficModel {
    let mut t = traffic(info, tile, domain, machine, ncores, streaming_stores);
    let nlev = machine.caches.len();
    for b in 0..nlev {
        let c = &machine.caches[b];
        let sharers = c.scope.sharers(machine.cores_per_socket).min(ncores).max(1);
        // Data is spread over the instances in use; each instance holds
        // its cores' share.
        let per_instance = resident_bytes * sharers as f64 / ncores.max(1) as f64;
        if per_instance <= c.size_bytes as f64 * RESIDENCY_SAFETY {
            for bb in b..nlev {
                t.per_boundary_lines[bb] = 0.0;
            }
            break;
        }
    }
    t.bytes_per_lup_mem = t.per_boundary_lines[nlev - 1] * machine.line_bytes() as f64
        / crate::incore::UPDATES_PER_UNIT;
    t
}

/// Pessimistic traffic without layer-condition analysis: every boundary
/// is charged the no-reuse row count (the ablation baseline — what a
/// model ignorant of cache capacity would predict).
#[must_use]
pub fn traffic_pessimistic(
    info: &StencilInfo,
    machine: &Machine,
    streaming_stores: bool,
) -> TrafficModel {
    let nlev = machine.caches.len();
    let grids: Vec<usize> = {
        let mut g: Vec<usize> = info.offsets.iter().map(|(g, _)| *g).collect();
        g.dedup();
        g
    };
    let out_lines = if streaming_stores { 1.0 } else { 2.0 };
    let per_line: f64 = grids
        .iter()
        .map(|&g| input_lines(LayerStatus::None, info, g))
        .sum::<f64>()
        + out_lines;
    let per_boundary_lines = vec![per_line; nlev];
    let bytes_per_lup_mem =
        per_line * machine.line_bytes() as f64 / crate::incore::UPDATES_PER_UNIT;
    TrafficModel {
        per_boundary_lines,
        bytes_per_lup_mem,
        lc: Vec::new(),
    }
}

/// Computes the traffic model for a stencil streamed over an iteration
/// tile of `tile` points per grid, on `ncores` active cores, assuming the
/// data ultimately streams from memory (see [`traffic_resident`] for the
/// cache-resident refinement).
#[must_use]
pub fn traffic(
    info: &StencilInfo,
    tile: [usize; 3],
    domain: [usize; 3],
    machine: &Machine,
    ncores: usize,
    streaming_stores: bool,
) -> TrafficModel {
    let nlev = machine.caches.len();
    let tile = [
        tile[0].min(domain[0]).max(1),
        tile[1].min(domain[1]).max(1),
        tile[2].min(domain[2]).max(1),
    ];
    let mut lc = Vec::with_capacity(info.read_grids);
    let mut per_boundary = vec![0.0f64; nlev];

    // Halo-reload overhead: only dimensions actually tiled (tile < domain)
    // re-read halos at tile faces.
    let mut halo_factor = 1.0;
    for d in 0..3 {
        if tile[d] < domain[d] {
            halo_factor *= (tile[d] + 2 * info.radius[d]) as f64 / tile[d] as f64;
        }
    }

    let grids: Vec<usize> = {
        let mut g: Vec<usize> = info.offsets.iter().map(|(g, _)| *g).collect();
        g.dedup();
        g
    };
    for &g in &grids {
        let rep = layer_conditions(info, g, tile, machine, ncores);
        for (b, agg) in per_boundary.iter_mut().enumerate() {
            let lines = input_lines(rep.status[b], info, g);
            // The halo factor applies to the compulsory part; reload
            // traffic already re-counts the halo rows/layers.
            *agg += if matches!(rep.status[b], LayerStatus::Layers) {
                lines * halo_factor
            } else {
                lines
            };
        }
        lc.push(rep);
    }

    // Every line arriving from below a boundary also crosses the
    // boundaries above it, so traffic is monotone non-increasing toward
    // memory; enforce this where the per-level estimates disagree (e.g.
    // a large halo-reload factor at an outer level vs. a row-reuse
    // estimate at L1 that does not model tile reloads).
    for b in (0..nlev - 1).rev() {
        per_boundary[b] = per_boundary[b].max(per_boundary[b + 1]);
    }

    // Output stream.
    let out_lines = if streaming_stores { 1.0 } else { 2.0 };
    for b in per_boundary.iter_mut() {
        *b += out_lines;
    }

    let bytes_per_lup_mem =
        per_boundary[nlev - 1] * machine.line_bytes() as f64 / crate::incore::UPDATES_PER_UNIT;
    TrafficModel {
        per_boundary_lines: per_boundary,
        bytes_per_lup_mem,
        lc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_stencil::builders::{heat3d, wave2d};

    #[test]
    fn well_blocked_heat3d_moves_three_lines_everywhere() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        // Tiny tile: layer condition holds at L1 already; domain == tile in
        // y/z so only x untiled (tile[0] == domain[0] -> no halo factor).
        let t = traffic(&s.info(), [64, 8, 8], [64, 8, 8], &m, 1, false);
        for b in 0..3 {
            assert!(
                (t.per_boundary_lines[b] - 3.0).abs() < 1e-12,
                "boundary {b}"
            );
        }
        // 3 lines * 64 B / 8 updates = 24 B/LUP.
        assert!((t.bytes_per_lup_mem - 24.0).abs() < 1e-12);
    }

    #[test]
    fn unblocked_large_grid_pays_in_upper_levels() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let t = traffic(&s.info(), [512, 512, 512], [512, 512, 512], &m, 1, false);
        // L1 can't even hold rows -> 5 + 2; L2 holds rows -> 3 + 2;
        // L3 (14 MB eff) holds 3 layers of 512x512 (6.3 MB) -> 1 + 2.
        assert!((t.per_boundary_lines[0] - 7.0).abs() < 1e-12);
        assert!((t.per_boundary_lines[1] - 5.0).abs() < 1e-12);
        assert!((t.per_boundary_lines[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn blocking_adds_halo_overhead() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let t = traffic(&s.info(), [512, 8, 8], [512, 512, 512], &m, 1, false);
        // y and z tiled at 8: factor (10/8)^2 = 1.5625 on the compulsory
        // input line -> 1.5625 + 2.
        assert!((t.per_boundary_lines[2] - (1.5625 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn streaming_stores_save_the_write_allocate() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let a = traffic(&s.info(), [64, 8, 8], [64, 8, 8], &m, 1, false);
        let b = traffic(&s.info(), [64, 8, 8], [64, 8, 8], &m, 1, true);
        assert!((a.per_boundary_lines[2] - b.per_boundary_lines[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_input_grids_double_the_input_streams() {
        let m = Machine::cascade_lake();
        let s = wave2d(0.3);
        let t = traffic(&s.info(), [64, 8, 1], [64, 8, 1], &m, 1, false);
        // u and u_prev: 1 line each + 2 output lines = 4.
        assert!((t.per_boundary_lines[2] - 4.0).abs() < 1e-12);
        assert_eq!(t.lc.len(), 2);
    }
}
