//! The in-core part of the ECM model: `T_OL` and `T_nOL`.

use std::collections::BTreeSet;

use yasksite_arch::PortModel;
use yasksite_grid::Fold;
use yasksite_stencil::StencilInfo;

/// In-core cycle counts per **unit of work** (one 64-byte cache line of
/// results, i.e. 8 double-precision lattice updates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InCore {
    /// Overlapping part: arithmetic (FMA/ADD/MUL) plus any fold shuffles,
    /// which can overlap with data transfers.
    pub t_ol: f64,
    /// Non-overlapping part: load/store issue cycles, which serialise with
    /// cache transfers on Intel-style cores.
    pub t_nol: f64,
    /// Vector-load issue slots consumed per unit of work (diagnostics).
    pub loads: f64,
    /// Vector stores issued per unit of work.
    pub stores: f64,
    /// Cross-brick permutes per unit of work caused by the fold.
    pub permutes: f64,
}

/// Updates per unit of work: one cache line of `f64` results.
pub const UPDATES_PER_UNIT: f64 = 8.0;

/// Throughput of the shuffle/blend resources (instructions per cycle).
const PERMUTE_THROUGHPUT: f64 = 2.0;

/// Average extra load-issue cost of a vector load that is not aligned to
/// the linear layout (it straddles two cache lines half the time).
pub const UNALIGNED_LOAD_COST: f64 = 1.5;

/// Computes the in-core model for `info` executed with SIMD `fold` on a
/// core described by `ports`.
///
/// Two layout regimes are modelled, following YASK's vector folding:
///
/// * **In-line layout** (`fold.x == lanes`): memory is linear along x, so
///   every read offset is a single (possibly unaligned) vector load;
///   x-unaligned loads are charged [`UNALIGNED_LOAD_COST`] issue slots for
///   their cache-line straddling. No shuffles are needed.
/// * **Multi-dimensional folds**: each offset's operand is assembled from
///   whole aligned bricks. Offsets mapping into the same bricks *share*
///   loads (the folding pay-off, dramatic for dense box stencils), but
///   every non-brick-aligned offset costs a permute on the shuffle port.
#[must_use]
pub fn incore(info: &StencilInfo, ports: &PortModel, fold: Fold) -> InCore {
    incore_with_issue(info, ports, fold, false)
}

/// Like [`incore`], but with an explicit issue regime.
///
/// `scalar_issue = true` models a kernel that executes one lattice point
/// per instruction (the engine's generic per-point tier, selected when no
/// vectorised kernel is eligible): every offset is one scalar load, every
/// update one scalar store, and the unit of work takes `lanes` times as
/// many iterations — no alignment penalties and no fold permutes, because
/// scalar accesses never straddle lanes. Used by the tier-aware predictor
/// so configurations the engine cannot vectorise are not credited with
/// SIMD throughput.
#[must_use]
pub fn incore_with_issue(
    info: &StencilInfo,
    ports: &PortModel,
    fold: Fold,
    scalar_issue: bool,
) -> InCore {
    if scalar_issue {
        // One scalar iteration per lattice update: vec_iters becomes the
        // full unit of work, one aligned load per offset, no shuffles.
        let iters = UPDATES_PER_UNIT;
        let loads = info.offsets.len() as f64;
        let stores = 1.0;
        let arith = ports.arith_cycles(
            info.fmas as f64,
            (info.adds_rem + info.negs) as f64,
            info.muls_rem as f64,
        );
        return InCore {
            t_ol: arith * iters,
            t_nol: ports.mem_cycles(loads, stores) * iters,
            loads: loads * iters,
            stores: stores * iters,
            permutes: 0.0,
        };
    }
    let lanes = ports.simd.lanes_f64() as f64;
    // Vector iterations per unit of work (a 512-bit machine does one
    // 8-lane iteration per output line; a 256-bit machine needs two).
    let vec_iters = UPDATES_PER_UNIT / lanes;

    let f = fold.to_array();
    let inline_layout = fold.x * fold.y * fold.z == 1 || fold.x >= lanes as usize;
    let mut loads = 0.0;
    let mut permutes = 0.0;
    if inline_layout {
        for (_, off) in &info.offsets {
            loads += if off[0] % lanes as i32 == 0 {
                1.0
            } else {
                UNALIGNED_LOAD_COST
            };
        }
    } else {
        // Distinct bricks covering all offsets share one load each.
        let mut bricks: BTreeSet<(usize, [i32; 3])> = BTreeSet::new();
        for (g, off) in &info.offsets {
            let mut lo = [0i32; 3];
            let mut hi = [0i32; 3];
            for d in 0..3 {
                let fd = f[d] as i32;
                lo[d] = off[d].div_euclid(fd);
                hi[d] = (off[d] + fd - 1).div_euclid(fd);
            }
            for bz in lo[2]..=hi[2] {
                for by in lo[1]..=hi[1] {
                    for bx in lo[0]..=hi[0] {
                        bricks.insert((*g, [bx, by, bz]));
                    }
                }
            }
            let aligned = (0..3).all(|d| off[d].rem_euclid(f[d] as i32) == 0);
            if !aligned {
                permutes += 1.0;
            }
        }
        loads = bricks.len() as f64;
    }
    let stores = 1.0;

    let arith = ports.arith_cycles(
        info.fmas as f64,
        (info.adds_rem + info.negs) as f64,
        info.muls_rem as f64,
    );
    let shuffle = permutes / PERMUTE_THROUGHPUT;
    let t_ol = (arith + shuffle) * vec_iters;
    let t_nol = ports.mem_cycles(loads, stores) * vec_iters;
    InCore {
        t_ol,
        t_nol,
        loads: loads * vec_iters,
        stores: stores * vec_iters,
        permutes: permutes * vec_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_arch::Machine;
    use yasksite_stencil::builders::{box3d, heat3d};

    #[test]
    fn heat3d_inline_fold_on_clx() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let ic = incore(&s.info(), &m.ports, Fold::new(8, 1, 1));
        // In-line: 5 aligned offsets + 2 x-unaligned at 1.5 slots = 8.
        assert!((ic.loads - 8.0).abs() < 1e-12);
        assert_eq!(ic.permutes, 0.0);
        // Arithmetic: 2 FMA + 4 ADD on 2 ports = 3 cy, no shuffles.
        assert!((ic.t_ol - 3.0).abs() < 1e-12);
        // max(8/2, 1/1, 9/3) = 4 cy.
        assert!((ic.t_nol - 4.0).abs() < 1e-12);
    }

    #[test]
    fn heat3d_2d_fold_shares_bricks() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let ic = incore(&s.info(), &m.ports, Fold::new(4, 2, 1));
        // Bricks: centre, x±1 (2 extra), y±1 (2 extra), z±1 (2) = 7 loads;
        // 4 unaligned offsets need permutes.
        assert!((ic.loads - 7.0).abs() < 1e-12);
        assert!((ic.permutes - 4.0).abs() < 1e-12);
        // t_ol = 3 (arith) + 4/2 (shuffle) = 5.
        assert!((ic.t_ol - 5.0).abs() < 1e-12);
        // t_nol = max(7/2, 1, 8/3) = 3.5 < in-line's 4.0.
        assert!((ic.t_nol - 3.5).abs() < 1e-12);
    }

    #[test]
    fn box_stencil_folding_slashes_load_count() {
        let m = Machine::cascade_lake();
        let s = box3d(1);
        let inline = incore(&s.info(), &m.ports, Fold::new(8, 1, 1));
        let folded = incore(&s.info(), &m.ports, Fold::new(4, 2, 1));
        // In-line: 9 aligned + 18 unaligned*1.5 = 36 slots.
        assert!((inline.loads - 36.0).abs() < 1e-12);
        // Folded: brick union is 3x3x3 = 27 loads (one per brick, shared
        // among the 27 offsets), still below the in-line slot count.
        assert!((folded.loads - 27.0).abs() < 1e-12);
        assert!(folded.t_nol < inline.t_nol);
    }

    #[test]
    fn avx2_doubles_vector_iterations() {
        let rome = Machine::rome();
        let clx = Machine::cascade_lake();
        let s = heat3d(1);
        let a = incore(&s.info(), &rome.ports, Fold::new(4, 1, 1));
        let b = incore(&s.info(), &clx.ports, Fold::new(8, 1, 1));
        // Rome runs 2 vector iterations per unit of work.
        assert!((a.stores - 2.0).abs() < 1e-12);
        assert!((b.stores - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_issue_loses_the_simd_speedup() {
        // The generic per-point tier must never be credited with SIMD
        // throughput: its in-core time is lanes× the vectorised kernel's
        // iteration count (8 scalar iterations per unit of work on CLX)
        // and it pays no permutes or alignment penalties.
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let vec = incore(&s.info(), &m.ports, Fold::new(8, 1, 1));
        let scalar = incore_with_issue(&s.info(), &m.ports, Fold::new(8, 1, 1), false);
        assert_eq!(vec, scalar, "flag off is the plain model");
        let generic = incore_with_issue(&s.info(), &m.ports, Fold::new(8, 1, 1), true);
        assert!(generic.t_ol > vec.t_ol * 4.0);
        assert!(generic.t_nol > vec.t_nol);
        assert_eq!(generic.permutes, 0.0);
        // 7 offsets × 8 iterations, one aligned load each.
        assert!((generic.loads - 56.0).abs() < 1e-12);
    }

    #[test]
    fn unit_fold_is_inline_scalar_layout() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let ic = incore(&s.info(), &m.ports, Fold::unit());
        assert_eq!(ic.permutes, 0.0);
        assert!(ic.loads > 0.0);
    }
}
