//! Model-drift statistics: how far ECM predictions sit from
//! measurements.
//!
//! Every measured tuning trial yields a pair (predicted MLUP/s, measured
//! MLUP/s). The *drift* of one pair is the signed relative error
//! `(measured − predicted) / predicted`: negative when the model was
//! optimistic, positive when it was pessimistic. This module aggregates
//! a set of drifts into percentiles of the absolute drift and flags a
//! stencil as *model suspect* once its tail drift exceeds
//! [`DRIFT_SUSPECT_THRESHOLD`] — the auditable signal behind
//! analytic-fallback decisions. Pure math, no I/O; the tuner in
//! `yasksite-core` owns the ledger that feeds it.

/// Absolute drift above which a stencil's model is flagged suspect.
///
/// The ECM model is a first-principles throughput bound; the paper's
/// own validation sees it within tens of percent of measurements, so a
/// p95 absolute drift beyond 50% means the model is not describing the
/// machine the measurements came from.
pub const DRIFT_SUSPECT_THRESHOLD: f64 = 0.5;

/// Signed relative model error for one trial:
/// `(measured − predicted) / predicted`.
///
/// Returns 0 when `predicted` is not a positive finite number (a model
/// that predicted nothing has no meaningful drift).
#[must_use]
pub fn drift_fraction(predicted_mlups: f64, measured_mlups: f64) -> f64 {
    if !(predicted_mlups.is_finite() && predicted_mlups > 0.0 && measured_mlups.is_finite()) {
        return 0.0;
    }
    (measured_mlups - predicted_mlups) / predicted_mlups
}

/// Percentile aggregate of the absolute drifts of one stencil (or one
/// whole run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftStats {
    /// Pairs aggregated.
    pub count: u64,
    /// Median absolute drift.
    pub p50: f64,
    /// 95th-percentile absolute drift.
    pub p95: f64,
    /// 99th-percentile absolute drift.
    pub p99: f64,
    /// Largest absolute drift observed.
    pub max_abs: f64,
    /// Whether the tail drift crosses [`DRIFT_SUSPECT_THRESHOLD`].
    pub suspect: bool,
}

impl DriftStats {
    /// Aggregates signed drift fractions; returns `None` for an empty
    /// set. Non-finite entries are ignored.
    #[must_use]
    pub fn from_drifts(drifts: &[f64]) -> Option<DriftStats> {
        let mut abs: Vec<f64> = drifts
            .iter()
            .filter(|d| d.is_finite())
            .map(|d| d.abs())
            .collect();
        if abs.is_empty() {
            return None;
        }
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
        let p50 = percentile_sorted(&abs, 0.50);
        let p95 = percentile_sorted(&abs, 0.95);
        let p99 = percentile_sorted(&abs, 0.99);
        let max_abs = *abs.last().expect("non-empty");
        Some(DriftStats {
            count: abs.len() as u64,
            p50,
            p95,
            p99,
            max_abs,
            suspect: p95 > DRIFT_SUSPECT_THRESHOLD,
        })
    }
}

/// Linear-interpolation percentile of an ascending-sorted sample set
/// (the same estimator the telemetry histogram summaries use). `q` in
/// `[0, 1]`.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted {
        [] => 0.0,
        [x] => *x,
        _ => {
            let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_signed_relative_error() {
        assert!((drift_fraction(100.0, 150.0) - 0.5).abs() < 1e-12);
        assert!((drift_fraction(100.0, 50.0) + 0.5).abs() < 1e-12);
        assert_eq!(drift_fraction(100.0, 100.0), 0.0);
    }

    #[test]
    fn degenerate_predictions_have_zero_drift() {
        assert_eq!(drift_fraction(0.0, 50.0), 0.0);
        assert_eq!(drift_fraction(-1.0, 50.0), 0.0);
        assert_eq!(drift_fraction(f64::NAN, 50.0), 0.0);
        assert_eq!(drift_fraction(f64::INFINITY, 50.0), 0.0);
        assert_eq!(drift_fraction(100.0, f64::NAN), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = [0.0, 1.0, 2.0, 3.0];
        assert!((percentile_sorted(&s, 0.5) - 1.5).abs() < 1e-12);
        assert_eq!(percentile_sorted(&s, 0.0), 0.0);
        assert_eq!(percentile_sorted(&s, 1.0), 3.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn stats_aggregate_and_flag_suspects() {
        // Small symmetric drifts: well-behaved model.
        let good = DriftStats::from_drifts(&[0.05, -0.08, 0.02, -0.01]).unwrap();
        assert_eq!(good.count, 4);
        assert!(good.p50 <= good.p95 && good.p95 <= good.p99);
        assert!((good.max_abs - 0.08).abs() < 1e-12);
        assert!(!good.suspect);

        // Tail blows past the threshold: suspect.
        let bad = DriftStats::from_drifts(&[0.1, -0.9, 0.8, -0.7, 0.9]).unwrap();
        assert!(bad.suspect);
        assert!(bad.p95 > DRIFT_SUSPECT_THRESHOLD);

        assert!(DriftStats::from_drifts(&[]).is_none());
        assert!(DriftStats::from_drifts(&[f64::NAN]).is_none());
    }
}
