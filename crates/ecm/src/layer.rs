//! Layer conditions: which cache level captures a stencil's vertical reuse.

use yasksite_arch::Machine;
use yasksite_stencil::StencilInfo;

/// Degree of reuse a cache level captures for one input grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerStatus {
    /// The full set of concurrently live grid *layers* (z-planes of the
    /// iteration tile) fits: every input element is loaded once per tile
    /// traversal (3-D layer condition holds).
    Layers,
    /// Only the concurrently live *rows* fit: elements are reloaded once
    /// per distinct z-layer access (2-D layer condition).
    Rows,
    /// Not even the rows fit: every distinct access offset causes its own
    /// transfer.
    None,
}

/// Layer-condition evaluation for one input grid at every cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct LcReport {
    /// Status per cache level, index 0 = L1.
    pub status: Vec<LayerStatus>,
    /// The working-set bytes required for the 3-D (layers) condition.
    pub ws_layers_bytes: f64,
    /// The working-set bytes required for the 2-D (rows) condition.
    pub ws_rows_bytes: f64,
}

/// Fraction of a cache level's capacity usable by one stream set before
/// conflict/replacement noise breaks the condition; the customary safety
/// factor in layer-condition analyses.
pub const CAPACITY_SAFETY: f64 = 0.5;

/// Evaluates the layer conditions of input grid `g` of stencil `info` for a
/// tile of `tile = [tx, ty, tz]` lattice points (the iteration tile at
/// which the traversal streams: the spatial block, clipped to the domain),
/// shared among `cores_per_instance[l]` cores at each level.
///
/// The working sets follow the standard analysis for x-inner/y-mid/z-outer
/// traversal:
/// * 3-D condition: `layers_read` tile-sized xy-planes (with x-halo) stay
///   live while z advances;
/// * 2-D condition: `rows_read` x-rows (with halo) stay live while y
///   advances.
#[must_use]
pub fn layer_conditions(
    info: &StencilInfo,
    g: usize,
    tile: [usize; 3],
    machine: &Machine,
    ncores: usize,
) -> LcReport {
    let (lo_x, hi_x) = info.extent(g, 0);
    let tx_h = tile[0] as f64 + f64::from(hi_x - lo_x);
    let (lo_y, hi_y) = info.extent(g, 1);
    let ty_h = tile[1] as f64 + f64::from(hi_y - lo_y);
    let layers = info.layers_read(g) as f64;
    let rows = info.rows_read(g) as f64;

    let ws_layers = layers * tx_h * ty_h * 8.0;
    let ws_rows = rows * tx_h * 8.0;

    let status = machine
        .caches
        .iter()
        .map(|c| {
            let sharers = c.scope.sharers(machine.cores_per_socket);
            let users = sharers.min(ncores).max(1);
            let eff = c.size_bytes as f64 * CAPACITY_SAFETY / users as f64;
            if ws_layers <= eff {
                LayerStatus::Layers
            } else if ws_rows <= eff {
                LayerStatus::Rows
            } else {
                LayerStatus::None
            }
        })
        .collect();
    LcReport {
        status,
        ws_layers_bytes: ws_layers,
        ws_rows_bytes: ws_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_stencil::builders::heat3d;

    #[test]
    fn small_tile_satisfies_everything() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let r = layer_conditions(&s.info(), 0, [64, 8, 8], &m, 1);
        assert_eq!(r.status[0], LayerStatus::Layers); // 3*66*10*8 = 15.8 KB < 16 KB
        assert_eq!(r.status[1], LayerStatus::Layers);
        assert_eq!(r.status[2], LayerStatus::Layers);
    }

    #[test]
    fn huge_plane_breaks_l1_and_l2() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        // 1024x1024 xy-plane: 3 layers = 25 MB -> only L3 can hold layers.
        let r = layer_conditions(&s.info(), 0, [1024, 1024, 1024], &m, 1);
        assert_eq!(r.status[0], LayerStatus::None); // rows = 5*1026*8 = 41 KB > 16 KB
        assert_eq!(r.status[1], LayerStatus::Rows);
        assert_ne!(r.status[2], LayerStatus::Layers); // 25 MB > 14 MB eff
    }

    #[test]
    fn sharing_reduces_effective_capacity() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        // 512x512 plane: 3 layers ~ 6.3 MB; fits 14 MB eff L3 at 1 core,
        // not 0.7 MB/core at 20 cores.
        let one = layer_conditions(&s.info(), 0, [512, 512, 512], &m, 1);
        let twenty = layer_conditions(&s.info(), 0, [512, 512, 512], &m, 20);
        assert_eq!(one.status[2], LayerStatus::Layers);
        assert_ne!(twenty.status[2], LayerStatus::Layers);
    }

    #[test]
    fn working_sets_scale_with_tile() {
        let m = Machine::rome();
        let s = heat3d(1);
        let a = layer_conditions(&s.info(), 0, [128, 128, 128], &m, 1);
        let b = layer_conditions(&s.info(), 0, [256, 256, 256], &m, 1);
        assert!(b.ws_layers_bytes > 3.9 * a.ws_layers_bytes);
        assert!(b.ws_rows_bytes > 1.9 * a.ws_rows_bytes);
    }
}
