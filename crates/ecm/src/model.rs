//! Model composition and multi-core scaling.

use yasksite_arch::{Machine, MachineKind};
use yasksite_grid::Fold;
use yasksite_stencil::{Stencil, StencilInfo};

use crate::incore::{incore_with_issue, InCore, UPDATES_PER_UNIT};
use crate::traffic::{traffic_resident, TrafficModel};

/// How data-transfer terms combine with each other and the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Intel-style: all transfers serialise with `T_nOL`
    /// (`T = max(T_OL, T_nOL + ΣT_data)`).
    Serial,
    /// AMD-style: cache transfers serialise, the memory transfer overlaps
    /// with them (`T = max(T_OL, T_nOL + ΣT_cache, T_mem)`), reflecting
    /// Zen's more autonomous memory pipeline.
    MemOverlap,
}

impl OverlapPolicy {
    /// The customary policy for a machine model.
    #[must_use]
    pub fn for_machine(m: &Machine) -> Self {
        match m.kind {
            MachineKind::Rome => OverlapPolicy::MemOverlap,
            _ => OverlapPolicy::Serial,
        }
    }
}

/// Everything the ECM model needs to know about one kernel configuration.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Static analysis of the stencil.
    pub info: StencilInfo,
    /// Stencil name (for reports).
    pub name: String,
    /// Full domain extents.
    pub domain: [usize; 3],
    /// Iteration tile (spatial block) extents.
    pub tile: [usize; 3],
    /// Vector fold.
    pub fold: Fold,
    /// Whether stores bypass the cache (non-temporal).
    pub streaming_stores: bool,
    /// Whether the kernel issues one lattice point per instruction (the
    /// engine's generic per-point tier) instead of vectorised kernels;
    /// see [`crate::incore::incore_with_issue`].
    pub scalar_issue: bool,
    /// Steady-state resident-set bytes of the kernel's whole working data
    /// (defaults to all of its grids); boundaries below a level that can
    /// hold this carry no steady-state traffic.
    pub resident_bytes: f64,
}

impl KernelDesc {
    /// Starts a descriptor from a stencil and a domain; tile defaults to
    /// the whole domain and the fold to in-line 8×1×1.
    #[must_use]
    pub fn new(stencil: &Stencil, domain: [usize; 3]) -> Self {
        let info = stencil.info();
        let grids = info.read_grids + 1;
        let resident_bytes = (grids * domain[0] * domain[1] * domain[2] * 8) as f64;
        KernelDesc {
            info,
            name: stencil.name().to_string(),
            domain,
            tile: domain,
            fold: Fold::new(8, 1, 1),
            streaming_stores: false,
            scalar_issue: false,
            resident_bytes,
        }
    }

    /// Sets the iteration tile (spatial block).
    #[must_use]
    pub fn tile(mut self, tile: [usize; 3]) -> Self {
        self.tile = tile;
        self
    }

    /// Sets the vector fold.
    #[must_use]
    pub fn fold(mut self, fold: Fold) -> Self {
        self.fold = fold;
        self
    }

    /// Enables non-temporal stores.
    #[must_use]
    pub fn streaming_stores(mut self, on: bool) -> Self {
        self.streaming_stores = on;
        self
    }

    /// Marks the kernel as executing on the generic per-point tier
    /// (scalar issue, no SIMD credit). The tier-aware predictor sets this
    /// from the engine's tier planner; it defaults to off, so vectorised
    /// configurations are modelled exactly as before.
    #[must_use]
    pub fn scalar_issue(mut self, on: bool) -> Self {
        self.scalar_issue = on;
        self
    }

    /// Overrides the steady-state resident-set size (e.g. the full grid
    /// pool of an ODE step plan rather than just this kernel's grids).
    #[must_use]
    pub fn resident_bytes(mut self, bytes: f64) -> Self {
        self.resident_bytes = bytes;
        self
    }
}

/// A complete ECM prediction for one kernel configuration on one machine.
#[derive(Debug, Clone)]
pub struct EcmPrediction {
    /// Overlapping in-core cycles per unit of work.
    pub t_ol: f64,
    /// Non-overlapping in-core cycles per unit of work.
    pub t_nol: f64,
    /// Data-transfer cycles per unit per boundary (last entry = memory).
    pub t_data: Vec<f64>,
    /// Single-core cycles per unit of work after composition.
    pub t_ecm: f64,
    /// Single-core performance in MLUP/s.
    pub mlups_single: f64,
    /// Bandwidth-ceiling performance in MLUP/s (full socket).
    pub mlups_sat: f64,
    /// Smallest core count at which the ceiling is reached.
    pub sat_cores: usize,
    /// Memory bytes per lattice update.
    pub bytes_per_lup_mem: f64,
    /// The traffic model that produced the data terms.
    pub traffic: TrafficModel,
    /// The in-core model.
    pub incore: InCore,
    /// Composition policy used.
    pub policy: OverlapPolicy,
}

impl EcmPrediction {
    /// Predicted performance at `cores` active cores, MLUP/s
    /// (linear scaling capped by the bandwidth ceiling).
    #[must_use]
    pub fn mlups(&self, cores: usize) -> f64 {
        (cores as f64 * self.mlups_single).min(self.mlups_sat)
    }

    /// Predicted wall seconds to perform `updates` lattice updates on
    /// `cores` cores.
    #[must_use]
    pub fn seconds(&self, updates: u64, cores: usize) -> f64 {
        updates as f64 / (self.mlups(cores) * 1e6)
    }

    /// Single-line summary for tables.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "T_OL={:.1} T_nOL={:.1} T_data={} T_ECM={:.1}cy  {:.0} MLUP/s (1c), sat {:.0} @ {}c",
            self.t_ol,
            self.t_nol,
            self.t_data
                .iter()
                .map(|c| format!("{c:.1}"))
                .collect::<Vec<_>>()
                .join("|"),
            self.t_ecm,
            self.mlups_single,
            self.mlups_sat,
            self.sat_cores
        )
    }
}

/// The ECM model bound to a machine.
#[derive(Debug, Clone)]
pub struct EcmModel {
    machine: Machine,
    policy: OverlapPolicy,
    pessimistic_traffic: bool,
}

impl EcmModel {
    /// Creates the model with the machine's customary overlap policy.
    #[must_use]
    pub fn new(machine: &Machine) -> Self {
        EcmModel {
            machine: machine.clone(),
            policy: OverlapPolicy::for_machine(machine),
            pessimistic_traffic: false,
        }
    }

    /// Disables the layer-condition analysis: every boundary is charged
    /// as if no cache level captured vertical reuse (the ablation the
    /// paper's model section argues against).
    #[must_use]
    pub fn with_pessimistic_traffic(mut self, on: bool) -> Self {
        self.pessimistic_traffic = on;
        self
    }

    /// Overrides the overlap policy (for the ablation experiment).
    #[must_use]
    pub fn with_policy(mut self, policy: OverlapPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The machine this model predicts for.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Predicts the performance of one kernel configuration.
    #[must_use]
    pub fn predict(&self, desc: &KernelDesc) -> EcmPrediction {
        self.predict_at(desc, 1)
    }

    /// Predicts with the shared-cache capacity divided among `cores`
    /// (matters for the layer condition in L3).
    #[must_use]
    pub fn predict_at(&self, desc: &KernelDesc, cores: usize) -> EcmPrediction {
        let m = &self.machine;
        let ic = incore_with_issue(&desc.info, &m.ports, desc.fold, desc.scalar_issue);
        let tr = if self.pessimistic_traffic {
            crate::traffic::traffic_pessimistic(&desc.info, m, desc.streaming_stores)
        } else {
            traffic_resident(
                &desc.info,
                desc.tile,
                desc.domain,
                m,
                cores,
                desc.streaming_stores,
                desc.resident_bytes,
            )
        };
        let nlev = m.caches.len();
        let mut t_data = Vec::with_capacity(nlev);
        for b in 0..nlev - 1 {
            t_data.push(tr.per_boundary_lines[b] * m.cycles_per_line(b + 1));
        }
        t_data.push(tr.per_boundary_lines[nlev - 1] * m.mem_cycles_per_line());

        let cache_sum: f64 = t_data[..nlev - 1].iter().sum();
        let t_mem = t_data[nlev - 1];
        let t_ecm = match self.policy {
            OverlapPolicy::Serial => ic.t_ol.max(ic.t_nol + cache_sum + t_mem),
            OverlapPolicy::MemOverlap => ic.t_ol.max(ic.t_nol + cache_sum).max(t_mem),
        };
        let mlups_single = UPDATES_PER_UNIT / t_ecm * m.freq_ghz * 1e3;
        let mlups_sat = if tr.bytes_per_lup_mem > 0.0 {
            m.mem_bw_gbs * 1e3 / tr.bytes_per_lup_mem
        } else {
            f64::INFINITY
        };
        let sat_cores = if mlups_single > 0.0 {
            ((mlups_sat / mlups_single).ceil() as usize).clamp(1, m.cores_per_socket)
        } else {
            m.cores_per_socket
        };
        EcmPrediction {
            t_ol: ic.t_ol,
            t_nol: ic.t_nol,
            t_data,
            t_ecm,
            mlups_single,
            mlups_sat,
            sat_cores,
            bytes_per_lup_mem: tr.bytes_per_lup_mem,
            traffic: tr,
            incore: ic,
            policy: self.policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_stencil::builders::heat3d;

    fn clx_pred(tile: [usize; 3]) -> EcmPrediction {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let d = KernelDesc::new(&s, [512, 512, 512]).tile(tile);
        EcmModel::new(&m).predict(&d)
    }

    #[test]
    fn hand_computed_heat3d_composition() {
        let p = clx_pred([512, 8, 8]);
        // In-core: T_OL = 3, T_nOL = 4 (from incore tests).
        assert!((p.t_ol - 3.0).abs() < 1e-12);
        assert!((p.t_nol - 4.0).abs() < 1e-12);
        // L1 (16 KiB effective) holds neither 3 layers of 514x10 nor
        // 5 rows of 514 -> LC None: 5 input + 2 output lines cross L1<->L2.
        assert!((p.t_data[0] - 7.0 * 1.0).abs() < 1e-9); // 64 B/cy
                                                         // L2/L3 hold the layers; blocked 8x8 in y/z adds halo factor
                                                         // (10/8)^2 = 1.5625 on the compulsory input line.
        let lines = 1.5625 + 2.0;
        assert!((p.t_data[1] - lines * 4.0).abs() < 1e-9); // 16 B/cy
        let mem_cy = 64.0 * 2.5 / 14.0;
        assert!((p.t_data[2] - lines * mem_cy).abs() < 1e-6);
        let expect = 4.0 + 7.0 + lines * 4.0 + lines * mem_cy;
        assert!((p.t_ecm - expect).abs() < 1e-6);
    }

    #[test]
    fn blocked_beats_unblocked() {
        let blocked = clx_pred([512, 16, 16]);
        let unblocked = clx_pred([512, 512, 512]);
        assert!(blocked.mlups_single > unblocked.mlups_single);
    }

    #[test]
    fn scaling_saturates() {
        let p = clx_pred([512, 8, 8]);
        let m = Machine::cascade_lake();
        assert!(p.mlups(1) < p.mlups(4));
        assert!((p.mlups(m.cores_per_socket) - p.mlups_sat).abs() < 1e-9);
        assert!(p.sat_cores > 1 && p.sat_cores <= m.cores_per_socket);
    }

    #[test]
    fn mem_overlap_policy_is_faster() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let d = KernelDesc::new(&s, [512, 512, 512]).tile([512, 8, 8]);
        let serial = EcmModel::new(&m)
            .with_policy(OverlapPolicy::Serial)
            .predict(&d);
        let overlap = EcmModel::new(&m)
            .with_policy(OverlapPolicy::MemOverlap)
            .predict(&d);
        assert!(overlap.t_ecm <= serial.t_ecm);
    }

    #[test]
    fn seconds_consistent_with_mlups() {
        let p = clx_pred([512, 8, 8]);
        let s = p.seconds(1_000_000, 1);
        assert!((s - 1.0 / p.mlups_single).abs() < 1e-9);
    }

    #[test]
    fn pessimistic_ablation_predicts_slower_kernels() {
        // Without layer conditions the model charges the no-reuse traffic
        // at every boundary, so a well-blocked kernel looks much slower —
        // the gap is the value of the LC analysis.
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let d = KernelDesc::new(&s, [512, 512, 512]).tile([512, 8, 8]);
        let with_lc = EcmModel::new(&m).predict(&d);
        let without = EcmModel::new(&m).with_pessimistic_traffic(true).predict(&d);
        assert!(without.t_ecm > 1.5 * with_lc.t_ecm);
        assert!(without.bytes_per_lup_mem > with_lc.bytes_per_lup_mem);
    }

    #[test]
    fn rome_defaults_to_mem_overlap() {
        let m = Machine::rome();
        assert_eq!(OverlapPolicy::for_machine(&m), OverlapPolicy::MemOverlap);
        let s = heat3d(1);
        let d = KernelDesc::new(&s, [256, 256, 256])
            .tile([256, 16, 16])
            .fold(Fold::new(4, 1, 1));
        let p = EcmModel::new(&m).predict(&d);
        assert!(p.mlups_single > 0.0);
        assert!(p.mlups_sat.is_finite());
    }
}
