//! Roofline baseline model.

use yasksite_arch::Machine;
use yasksite_stencil::StencilInfo;

/// Classic Roofline prediction in MLUP/s for `cores` active cores:
/// `min(peak compute, BW / bytes-per-update)`, with the naive streaming
/// byte count (every distinct grid read once + write-allocate + write).
///
/// This is the baseline model the ECM approach improves upon: it knows
/// nothing about cache-level transfer costs or layer conditions, so it is
/// systematically optimistic for cache-bound configurations.
///
/// ```
/// use yasksite_arch::Machine;
/// use yasksite_ecm::roofline_mlups;
/// use yasksite_stencil::builders::heat3d;
///
/// let m = Machine::cascade_lake();
/// let p1 = roofline_mlups(&heat3d(1).info(), &m, 1);
/// let p20 = roofline_mlups(&heat3d(1).info(), &m, 20);
/// assert!(p1 > 0.0 && p20 >= p1);
/// ```
#[must_use]
pub fn roofline_mlups(info: &StencilInfo, machine: &Machine, cores: usize) -> f64 {
    let flops_per_lup = info.flops() as f64;
    let peak_flops = machine.peak_gflops_core() * 1e9 * cores as f64;
    let compute_mlups = if flops_per_lup > 0.0 {
        peak_flops / flops_per_lup / 1e6
    } else {
        f64::INFINITY
    };
    // Streaming bytes: each read grid once, output write-allocate + store.
    let bytes_per_lup = (info.read_grids as f64 + 2.0) * 8.0;
    let bw = if cores == 1 {
        machine.mem_bw_single_core_gbs
    } else {
        machine
            .mem_bw_gbs
            .min(machine.mem_bw_single_core_gbs * cores as f64)
    };
    let bw_mlups = bw * 1e9 / bytes_per_lup / 1e6;
    compute_mlups.min(bw_mlups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_stencil::builders::{box3d, heat3d};

    #[test]
    fn heat3d_is_bandwidth_bound_on_clx() {
        let m = Machine::cascade_lake();
        let info = heat3d(1).info();
        // 24 B/LUP at 14 GB/s single core = 583 MLUP/s.
        let p = roofline_mlups(&info, &m, 1);
        assert!((p - 14.0e3 / 24.0).abs() < 1.0);
    }

    #[test]
    fn dense_box_becomes_compute_bound() {
        let m = Machine::cascade_lake();
        let info = box3d(3).info(); // 343 points, 343 flops: past the ridge
        let full = roofline_mlups(&info, &m, 20);
        let compute = m.peak_gflops_core() * 20.0 * 1e3 / info.flops() as f64;
        assert!((full - compute).abs() < 1.0);
    }

    #[test]
    fn socket_bw_caps_scaling() {
        let m = Machine::cascade_lake();
        let info = heat3d(1).info();
        let p10 = roofline_mlups(&info, &m, 10);
        let p20 = roofline_mlups(&info, &m, 20);
        assert!((p10 - p20).abs() < 1e-9, "both at the socket ceiling");
    }
}
