//! Minimal aligned-table writer for experiment output.

use std::fmt::Write as _;

/// Accumulates rows of cells and renders them with aligned columns.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned columns (first column left-aligned).
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut width = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (c, cell) in row.iter().enumerate() {
                if c == 0 {
                    let _ = write!(out, "{cell:<w$}", w = width[0]);
                } else {
                    let _ = write!(out, "  {cell:>w$}", w = width[c]);
                }
            }
            let _ = writeln!(out);
        };
        render_row(&mut out, &self.header);
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(width.iter().sum::<usize>() + 2 * (ncols - 1))
        );
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every line equally wide (header, rule, rows).
        let lens: Vec<usize> = s.lines().map(str::len).collect();
        assert_eq!(lens[0], lens[2]);
    }
}
