//! One function per reproduced table/figure (experiment index E1–E9 in
//! DESIGN.md).

use std::fmt::Write as _;
use std::sync::Arc;

use offsite::{EvalOptions, MethodSpec, Offsite};
use yasksite::{PredictionCache, SearchSpace, Solution, TuneRequest, TuneStrategy};
use yasksite_arch::{machine_table, Machine};
use yasksite_ecm::roofline_mlups;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_ode::ivps::{Heat2d, Heat3d, InverterChain};
use yasksite_ode::Ivp;
use yasksite_stencil::{builders, paper_suite, stencil_table};

use crate::fmt::Table;

/// Problem-size preset: `Paper` exercises the memory hierarchy like the
/// paper's runs (minutes of simulation); `Small` keeps everything
/// test-sized (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full experiment sizes.
    Paper,
    /// Miniature sizes for CI / integration tests.
    Small,
}

impl Scale {
    /// The manifest label for this preset.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Small => "small",
        }
    }

    /// Parses `--small` from argv.
    #[must_use]
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--small") {
            Scale::Small
        } else {
            Scale::Paper
        }
    }

    /// Parses `--jobs N` from argv; `None` lets the tuner pick
    /// (`YASKSITE_JOBS` or all cores). Results are jobs-invariant, only
    /// wall time changes.
    #[must_use]
    pub fn jobs_from_args() -> Option<usize> {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .map(|j| j.max(1))
    }

    fn heat3d_domain(self, machine: &Machine) -> [usize; 3] {
        match self {
            // Big enough that the *aggregate* LLC (all CCXs on Rome)
            // cannot hold the working set even at full core count.
            Scale::Paper => {
                if machine.cores_per_socket > 32 {
                    [288, 288, 288]
                } else {
                    [168, 168, 168]
                }
            }
            Scale::Small => [48, 24, 24],
        }
    }

    fn sweep_domain(self) -> [usize; 3] {
        match self {
            Scale::Paper => [144, 144, 144],
            Scale::Small => [48, 24, 24],
        }
    }

    fn core_counts(self, machine: &Machine) -> Vec<usize> {
        let max = machine.cores_per_socket;
        let all = [1usize, 2, 4, 8, 12, 16, 20, 32, 48, 64];
        match self {
            Scale::Paper => all.iter().copied().filter(|&c| c <= max).collect(),
            Scale::Small => vec![1, 2.min(max)],
        }
    }

    fn ode_sizes(self) -> (usize, usize, usize) {
        match self {
            Scale::Paper => (1024, 96, 1 << 20),
            Scale::Small => (64, 16, 4096),
        }
    }

    fn offsite_cores(self) -> usize {
        match self {
            Scale::Paper => 4,
            Scale::Small => 1,
        }
    }
}

fn fold_for(machine: &Machine) -> Fold {
    Fold::new(machine.lanes(), 1, 1)
}

/// E1 — the stencil test-set table.
#[must_use]
pub fn e1_stencil_table() -> String {
    format!("E1: stencil test set\n\n{}", stencil_table(&paper_suite()))
}

/// E2 — the machine-model table.
#[must_use]
pub fn e2_machine_table() -> String {
    format!(
        "E2: machine models\n\n{}",
        machine_table(&[Machine::cascade_lake(), Machine::rome(), Machine::host()])
    )
}

/// E3 — single-core ECM breakdown of heat-3d across cache regimes.
#[must_use]
pub fn e3_ecm_breakdown(machine: &Machine) -> String {
    let s = builders::heat3d(1);
    let fold = fold_for(machine);
    let mut t = Table::new(&[
        "N^3", "regime", "T_OL", "T_nOL", "T_L1L2", "T_L2L3", "T_L3Mem", "T_ECM", "MLUP/s",
    ]);
    for n in [16usize, 32, 48, 64, 96, 128, 192, 256, 384, 512] {
        let domain = [n, n, n];
        let params = TuningParams::new(domain, fold);
        let sol = Solution::new(s.clone(), domain, machine.clone());
        let p = sol.predict(&params, 1);
        let resident = 2.0 * (n * n * n * 8) as f64;
        let regime = machine
            .caches
            .iter()
            .find(|c| resident <= c.size_bytes as f64 * 0.5)
            .map_or("Mem", |c| c.name.as_str());
        t.row(vec![
            n.to_string(),
            regime.to_string(),
            format!("{:.1}", p.ecm.t_ol),
            format!("{:.1}", p.ecm.t_nol),
            format!("{:.1}", p.ecm.t_data[0]),
            format!("{:.1}", p.ecm.t_data[1]),
            format!("{:.1}", p.ecm.t_data[2]),
            format!("{:.1}", p.ecm.t_ecm),
            format!("{:.0}", p.mlups),
        ]);
    }
    format!(
        "E3: ECM single-core breakdown, {} on {} (cycles per 8 updates, unblocked)\n\n{}",
        s.name(),
        machine.tag(),
        t.render()
    )
}

/// E4 — predicted vs simulator-measured scaling over cores, with the
/// Roofline baseline.
#[must_use]
pub fn e4_scaling(machine: &Machine, scale: Scale) -> String {
    let s = builders::heat3d(1);
    let domain = scale.heat3d_domain(machine);
    let fold = fold_for(machine);
    let sol = Solution::new(s.clone(), domain, machine.clone());
    let space = SearchSpace::spatial_only(&s, domain, machine).with_folds(vec![fold]);
    let info = s.info();

    let mut t = Table::new(&[
        "cores",
        "block",
        "ECM",
        "measured",
        "roofline",
        "err%",
        "saturated",
    ]);
    let mut max_err: f64 = 0.0;
    let mut tuned = sol
        .tune_space(&space, TuneStrategy::Analytic, 1)
        .expect("tuning succeeds")
        .best;
    for cores in scale.core_counts(machine) {
        // Re-tune analytically at each core count, as the paper does.
        let params = sol
            .tune_space(&space, TuneStrategy::Analytic, cores)
            .expect("tuning succeeds")
            .best;
        tuned = params;
        let params = tuned.clone();
        let pred = sol.predict(&params, cores);
        let meas = sol.measure(&params).expect("simulated run succeeds");
        let rl = roofline_mlups(&info, machine, cores);
        let err = (pred.mlups - meas.mlups).abs() / meas.mlups * 100.0;
        max_err = max_err.max(err);
        t.row(vec![
            cores.to_string(),
            format!(
                "{}x{}x{}",
                params.block[0], params.block[1], params.block[2]
            ),
            format!("{:.0}", pred.mlups),
            format!("{:.0}", meas.mlups),
            format!("{:.0}", rl),
            format!("{err:.0}"),
            if pred.ecm.sat_cores <= cores {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    let _ = tuned;
    format!(
        "E4: scaling of {} ({}x{}x{}, per-count analytic blocks) on {} — MLUP/s\n\n{}\nmax model error: {:.0}%\n",
        s.name(),
        domain[0],
        domain[1],
        domain[2],
        machine.tag(),
        t.render(),
        max_err
    )
}

/// E5 — spatial block sweep: measured performance over the block space,
/// with the analytically selected block marked. The analytic ranking
/// runs twice through the same prediction cache (cold, then warm) so the
/// output also quantifies what memoization saves on repeated sweeps.
#[must_use]
pub fn e5_block_sweep(machine: &Machine, scale: Scale, jobs: Option<usize>) -> String {
    let s = builders::heat3d(1);
    let domain = scale.sweep_domain();
    let fold = fold_for(machine);
    let sol = Solution::new(s.clone(), domain, machine.clone());
    let space = SearchSpace::spatial_only(&s, domain, machine).with_folds(vec![fold]);
    let cache = Arc::new(PredictionCache::new());
    let mut req = TuneRequest::new(TuneStrategy::Analytic).cache(Arc::clone(&cache));
    if let Some(j) = jobs {
        req = req.jobs(j);
    }
    let analytic = sol
        .tune_space_with(&space, &req)
        .expect("analytic tuning succeeds");
    let warm = sol
        .tune_space_with(&space, &req)
        .expect("analytic tuning succeeds");
    assert_eq!(
        analytic.best, warm.best,
        "cached re-tune must pick the same block"
    );

    let mut rows: Vec<(TuningParams, f64, f64)> = Vec::new();
    for p in space.candidates(1) {
        let pred = sol.predict(&p, 1).mlups;
        let meas = sol.measure(&p).expect("simulated run").mlups;
        rows.push((p, pred, meas));
    }
    let best = rows.iter().map(|r| r.2).fold(0.0f64, f64::max);
    let mut t = Table::new(&["block", "ECM", "measured", "%of-best", "pick"]);
    for (p, pred, meas) in &rows {
        let pick = if *p == analytic.best { "<= model" } else { "" };
        t.row(vec![
            format!("{}x{}x{}", p.block[0], p.block[1], p.block[2]),
            format!("{pred:.0}"),
            format!("{meas:.0}"),
            format!("{:.0}", meas / best * 100.0),
            pick.to_string(),
        ]);
    }
    let chosen = rows
        .iter()
        .find(|(p, _, _)| *p == analytic.best)
        .map_or(0.0, |r| r.2);
    format!(
        "E5: block sweep, {} {}x{}x{} on {} (1 core, MLUP/s, {} ranking workers)\n\n{}\nanalytic pick reaches {:.0}% of empirical best\ncold tune: {}\nwarm tune: {}  ({:.1}x wall speedup from the cache)\n",
        s.name(),
        domain[0],
        domain[1],
        domain[2],
        machine.tag(),
        req.effective_jobs(),
        t.render(),
        chosen / best * 100.0,
        analytic.cost.summary(),
        warm.cost.summary(),
        analytic.cost.wall_seconds / warm.cost.wall_seconds.max(1e-9)
    )
}

/// E6 — wavefront temporal blocking: depth sweep, measured vs predicted.
#[must_use]
pub fn e6_wavefront(machine: &Machine, scale: Scale) -> String {
    let s = builders::heat3d(1);
    let domain = scale.heat3d_domain(machine);
    let fold = fold_for(machine);
    let sol = Solution::new(s.clone(), domain, machine.clone());
    let block = [domain[0], 8, 8];
    let mut t = Table::new(&["depth", "ECM", "measured", "memB/LUP", "speedup"]);
    let mut base = 0.0;
    for depth in [1usize, 2, 4, 8] {
        let p = TuningParams::new(block, fold).wavefront(depth);
        let pred = sol.predict(&p, 1);
        let meas = sol.measure(&p).expect("simulated run");
        let bytes_per_lup = meas.stats.as_ref().map_or(0.0, |st| {
            st.mem_bytes(machine.line_bytes()) / (2 * depth) as f64 / sol.updates_per_sweep() as f64
        });
        if depth == 1 {
            base = meas.mlups;
        }
        t.row(vec![
            depth.to_string(),
            format!("{:.0}", pred.mlups),
            format!("{:.0}", meas.mlups),
            format!("{bytes_per_lup:.1}"),
            format!("{:.2}x", meas.mlups / base),
        ]);
    }
    format!(
        "E6: wavefront depth sweep, {} {}x{}x{} on {} (1 core)\n\n{}",
        s.name(),
        domain[0],
        domain[1],
        domain[2],
        machine.tag(),
        t.render()
    )
}

/// E10 — model validation across the whole stencil suite: single-core
/// predicted vs simulator-measured performance for every test-set
/// stencil on one machine.
#[must_use]
pub fn e10_suite_validation(machine: &Machine, scale: Scale) -> String {
    let fold = fold_for(machine);
    let mut t = Table::new(&["stencil", "domain", "ECM", "measured", "err%"]);
    let mut errs = Vec::new();
    for s in yasksite_stencil::paper_suite() {
        let info = s.info();
        let d3 = info.radius[2] > 0 || s.dims() == 3;
        let domain = match (scale, d3) {
            (Scale::Paper, true) => [96, 96, 96],
            (Scale::Paper, false) => [768, 768, 1],
            (Scale::Small, true) => [32, 16, 16],
            (Scale::Small, false) => [64, 64, 1],
        };
        let block = [domain[0], 16.min(domain[1]), 16.min(domain[2])];
        let sol = Solution::new(s.clone(), domain, machine.clone());
        let params = TuningParams::new(block, fold);
        let pred = sol.predict(&params, 1);
        let meas = sol.measure(&params).expect("simulated run");
        let err = (pred.mlups - meas.mlups).abs() / meas.mlups * 100.0;
        errs.push(err);
        t.row(vec![
            s.name().to_string(),
            format!("{}x{}x{}", domain[0], domain[1], domain[2]),
            format!("{:.0}", pred.mlups),
            format!("{:.0}", meas.mlups),
            format!("{err:.0}"),
        ]);
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    format!(
        "E10: suite-wide model validation on {} (1 core, MLUP/s)\n\n{}\nmean error {:.0}%\n",
        machine.tag(),
        t.render(),
        mean
    )
}

/// E11 — work–precision ranking (extension): predicted total time to
/// integrate Heat2D over a unit interval at several tolerances; shows the
/// method-order crossover Offsite exploits when selecting methods.
#[must_use]
pub fn e11_work_precision(machine: &Machine, scale: Scale) -> String {
    let (n2, _, _) = scale.ode_sizes();
    let offsite = Offsite::new(machine.clone(), 1);
    let ivp = Heat2d::new(n2.min(256));
    let methods = MethodSpec::paper_set();
    let mut t = Table::new(&["tol", "winner", "order", "h", "predicted[s]"]);
    for tol in [1e-1, 1e-3, 1e-5, 1e-8, 1e-12] {
        let ranked = offsite
            .rank_by_tolerance(&ivp, &methods, tol, 1.0)
            .expect("ranking succeeds");
        let w = &ranked[0];
        t.row(vec![
            format!("{tol:.0e}"),
            format!("{}/{}", w.method, w.variant),
            w.order.to_string(),
            format!("{:.2e}", w.step_size),
            format!("{:.2e}", w.predicted_total_s),
        ]);
    }
    format!(
        "E11 (extension): work-precision method selection, {} on {} (1 core)\n\n{}",
        ivp.name(),
        machine.tag(),
        t.render()
    )
}

fn eval_ivp(
    offsite: &Offsite,
    ivp: &dyn Ivp,
    methods: &[MethodSpec],
    h: f64,
    opts: &EvalOptions,
    t: &mut Table,
) -> offsite::EvalReport {
    let r = offsite
        .evaluate_with(ivp, methods, h, opts)
        .expect("evaluation succeeds");
    for c in &r.candidates {
        t.row(vec![
            ivp.name().to_string(),
            format!("{}/{}", c.method, c.variant),
            format!("{:.3e}", c.predicted_s),
            format!("{:.3e}", c.measured_s),
            format!("{:.0}", c.rel_err * 100.0),
        ]);
    }
    r
}

/// E7 — Offsite prediction accuracy: predicted vs measured step time for
/// every method × variant on each IVP.
#[must_use]
pub fn e7_prediction_accuracy(machine: &Machine, scale: Scale, jobs: Option<usize>) -> String {
    let offsite = Offsite::new(machine.clone(), 1);
    let (n2, n3, ni) = scale.ode_sizes();
    let methods = MethodSpec::paper_set();
    let mut opts = EvalOptions::default().cache(Arc::new(PredictionCache::new()));
    if let Some(j) = jobs {
        opts = opts.jobs(j);
    }
    let mut t = Table::new(&[
        "ivp",
        "method/variant",
        "predicted[s]",
        "measured[s]",
        "err%",
    ]);
    let mut lines = String::new();
    let heat2d = Heat2d::new(n2);
    let heat3d = Heat3d::new(n3);
    let inv = InverterChain::new(ni, 5.0, 1.0, 0.5);
    for (ivp, h) in [
        (&heat2d as &dyn Ivp, 1e-7),
        (&heat3d as &dyn Ivp, 1e-6),
        (&inv as &dyn Ivp, 1e-4),
    ] {
        let r = eval_ivp(&offsite, ivp, &methods, h, &opts, &mut t);
        let _ = writeln!(
            lines,
            "{:<14} mean err {:>3.0}%  max err {:>3.0}%  predicted pick = measured rank {}{}",
            ivp.name(),
            r.mean_rel_err * 100.0,
            r.max_rel_err * 100.0,
            r.rank_of_pick + 1,
            if r.picked_best { " (best)" } else { "" }
        );
        let _ = writeln!(lines, "{:<14} selection: {}", "", r.select_cost.summary());
    }
    format!(
        "E7: Offsite+YaskSite prediction accuracy on {} (1 core, shared prediction cache)\n\n{}\n{}",
        machine.tag(),
        t.render(),
        lines
    )
}

/// E8 — end-to-end speedups of the Offsite-selected variant over the
/// naive baseline implementation.
#[must_use]
pub fn e8_speedups(machine: &Machine, scale: Scale) -> String {
    let cores = scale.offsite_cores().min(machine.cores_per_socket);
    let offsite = Offsite::new(machine.clone(), cores);
    let (n2, n3, ni) = scale.ode_sizes();
    let methods = MethodSpec::paper_set();
    let mut t = Table::new(&["ivp", "method", "speedup"]);
    let heat2d = Heat2d::new(n2);
    let heat3d = Heat3d::new(n3);
    let inv = InverterChain::new(ni, 5.0, 1.0, 0.5);
    for (ivp, h) in [
        (&heat2d as &dyn Ivp, 1e-7),
        (&heat3d as &dyn Ivp, 1e-6),
        (&inv as &dyn Ivp, 1e-4),
    ] {
        let r = offsite
            .evaluate(ivp, &methods, h)
            .expect("evaluation succeeds");
        for (m, sp) in &r.speedups {
            t.row(vec![ivp.name().to_string(), m.clone(), format!("{sp:.2}x")]);
        }
    }
    format!(
        "E8: speedup of the Offsite-selected tuned variant over the naive\nbaseline (variant A, unblocked) on {} ({} cores)\n\n{}",
        machine.tag(),
        cores,
        t.render()
    )
}

/// E9 — autotuning cost: analytic vs hybrid vs exhaustive-empirical
/// selection for one kernel, plus the Offsite selection/validation split.
#[must_use]
pub fn e9_tuning_cost(machine: &Machine, scale: Scale, jobs: Option<usize>) -> String {
    let s = builders::heat3d(1);
    let domain = scale.sweep_domain();
    let sol = Solution::new(s.clone(), domain, machine.clone());
    let space = SearchSpace::spatial_only(&s, domain, machine).with_folds(vec![fold_for(machine)]);
    let cache = Arc::new(PredictionCache::new());
    let mut t = Table::new(&[
        "strategy",
        "model evals",
        "cached",
        "runs",
        "target[s]",
        "wall[s]",
        "quality%",
    ]);
    let base_req = |strategy| {
        let mut req = TuneRequest::new(strategy).cache(Arc::clone(&cache));
        if let Some(j) = jobs {
            req = req.jobs(j);
        }
        req
    };
    let empirical = sol
        .tune_space_with(&space, &base_req(TuneStrategy::Empirical))
        .expect("empirical tuning");
    let best = empirical.best_score;
    for (name, strat) in [
        ("analytic", TuneStrategy::Analytic),
        ("hybrid(3)", TuneStrategy::Hybrid { shortlist: 3 }),
        ("empirical", TuneStrategy::Empirical),
    ] {
        let r = sol
            .tune_space_with(&space, &base_req(strat))
            .expect("tuning");
        let achieved = sol.measure(&r.best).expect("measure").mlups;
        t.row(vec![
            name.to_string(),
            r.cost.model_evals.to_string(),
            r.cost.cache_hits.to_string(),
            r.cost.engine_runs.to_string(),
            format!("{:.3}", r.cost.target_seconds),
            format!("{:.3}", r.cost.wall_seconds),
            format!("{:.0}", achieved / best * 100.0),
        ]);
    }

    // Offsite side: what the selection costs vs exhaustive validation.
    let offsite = Offsite::new(machine.clone(), 1);
    let (n2, _, _) = scale.ode_sizes();
    let ivp = Heat2d::new(n2);
    let mut opts = EvalOptions::default();
    if let Some(j) = jobs {
        opts = opts.jobs(j);
    }
    let r = offsite
        .evaluate_with(&ivp, &MethodSpec::paper_set(), 1e-7, &opts)
        .expect("offsite evaluation");
    let mut extra = String::new();
    let _ = writeln!(
        extra,
        "\nOffsite on {} ({} candidates):\n  selection  (model only): {}\n  validation (exhaustive): {}",
        ivp.name(),
        r.candidates.len(),
        r.select_cost.summary(),
        r.validate_cost.summary()
    );
    format!(
        "E9: autotuning cost, {} {}x{}x{} on {}\n(quality% = measured MLUP/s of the strategy's pick / empirical best)\n\n{}{}",
        s.name(),
        domain[0],
        domain[1],
        domain[2],
        machine.tag(),
        t.render(),
        extra
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_e2_e3_render() {
        assert!(e1_stencil_table().contains("heat-3d-r1"));
        assert!(e2_machine_table().contains("CLX"));
        let e3 = e3_ecm_breakdown(&Machine::cascade_lake());
        assert!(e3.contains("T_ECM"));
        assert!(e3.lines().count() > 10);
    }

    #[test]
    fn e4_small_runs() {
        let out = e4_scaling(&Machine::cascade_lake(), Scale::Small);
        assert!(out.contains("cores"));
        assert!(out.contains("max model error"));
    }

    #[test]
    fn e6_small_runs() {
        let out = e6_wavefront(&Machine::cascade_lake(), Scale::Small);
        assert!(out.contains("depth"));
        assert!(out.contains("1.00x"));
    }

    #[test]
    fn e10_small_runs() {
        let out = e10_suite_validation(&Machine::cascade_lake(), Scale::Small);
        assert!(out.contains("heat-3d-r1"));
        assert!(out.contains("mean error"));
    }

    #[test]
    fn e11_small_runs() {
        let out = e11_work_precision(&Machine::cascade_lake(), Scale::Small);
        assert!(out.contains("winner"));
        assert!(out.lines().count() > 6);
    }

    #[test]
    fn e9_small_runs() {
        let out = e9_tuning_cost(&Machine::cascade_lake(), Scale::Small, Some(2));
        assert!(out.contains("analytic"));
        assert!(out.contains("selection"));
        assert!(out.contains("cached"));
    }

    #[test]
    fn e5_warm_pass_hits_the_cache() {
        let out = e5_block_sweep(&Machine::cascade_lake(), Scale::Small, Some(2));
        assert!(out.contains("analytic pick"));
        let cold = out.lines().find(|l| l.starts_with("cold tune:")).unwrap();
        let warm = out.lines().find(|l| l.starts_with("warm tune:")).unwrap();
        assert!(
            cold.contains("(0 cached)"),
            "cold pass starts from an empty cache: {cold}"
        );
        assert!(
            !warm.contains("(0 cached)"),
            "warm pass must hit the cache: {warm}"
        );
    }
}
