//! E12 — native kernel engine throughput.
//!
//! Measures the rebuilt execution layer against faithful replicas of the
//! seed implementation: the per-row-allocating linear sweep and the
//! per-point naive wavefront. The replicas are kept here (not in the
//! engine) so the engine crate only ever carries the fast code; the bench
//! preserves the old cost profile purely as a baseline.
//!
//! Emits `BENCH_kernels.json` (schema `yasksite.bench_kernels.v1`) with
//! one entry per measured kernel and the two headline ratios the roadmap
//! tracks: allocation-free fast path vs seed (single-threaded) and
//! blocked+threaded wavefront vs seed naive wavefront at depth 2.

use std::time::Instant;

use yasksite::telemetry::json::{self, write_escaped, write_f64, Json};
use yasksite_engine::{CompiledStencil, ExecPool, SweepRequest, TierPolicy, TuningParams};
use yasksite_grid::{Fold, Grid3};
use yasksite_stencil::{builders, Stencil};

use crate::Table;

/// Identifier stamped into the JSON so downstream checks can reject files
/// produced by a different (incompatible) emitter.
pub const KERNELS_SCHEMA: &str = "yasksite.bench_kernels.v1";

/// Problem size for the throughput experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelScale {
    /// CI smoke size — finishes in well under a second.
    Tiny,
    /// Cache-resident-ish middle size for quick local runs.
    Small,
    /// The paper's memory-bound working size (256³).
    Paper,
}

impl KernelScale {
    /// Domain extents for this scale.
    #[must_use]
    pub fn domain(self) -> [usize; 3] {
        match self {
            KernelScale::Tiny => [64, 32, 32],
            KernelScale::Small => [128, 96, 96],
            KernelScale::Paper => [256, 256, 256],
        }
    }

    /// Human/JSON label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KernelScale::Tiny => "tiny",
            KernelScale::Small => "small",
            KernelScale::Paper => "paper",
        }
    }

    /// Timed repetitions per kernel (each preceded by one warm-up).
    /// Best-of-3 everywhere: the paper scale used to settle for 2, but
    /// the tier-ratio entries compare two same-scale measurements, so
    /// one extra rep buys a visibly steadier ratio on noisy hosts.
    #[must_use]
    pub fn reps(self) -> usize {
        3
    }

    /// Parses a `--scale` operand.
    #[must_use]
    pub fn parse(name: &str) -> Option<KernelScale> {
        match name {
            "tiny" => Some(KernelScale::Tiny),
            "small" => Some(KernelScale::Small),
            "paper" => Some(KernelScale::Paper),
            _ => None,
        }
    }

    /// Reads `--scale {tiny|small|paper}` from the process arguments
    /// (default: paper, the acceptance-criterion size).
    #[must_use]
    pub fn from_args() -> KernelScale {
        let args: Vec<String> = std::env::args().collect();
        match args.iter().position(|a| a == "--scale") {
            Some(i) => {
                let name = args.get(i + 1).map(String::as_str).unwrap_or("");
                KernelScale::parse(name).unwrap_or_else(|| {
                    eprintln!("unknown --scale '{name}', expected tiny|small|paper");
                    std::process::exit(2);
                })
            }
            None => KernelScale::Paper,
        }
    }
}

/// One measured kernel configuration.
#[derive(Debug, Clone)]
pub struct KernelSample {
    /// Kernel / path name (e.g. `heat3d_fastpath_new`).
    pub name: String,
    /// Million lattice updates per second (best of the timed reps).
    pub mlups: f64,
    /// Seconds per domain sweep (wavefront entries: per fused step).
    pub seconds_per_sweep: f64,
    /// Threads requested for the run.
    pub threads: usize,
    /// Wavefront depth (1 = plain spatial sweep).
    pub depth: usize,
}

/// The full experiment record: samples plus derived headline ratios.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Scale label (`tiny`/`small`/`paper`).
    pub scale: &'static str,
    /// Domain extents measured.
    pub domain: [usize; 3],
    /// Host parallelism available to the multi-threaded entries.
    pub threads_available: usize,
    /// All measured kernels.
    pub samples: Vec<KernelSample>,
    /// Named speedup ratios (new / seed).
    pub ratios: Vec<(&'static str, f64)>,
}

impl KernelReport {
    /// Renders the report as an aligned text table plus the ratio lines.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut t = Table::new(&["kernel", "threads", "depth", "MLUP/s", "s/sweep"]);
        for s in &self.samples {
            t.row(vec![
                s.name.clone(),
                s.threads.to_string(),
                s.depth.to_string(),
                format!("{:.1}", s.mlups),
                format!("{:.6}", s.seconds_per_sweep),
            ]);
        }
        let mut out = t.render();
        out.push('\n');
        for (name, r) in &self.ratios {
            out.push_str(&format!("{name}: {r:.2}x\n"));
        }
        out
    }

    /// Serialises the report to the `yasksite.bench_kernels.v1` JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": ");
        write_escaped(&mut s, KERNELS_SCHEMA);
        s.push_str(",\n  \"scale\": ");
        write_escaped(&mut s, self.scale);
        s.push_str(&format!(
            ",\n  \"domain\": [{}, {}, {}]",
            self.domain[0], self.domain[1], self.domain[2]
        ));
        s.push_str(&format!(
            ",\n  \"threads_available\": {}",
            self.threads_available
        ));
        s.push_str(",\n  \"kernels\": [");
        for (i, k) in self.samples.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            write_kernel(&mut s, k);
        }
        s.push_str("\n  ],\n  \"ratios\": ");
        self.write_ratios(&mut s, "  ");
        s.push_str("\n}\n");
        s
    }

    fn write_ratios(&self, s: &mut String, indent: &str) {
        s.push('{');
        for (i, (name, r)) in self.ratios.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(indent);
            s.push_str("  ");
            write_escaped(s, name);
            s.push_str(": ");
            write_f64(s, *r);
        }
        s.push('\n');
        s.push_str(indent);
        s.push('}');
    }

    /// Serialises the report with the accumulated run `history`: the new
    /// run stays the top-level "latest" record (`kernels` / `ratios`)
    /// *and* is appended as the newest `history` entry, keyed by the
    /// run-manifest `rev` and `seed`. Prior entries are carried over from
    /// `prev` — the existing output file's text — so repeated runs no
    /// longer clobber each other. A `prev` from the pre-history emitter
    /// (valid, but without a `history` array) is preserved as a
    /// `rev: "unknown"` entry; an unparsable or schema-mismatched `prev`
    /// starts the history fresh.
    #[must_use]
    pub fn to_json_with_history(
        &self,
        prev: Option<&str>,
        rev: &str,
        seed: Option<&str>,
    ) -> String {
        let mut entries: Vec<String> = Vec::new();
        if let Some(doc) = prev
            .and_then(|text| json::parse(text).ok())
            .filter(|d| d.get("schema").and_then(Json::as_str) == Some(KERNELS_SCHEMA))
        {
            match doc.get("history") {
                Some(Json::Arr(prior)) => {
                    for e in prior {
                        let mut s = String::new();
                        write_json(&mut s, e);
                        entries.push(s);
                    }
                }
                // Pre-history file: keep its latest run as the first entry.
                _ => {
                    let mut s = String::new();
                    s.push_str("{\"rev\": \"unknown\", \"seed\": null, \"scale\": ");
                    write_json(&mut s, doc.get("scale").unwrap_or(&Json::Null));
                    s.push_str(", \"kernels\": ");
                    write_json(&mut s, doc.get("kernels").unwrap_or(&Json::Arr(vec![])));
                    s.push_str(", \"ratios\": ");
                    write_json(&mut s, doc.get("ratios").unwrap_or(&Json::Obj(vec![])));
                    s.push('}');
                    entries.push(s);
                }
            }
        }
        let mut this = String::new();
        this.push_str("{\"rev\": ");
        write_escaped(&mut this, rev);
        this.push_str(", \"seed\": ");
        match seed {
            Some(v) => write_escaped(&mut this, v),
            None => this.push_str("null"),
        }
        this.push_str(", \"scale\": ");
        write_escaped(&mut this, self.scale);
        this.push_str(", \"kernels\": [");
        for (i, k) in self.samples.iter().enumerate() {
            if i > 0 {
                this.push_str(", ");
            }
            write_kernel(&mut this, k);
        }
        this.push_str("], \"ratios\": {");
        for (i, (name, r)) in self.ratios.iter().enumerate() {
            if i > 0 {
                this.push_str(", ");
            }
            write_escaped(&mut this, name);
            this.push_str(": ");
            write_f64(&mut this, *r);
        }
        this.push_str("}}");
        entries.push(this);

        let mut s = self.to_json();
        let cut = s.rfind("\n}").expect("to_json ends with a closing brace");
        s.truncate(cut);
        s.push_str(",\n  \"history\": [");
        for (i, e) in entries.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    ");
            s.push_str(e);
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

fn write_kernel(s: &mut String, k: &KernelSample) {
    s.push_str("{\"name\": ");
    write_escaped(s, &k.name);
    s.push_str(", \"mlups\": ");
    write_f64(s, k.mlups);
    s.push_str(", \"seconds_per_sweep\": ");
    write_f64(s, k.seconds_per_sweep);
    s.push_str(&format!(
        ", \"threads\": {}, \"depth\": {}}}",
        k.threads, k.depth
    ));
}

/// Serialises a parsed [`Json`] value back to compact JSON (used to carry
/// prior history entries through a merge verbatim).
fn write_json(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => write_f64(out, *x),
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_json(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_escaped(out, key);
                out.push_str(": ");
                write_json(out, val);
            }
            out.push('}');
        }
    }
}

/// Validates a `BENCH_kernels.json` document: parses it and checks the
/// schema id, domain shape, kernel entries and headline ratios.
///
/// # Errors
/// Returns a description of the first problem found.
pub fn validate_kernels_json(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?;
    if schema != KERNELS_SCHEMA {
        return Err(format!("schema is '{schema}', expected '{KERNELS_SCHEMA}'"));
    }
    doc.get("scale")
        .and_then(Json::as_str)
        .ok_or("missing 'scale'")?;
    match doc.get("domain") {
        Some(Json::Arr(dims)) if dims.len() == 3 => {
            for d in dims {
                d.as_u64().ok_or("non-integer domain extent")?;
            }
        }
        _ => return Err("'domain' must be an array of 3 extents".into()),
    }
    doc.get("threads_available")
        .and_then(Json::as_u64)
        .ok_or("missing 'threads_available'")?;
    let kernels = match doc.get("kernels") {
        Some(Json::Arr(ks)) if !ks.is_empty() => ks,
        _ => return Err("'kernels' must be a non-empty array".into()),
    };
    for k in kernels {
        let name = k
            .get("name")
            .and_then(Json::as_str)
            .ok_or("kernel entry missing 'name'")?;
        for field in ["mlups", "seconds_per_sweep"] {
            let v = k
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("kernel '{name}' missing '{field}'"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("kernel '{name}' has non-positive '{field}'"));
            }
        }
        for field in ["threads", "depth"] {
            let v = k
                .get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("kernel '{name}' missing '{field}'"))?;
            if v == 0 {
                return Err(format!("kernel '{name}' has zero '{field}'"));
            }
        }
    }
    let ratios = doc.get("ratios").ok_or("missing 'ratios'")?;
    for name in ["fastpath_new_vs_seed_1t", "wavefront_new_vs_seed_d2"] {
        let r = ratios
            .get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing ratio '{name}'"))?;
        if !r.is_finite() || r <= 0.0 {
            return Err(format!("ratio '{name}' is non-positive"));
        }
    }
    // `history` is optional (pre-history files lack it) but when present
    // every entry must carry its run identity and results.
    match doc.get("history") {
        None => {}
        Some(Json::Arr(entries)) => {
            for (i, e) in entries.iter().enumerate() {
                e.get("rev")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("history[{i}] missing 'rev'"))?;
                e.get("scale")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("history[{i}] missing 'scale'"))?;
                if !matches!(e.get("ratios"), Some(Json::Obj(_))) {
                    return Err(format!("history[{i}] missing 'ratios' object"));
                }
            }
        }
        Some(_) => return Err("'history' must be an array".into()),
    }
    Ok(())
}

/// Below this fraction of the baseline's headline ratio the gate warns.
pub const GATE_WARN_FRACTION: f64 = 0.6;
/// Below this fraction of the baseline's headline ratio the gate fails.
/// Deliberately generous: the ratios are dimensionless (new kernel vs
/// seed replica on the *same* host and scale), so they are largely
/// machine-independent — but CI runners are noisy and the smoke scale is
/// tiny, so only a collapse to under a third of the committed speedup is
/// treated as a genuine regression.
pub const GATE_FAIL_FRACTION: f64 = 0.3;

/// Result of gating a fresh kernel report against a committed baseline.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// One human-readable verdict line per compared ratio.
    pub lines: Vec<String>,
    /// Ratios between [`GATE_FAIL_FRACTION`] and [`GATE_WARN_FRACTION`].
    pub warnings: usize,
    /// Ratios below [`GATE_FAIL_FRACTION`] (or missing from the new run).
    pub failures: usize,
}

/// Compares the headline speedup ratios of `new_text` against
/// `baseline_text` (both `yasksite.bench_kernels.v1` documents). Only the
/// dimensionless ratios are compared — never absolute MLUP/s, which vary
/// with the host — with the generous [`GATE_WARN_FRACTION`] /
/// [`GATE_FAIL_FRACTION`] thresholds.
///
/// # Errors
/// Returns a description when either document fails validation.
pub fn gate_kernels_json(new_text: &str, baseline_text: &str) -> Result<GateOutcome, String> {
    validate_kernels_json(new_text).map_err(|e| format!("new report: {e}"))?;
    validate_kernels_json(baseline_text).map_err(|e| format!("baseline: {e}"))?;
    let new_doc = json::parse(new_text)?;
    let base_doc = json::parse(baseline_text)?;
    let base_ratios = match base_doc.get("ratios") {
        Some(Json::Obj(fields)) => fields,
        _ => return Err("baseline: 'ratios' must be an object".into()),
    };
    let mut out = GateOutcome {
        lines: Vec::new(),
        warnings: 0,
        failures: 0,
    };
    for (name, base_val) in base_ratios {
        let Some(base) = base_val.as_f64().filter(|b| b.is_finite() && *b > 0.0) else {
            continue;
        };
        let Some(new) = new_doc
            .get("ratios")
            .and_then(|r| r.get(name))
            .and_then(Json::as_f64)
        else {
            out.failures += 1;
            out.lines
                .push(format!("FAIL {name}: missing from the new report"));
            continue;
        };
        let rel = new / base;
        if rel < GATE_FAIL_FRACTION {
            out.failures += 1;
            out.lines.push(format!(
                "FAIL {name}: {new:.2}x is {rel:.2} of the baseline {base:.2}x (< {GATE_FAIL_FRACTION})"
            ));
        } else if rel < GATE_WARN_FRACTION {
            out.warnings += 1;
            out.lines.push(format!(
                "WARN {name}: {new:.2}x is {rel:.2} of the baseline {base:.2}x (< {GATE_WARN_FRACTION})"
            ));
        } else {
            out.lines
                .push(format!("ok   {name}: {new:.2}x vs baseline {base:.2}x"));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Seed replicas (baseline only — deliberately reproduce the old cost
// profile: per-row descriptor Vec allocations and per-point grid-API
// evaluation).
// ---------------------------------------------------------------------------

/// Replica of the seed `linear_fast_path` restricted to one thread and one
/// input grid: the blocked nest is identical, but every row rebuilds a
/// `Vec<(isize, &[f64], f64)>` of term descriptors — the allocation the
/// rebuilt engine eliminated.
fn seed_linear_sweep(stencil: &Stencil, input: &Grid3, out: &mut Grid3, params: &TuningParams) {
    let compiled = CompiledStencil::compile(stencil);
    let (terms, constant) = compiled
        .linear_terms()
        .expect("seed replica needs a linear stencil");
    let n = out.n();
    let block = params.clipped_block(n);
    let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));

    let ia = input.alloc();
    let ih = input.halo();
    let (iax, iay) = (ia[0] as isize, ia[1] as isize);
    let (ihx, ihy, ihz) = (ih[0] as isize, ih[1] as isize, ih[2] as isize);
    let in_row = |j: isize, k: isize| ((k + ihz) * iay + (j + ihy)) * iax + ihx;
    let term_desc: Vec<(isize, f64)> = terms
        .iter()
        .map(|&((_, o), c)| {
            let off = (o[2] as isize * iay + o[1] as isize) * iax + o[0] as isize;
            (off, c)
        })
        .collect();

    let oa = out.alloc();
    let oh = out.halo();
    let (oax, oay) = (oa[0] as isize, oa[1] as isize);
    let (ohx, ohy, ohz) = (oh[0] as isize, oh[1] as isize, oh[2] as isize);
    let src_all = input.as_slice();
    let data = out.as_mut_slice();
    for kb in (0..n[2]).step_by(block[2]) {
        let kz1 = (kb + block[2]).min(n[2]);
        for jb in (0..n[1]).step_by(block[1]) {
            let jy1 = (jb + block[1]).min(n[1]);
            for ib in (0..n[0]).step_by(block[0]) {
                let ix1 = (ib + block[0]).min(n[0]);
                for skb in (kb..kz1).step_by(sub[2]) {
                    let skz = (skb + sub[2]).min(kz1);
                    for sjb in (jb..jy1).step_by(sub[1]) {
                        let sjy = (sjb + sub[1]).min(jy1);
                        for sib in (ib..ix1).step_by(sub[0]) {
                            let six = (sib + sub[0]).min(ix1);
                            for k in skb..skz {
                                for j in sjb..sjy {
                                    let out_row =
                                        ((k as isize + ohz) * oay + (j as isize + ohy)) * oax + ohx;
                                    let in_rows: Vec<(isize, &[f64], f64)> = term_desc
                                        .iter()
                                        .map(|&(off, c)| {
                                            (in_row(j as isize, k as isize) + off, src_all, c)
                                        })
                                        .collect();
                                    for i in sib..six {
                                        let mut acc = constant;
                                        for &(base, src, c) in &in_rows {
                                            acc += c * src[(base + i as isize) as usize];
                                        }
                                        data[(out_row + i as isize) as usize] = acc;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Replica of the seed `run_wavefront_native`: the identical skewed plane
/// order, but every point goes through `CompiledStencil::eval_at` and
/// `Grid3::set` — no blocking, no threading, per-point brick addressing.
fn seed_wavefront(stencil: &Stencil, a: &mut Grid3, b: &mut Grid3, wf: usize) {
    let compiled = CompiledStencil::compile(stencil);
    let info = stencil.info();
    let shift = info.radius[2].max(1);
    let n = a.n();
    let zmax = n[2] + (wf - 1) * shift;
    for zt in 0..zmax {
        for s in 0..wf {
            let Some(z) = zt.checked_sub(s * shift) else {
                break;
            };
            if z >= n[2] {
                continue;
            }
            let (src, dst): (&Grid3, &mut Grid3) = if s % 2 == 0 {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            for j in 0..n[1] as isize {
                for i in 0..n[0] as isize {
                    let v = compiled.eval_at(&[src], i, j, z as isize);
                    dst.set(i, j, z as isize, v);
                }
            }
        }
    }
    if wf % 2 == 1 {
        a.swap_data(b).expect("ping-pong pair has identical layout");
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Best wall time over `reps` timed runs, preceded by one warm-up run.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn filled_grid(name: &str, n: [usize; 3], halo: [usize; 3], fold: Fold) -> Grid3 {
    let mut g = Grid3::new(name, n, halo, fold);
    g.fill_with(|i, j, k| ((i * 7 + j * 3 + k) % 13) as f64 * 0.05);
    g.fill_halo(0.0);
    g
}

/// Runs the kernel-throughput experiment at `scale` and returns the
/// report (the caller renders/serialises it).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn e12_kernel_throughput(scale: KernelScale) -> KernelReport {
    let n = scale.domain();
    let fold = Fold::new(8, 1, 1);
    let halo = [1usize, 1, 1];
    let stencil = builders::heat3d(1);
    let points = (n[0] * n[1] * n[2]) as f64;
    let reps = scale.reps();
    let threads_available = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Warm the pool once so thread spawn cost never lands in a sample.
    let _ = ExecPool::global().workers();

    let p1 = TuningParams::new([n[0], 16, 16], fold);
    let pmt = p1.clone().threads(threads_available);

    let mut samples = Vec::new();
    let mut push = |name: &str, secs: f64, updates: f64, threads: usize, depth: usize| {
        let per_sweep = secs / depth as f64;
        samples.push(KernelSample {
            name: name.to_string(),
            mlups: updates / secs.max(1e-12) / 1e6,
            seconds_per_sweep: per_sweep,
            threads,
            depth,
        });
    };

    // Tiers are pinned per sample (never read from the environment) so a
    // CI leg running under YASKSITE_FORCE_TIER cannot distort the ratios.
    let auto = |p: &TuningParams| SweepRequest::new(p).tier(TierPolicy::Auto);

    // --- Spatial fast path: seed replica vs rebuilt engine. ---
    {
        let u = filled_grid("u", n, halo, fold);
        let mut out = Grid3::new("out", n, halo, fold);
        let secs = time_best(reps, || seed_linear_sweep(&stencil, &u, &mut out, &p1));
        push("heat3d_fastpath_seed", secs, points, 1, 1);
        let secs = time_best(reps, || {
            auto(&p1)
                .apply(&stencil, &[&u], &mut out)
                .expect("fast path");
        });
        push("heat3d_fastpath_new", secs, points, 1, 1);
        let secs = time_best(reps, || {
            auto(&pmt)
                .apply(&stencil, &[&u], &mut out)
                .expect("fast path");
        });
        push("heat3d_fastpath_new_mt", secs, points, threads_available, 1);
    }

    // --- 27-point box: exercises the dynamic/specialised arity ladder. ---
    {
        let s27 = builders::box3d(1);
        let u = filled_grid("u", n, halo, fold);
        let mut out = Grid3::new("out", n, halo, fold);
        let secs = time_best(reps, || {
            auto(&p1).apply(&s27, &[&u], &mut out).expect("fast path");
        });
        push("box3d_fastpath_new", secs, points, 1, 1);
    }

    // --- Folded lane tier vs the scalar rows it replaces. heat3d shows
    // the memory-bound case; box3d(2) (125 terms, dynamic scalar arity)
    // shows the compute-bound win of the wide-lane accumulators, which
    // touch the output once per 16-term stripe instead of once per term.
    {
        let u = filled_grid("u", n, halo, fold);
        let mut out = Grid3::new("out", n, halo, fold);
        let scalar = SweepRequest::new(&p1).tier(TierPolicy::ForceScalar);
        let secs = time_best(reps, || {
            scalar
                .apply(&stencil, &[&u], &mut out)
                .expect("scalar tier");
        });
        push("heat3d_scalar_tier_1t", secs, points, 1, 1);
        let folded = SweepRequest::new(&p1).tier(TierPolicy::ForceFolded);
        let secs = time_best(reps, || {
            folded
                .apply(&stencil, &[&u], &mut out)
                .expect("folded tier");
        });
        push("heat3d_folded_tier_1t", secs, points, 1, 1);
    }
    {
        let s125 = builders::box3d(2);
        let halo2 = [2usize, 2, 2];
        let u = filled_grid("u", n, halo2, fold);
        let mut out = Grid3::new("out", n, halo2, fold);
        let scalar = SweepRequest::new(&p1).tier(TierPolicy::ForceScalar);
        let secs = time_best(reps, || {
            scalar.apply(&s125, &[&u], &mut out).expect("scalar tier");
        });
        push("box3d2_scalar_tier_1t", secs, points, 1, 1);
        let folded = SweepRequest::new(&p1).tier(TierPolicy::ForceFolded);
        let secs = time_best(reps, || {
            folded.apply(&s125, &[&u], &mut out).expect("folded tier");
        });
        push("box3d2_folded_tier_1t", secs, points, 1, 1);
    }

    // --- Brick kernel on a multi-dimensional fold (4×2×1) vs the
    // per-point generic path those layouts used before the folded tier.
    {
        let fold421 = Fold::new(4, 2, 1);
        let p421 = TuningParams::new([n[0], 16, 16], fold421);
        let u = filled_grid("u", n, halo, fold421);
        let mut out = Grid3::new("out", n, halo, fold421);
        // ForceScalar on a multi-dim fold degrades to the generic path —
        // exactly the pre-folded-tier behaviour.
        let generic = SweepRequest::new(&p421).tier(TierPolicy::ForceScalar);
        let secs = time_best(reps, || {
            generic.apply(&stencil, &[&u], &mut out).expect("generic");
        });
        push("heat3d_4x2x1_generic_1t", secs, points, 1, 1);
        let brick = SweepRequest::new(&p421).tier(TierPolicy::ForceFolded);
        let secs = time_best(reps, || {
            brick.apply(&stencil, &[&u], &mut out).expect("brick tier");
        });
        push("heat3d_4x2x1_brick_1t", secs, points, 1, 1);
    }

    // --- Wavefront at depth 2: seed naive vs blocked+threaded. ---
    let depth = 2usize;
    {
        let mut a = filled_grid("a", n, halo, fold);
        let mut b = filled_grid("b", n, halo, fold);
        let secs = time_best(reps, || seed_wavefront(&stencil, &mut a, &mut b, depth));
        push(
            "heat3d_wavefront_seed_d2",
            secs,
            depth as f64 * points,
            1,
            depth,
        );

        let pw1 = p1.clone().wavefront(depth);
        let secs = time_best(reps, || {
            auto(&pw1)
                .run_wavefront(&stencil, &mut a, &mut b)
                .expect("wavefront");
        });
        push(
            "heat3d_wavefront_new_d2",
            secs,
            depth as f64 * points,
            1,
            depth,
        );

        let pwmt = pmt.clone().wavefront(depth);
        let secs = time_best(reps, || {
            auto(&pwmt)
                .run_wavefront(&stencil, &mut a, &mut b)
                .expect("wavefront");
        });
        push(
            "heat3d_wavefront_new_d2_mt",
            secs,
            depth as f64 * points,
            threads_available,
            depth,
        );

        // Depth-4 point for the MLUP/s-vs-depth trajectory.
        let pw4 = pmt.clone().wavefront(4);
        let secs = time_best(reps, || {
            auto(&pw4)
                .run_wavefront(&stencil, &mut a, &mut b)
                .expect("wavefront");
        });
        push(
            "heat3d_wavefront_new_d4_mt",
            secs,
            4.0 * points,
            threads_available,
            4,
        );
    }

    let mlups_of = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.mlups)
            .expect("sample recorded above")
    };
    let ratios = vec![
        (
            "fastpath_new_vs_seed_1t",
            mlups_of("heat3d_fastpath_new") / mlups_of("heat3d_fastpath_seed"),
        ),
        (
            "wavefront_new_vs_seed_d2",
            mlups_of("heat3d_wavefront_new_d2_mt") / mlups_of("heat3d_wavefront_seed_d2"),
        ),
        (
            "wavefront_new_1t_vs_seed_d2",
            mlups_of("heat3d_wavefront_new_d2") / mlups_of("heat3d_wavefront_seed_d2"),
        ),
        (
            "folded_vs_scalar_heat3d_1t",
            mlups_of("heat3d_folded_tier_1t") / mlups_of("heat3d_scalar_tier_1t"),
        ),
        (
            "folded_vs_scalar_box3d2_1t",
            mlups_of("box3d2_folded_tier_1t") / mlups_of("box3d2_scalar_tier_1t"),
        ),
        (
            "folded_brick_vs_generic_4x2x1_1t",
            mlups_of("heat3d_4x2x1_brick_1t") / mlups_of("heat3d_4x2x1_generic_1t"),
        ),
    ];

    KernelReport {
        scale: scale.label(),
        domain: n,
        threads_available,
        samples,
        ratios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_replicas_match_engine_results() {
        let n = [24, 13, 11];
        let fold = Fold::new(8, 1, 1);
        let s = builders::heat3d(1);
        let p = TuningParams::new([24, 8, 4], fold);

        let u = filled_grid("u", n, [1, 1, 1], fold);
        let mut seed_out = Grid3::new("so", n, [1, 1, 1], fold);
        let mut new_out = Grid3::new("no", n, [1, 1, 1], fold);
        seed_linear_sweep(&s, &u, &mut seed_out, &p);
        for policy in [TierPolicy::ForceScalar, TierPolicy::ForceFolded] {
            SweepRequest::new(&p)
                .tier(policy)
                .apply(&s, &[&u], &mut new_out)
                .unwrap();
            assert_eq!(seed_out.max_abs_diff(&new_out).unwrap(), 0.0, "{policy:?}");
        }

        let wf = 3;
        let mut a1 = filled_grid("a1", n, [1, 1, 1], fold);
        let mut b1 = filled_grid("b1", n, [1, 1, 1], fold);
        seed_wavefront(&s, &mut a1, &mut b1, wf);
        let mut a2 = filled_grid("a2", n, [1, 1, 1], fold);
        let mut b2 = filled_grid("b2", n, [1, 1, 1], fold);
        let pw = p.clone().threads(4).wavefront(wf);
        SweepRequest::new(&pw)
            .tier(TierPolicy::Auto)
            .run_wavefront(&s, &mut a2, &mut b2)
            .unwrap();
        assert_eq!(a1.max_abs_diff(&a2).unwrap(), 0.0);
    }

    #[test]
    fn report_json_round_trips_and_validates() {
        let report = KernelReport {
            scale: "tiny",
            domain: [64, 32, 32],
            threads_available: 4,
            samples: vec![KernelSample {
                name: "heat3d_fastpath_new".into(),
                mlups: 1234.5,
                seconds_per_sweep: 0.001,
                threads: 1,
                depth: 1,
            }],
            ratios: vec![
                ("fastpath_new_vs_seed_1t", 1.8),
                ("wavefront_new_vs_seed_d2", 2.5),
            ],
        };
        let text = report.to_json();
        validate_kernels_json(&text).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(KERNELS_SCHEMA)
        );
    }

    #[test]
    fn validation_rejects_broken_documents() {
        assert!(validate_kernels_json("{}").is_err());
        assert!(validate_kernels_json("not json").is_err());
        let wrong_schema = r#"{"schema": "other.v9"}"#;
        assert!(validate_kernels_json(wrong_schema)
            .unwrap_err()
            .contains("schema"));
    }

    fn sample_report(mlups: f64) -> KernelReport {
        KernelReport {
            scale: "tiny",
            domain: [64, 32, 32],
            threads_available: 4,
            samples: vec![KernelSample {
                name: "heat3d_fastpath_new".into(),
                mlups,
                seconds_per_sweep: 0.001,
                threads: 1,
                depth: 1,
            }],
            ratios: vec![
                ("fastpath_new_vs_seed_1t", 2.0),
                ("wavefront_new_vs_seed_d2", 10.0),
            ],
        }
    }

    #[test]
    fn history_accumulates_across_runs_and_keeps_latest_on_top() {
        let r1 = sample_report(1000.0);
        let first = r1.to_json_with_history(None, "rev-a", Some("7"));
        validate_kernels_json(&first).unwrap();
        let doc = json::parse(&first).unwrap();
        let Some(Json::Arr(h)) = doc.get("history") else {
            panic!("missing history: {first}");
        };
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].get("rev").and_then(Json::as_str), Some("rev-a"));
        assert_eq!(h[0].get("seed").and_then(Json::as_str), Some("7"));

        let r2 = sample_report(2000.0);
        let second = r2.to_json_with_history(Some(&first), "rev-b", None);
        validate_kernels_json(&second).unwrap();
        let doc = json::parse(&second).unwrap();
        let Some(Json::Arr(h)) = doc.get("history") else {
            panic!("missing history: {second}");
        };
        assert_eq!(h.len(), 2, "second run appends, never clobbers");
        assert_eq!(h[0].get("rev").and_then(Json::as_str), Some("rev-a"));
        assert_eq!(h[1].get("rev").and_then(Json::as_str), Some("rev-b"));
        assert!(matches!(h[1].get("seed"), Some(Json::Null)));
        // Top-level kernels/ratios reflect the *latest* run.
        let Some(Json::Arr(kernels)) = doc.get("kernels") else {
            panic!("missing kernels: {second}");
        };
        assert_eq!(kernels[0].get("mlups").and_then(Json::as_f64), Some(2000.0));
    }

    #[test]
    fn pre_history_files_are_preserved_as_an_entry() {
        let old = sample_report(1000.0).to_json();
        let merged = sample_report(2000.0).to_json_with_history(Some(&old), "rev-b", None);
        let doc = json::parse(&merged).unwrap();
        let Some(Json::Arr(h)) = doc.get("history") else {
            panic!("missing history: {merged}");
        };
        assert_eq!(h.len(), 2, "the old latest run becomes the first entry");
        assert_eq!(h[0].get("rev").and_then(Json::as_str), Some("unknown"));
        let Some(Json::Arr(old_kernels)) = h[0].get("kernels") else {
            panic!("carried entry lost its kernels: {merged}");
        };
        assert_eq!(
            old_kernels[0].get("mlups").and_then(Json::as_f64),
            Some(1000.0)
        );
        // Garbage prev starts fresh instead of failing the run.
        let fresh = sample_report(3000.0).to_json_with_history(Some("not json"), "rev-c", None);
        let doc = json::parse(&fresh).unwrap();
        let Some(Json::Arr(h)) = doc.get("history") else {
            panic!("missing history: {fresh}");
        };
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn gate_classifies_ok_warn_fail() {
        let base = sample_report(1000.0).to_json();
        let same = gate_kernels_json(&base, &base).unwrap();
        assert_eq!(same.failures, 0);
        assert_eq!(same.warnings, 0);
        assert!(same.lines.iter().all(|l| l.starts_with("ok")), "{same:?}");

        // Halve one ratio (0.5 of baseline): warn, not fail.
        let mut warn_report = sample_report(1000.0);
        warn_report.ratios[0].1 = 1.0;
        let g = gate_kernels_json(&warn_report.to_json(), &base).unwrap();
        assert_eq!(g.warnings, 1, "{g:?}");
        assert_eq!(g.failures, 0, "{g:?}");

        // Collapse one ratio to a fifth: fail.
        let mut fail_report = sample_report(1000.0);
        fail_report.ratios[1].1 = 2.0;
        let g = gate_kernels_json(&fail_report.to_json(), &base).unwrap();
        assert_eq!(g.failures, 1, "{g:?}");
        assert!(g.lines.iter().any(|l| l.starts_with("FAIL")), "{g:?}");

        assert!(gate_kernels_json("not json", &base).is_err());
    }

    #[test]
    fn tiny_experiment_runs_end_to_end() {
        let report = e12_kernel_throughput(KernelScale::Tiny);
        assert_eq!(report.scale, "tiny");
        assert!(report.samples.len() >= 7);
        validate_kernels_json(&report.to_json()).unwrap();
        for s in &report.samples {
            assert!(s.mlups > 0.0, "{} has no throughput", s.name);
        }
    }
}
