//! Experiment implementations for the reproduction's tables and figures.
//!
//! Each `e*` function regenerates one table/figure of the evaluation
//! (see `DESIGN.md` for the experiment index). The functions take a
//! [`Scale`] so the same code can run paper-sized in the `e*` binaries
//! and small in integration tests. All output is plain aligned text —
//! the "figure" experiments print the series that would be plotted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod fmt;
pub mod kernels;
pub mod manifest;

pub use experiments::Scale;
pub use fmt::Table;
pub use manifest::run_manifest;
