//! Experiment driver (see DESIGN.md experiment index). Pass `--small`
//! for a miniature run and `--jobs N` to pin the ranking worker count.

use yasksite_arch::Machine;
#[allow(unused_imports)]
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let jobs = Scale::jobs_from_args();
    println!(
        "{}",
        yasksite_bench::experiments::e9_tuning_cost(&Machine::cascade_lake(), scale, jobs)
    );
}
