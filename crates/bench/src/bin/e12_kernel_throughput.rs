//! Native kernel engine throughput: seed-replica baselines vs the
//! allocation-free fast path and blocked+threaded wavefront.
//!
//! Usage:
//!   e12_kernel_throughput [--scale tiny|small|paper] [--out PATH]
//!   e12_kernel_throughput --validate PATH
//!   e12_kernel_throughput --gate NEW BASELINE
//!
//! Default scale is `paper` (heat3d at 256³). The run writes a
//! `yasksite.bench_kernels.v1` JSON record (default `BENCH_kernels.json`),
//! appending itself to the file's `history` array (keyed by source
//! revision and `YASKSITE_SEED`) while keeping the top-level
//! `kernels`/`ratios` as the latest run; it validates the result before
//! exiting. `--validate` checks an existing file without measuring
//! anything; `--gate` compares the headline ratios of a fresh report
//! against a committed baseline and exits non-zero on a regression (CI
//! uses both on the smoke-run output).

use yasksite_bench::kernels::{
    e12_kernel_throughput, gate_kernels_json, validate_kernels_json, KernelScale,
};
use yasksite_bench::manifest::{source_revision, SEED_ENV};

fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate needs a file path");
            std::process::exit(2);
        });
        let text = read_or_die(path);
        match validate_kernels_json(&text) {
            Ok(()) => {
                println!("{path}: ok");
                return;
            }
            Err(e) => {
                eprintln!("{path}: invalid: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let (Some(new_path), Some(base_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("--gate needs NEW and BASELINE file paths");
            std::process::exit(2);
        };
        let outcome = gate_kernels_json(&read_or_die(new_path), &read_or_die(base_path))
            .unwrap_or_else(|e| {
                eprintln!("gate: {e}");
                std::process::exit(1);
            });
        for line in &outcome.lines {
            println!("{line}");
        }
        println!(
            "gate: {} compared, {} warnings, {} failures",
            outcome.lines.len(),
            outcome.warnings,
            outcome.failures
        );
        if outcome.failures > 0 {
            std::process::exit(1);
        }
        return;
    }

    let scale = KernelScale::from_args();
    print!(
        "{}",
        yasksite_bench::run_manifest("e12_kernel_throughput", &[], None, None)
    );
    println!("#   scale: {}", scale.label());

    let report = e12_kernel_throughput(scale);
    println!("{}", report.render_text());

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_kernels.json", String::as_str);
    let prev = std::fs::read_to_string(out_path).ok();
    let seed = std::env::var(SEED_ENV)
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    let json = report.to_json_with_history(prev.as_deref(), &source_revision(), seed.as_deref());
    if let Err(e) = validate_kernels_json(&json) {
        eprintln!("internal error: emitted JSON failed validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("{out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
