//! Native kernel engine throughput: seed-replica baselines vs the
//! allocation-free fast path and blocked+threaded wavefront.
//!
//! Usage:
//!   e12_kernel_throughput [--scale tiny|small|paper] [--out PATH]
//!   e12_kernel_throughput --validate PATH
//!
//! Default scale is `paper` (heat3d at 256³). The run writes a
//! `yasksite.bench_kernels.v1` JSON record (default `BENCH_kernels.json`)
//! and validates it before exiting; `--validate` checks an existing file
//! without measuring anything (CI uses it on the smoke-run output).

use yasksite_bench::kernels::{e12_kernel_throughput, validate_kernels_json, KernelScale};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("--validate needs a file path");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        match validate_kernels_json(&text) {
            Ok(()) => {
                println!("{path}: ok");
                return;
            }
            Err(e) => {
                eprintln!("{path}: invalid: {e}");
                std::process::exit(1);
            }
        }
    }

    let scale = KernelScale::from_args();
    print!(
        "{}",
        yasksite_bench::run_manifest("e12_kernel_throughput", &[], None, None)
    );
    println!("#   scale: {}", scale.label());

    let report = e12_kernel_throughput(scale);
    println!("{}", report.render_text());

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_kernels.json", String::as_str);
    let json = report.to_json();
    if let Err(e) = validate_kernels_json(&json) {
        eprintln!("internal error: emitted JSON failed validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("{out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
