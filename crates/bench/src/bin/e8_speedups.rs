//! Experiment driver (see DESIGN.md experiment index). Pass `--small`
//! for a miniature run.

use yasksite_arch::Machine;
#[allow(unused_imports)]
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    for m in [Machine::cascade_lake(), Machine::rome()] {
        println!("{}", yasksite_bench::experiments::e8_speedups(&m, scale));
    }
}
