//! Experiment driver (see DESIGN.md experiment index). Pass `--small`
//! for a miniature run.

use yasksite_arch::Machine;
#[allow(unused_imports)]
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let machines = [Machine::cascade_lake(), Machine::rome()];
    print!(
        "{}",
        yasksite_bench::run_manifest("e8_speedups", &machines, Some(scale), None)
    );
    for m in &machines {
        println!("{}", yasksite_bench::experiments::e8_speedups(m, scale));
    }
}
