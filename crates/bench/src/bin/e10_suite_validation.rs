//! Experiment driver (see DESIGN.md experiment index). Pass `--small`
//! for a miniature run.

use yasksite_arch::Machine;
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let machines = [Machine::cascade_lake(), Machine::rome()];
    print!(
        "{}",
        yasksite_bench::run_manifest("e10_suite_validation", &machines, Some(scale), None)
    );
    for m in &machines {
        println!(
            "{}",
            yasksite_bench::experiments::e10_suite_validation(m, scale)
        );
    }
}
