//! Experiment driver (extension; see DESIGN.md). Pass `--small` for a
//! miniature run.

use yasksite_arch::Machine;
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!(
        "{}",
        yasksite_bench::experiments::e11_work_precision(&Machine::cascade_lake(), scale)
    );
}
