//! Experiment driver (extension; see DESIGN.md). Pass `--small` for a
//! miniature run.

use yasksite_arch::Machine;
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let machine = Machine::cascade_lake();
    print!(
        "{}",
        yasksite_bench::run_manifest(
            "e11_work_precision",
            std::slice::from_ref(&machine),
            Some(scale),
            None
        )
    );
    println!(
        "{}",
        yasksite_bench::experiments::e11_work_precision(&machine, scale)
    );
}
