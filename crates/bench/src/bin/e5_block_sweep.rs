//! Experiment driver (see DESIGN.md experiment index). Pass `--small`
//! for a miniature run and `--jobs N` to pin the ranking worker count.

use yasksite_arch::Machine;
#[allow(unused_imports)]
use yasksite_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let jobs = Scale::jobs_from_args();
    let machine = Machine::cascade_lake();
    print!(
        "{}",
        yasksite_bench::run_manifest(
            "e5_block_sweep",
            std::slice::from_ref(&machine),
            Some(scale),
            jobs
        )
    );
    println!(
        "{}",
        yasksite_bench::experiments::e5_block_sweep(&machine, scale, jobs)
    );
}
