//! Experiment driver (see DESIGN.md experiment index). Pass `--small`
//! for a miniature run.

#[allow(unused_imports)]
use yasksite_arch::Machine;
#[allow(unused_imports)]
use yasksite_bench::Scale;

fn main() {
    print!(
        "{}",
        yasksite_bench::run_manifest("e2_machine_table", &[], None, None)
    );
    println!("{}", yasksite_bench::experiments::e2_machine_table());
}
