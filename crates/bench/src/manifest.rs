//! The run manifest printed at the top of every experiment binary.
//!
//! A table without its provenance is unreproducible: which machine
//! models, which scale, how many ranking workers, which seed, which
//! source revision? The manifest answers those questions in a fixed
//! `#`-prefixed header so result files stay self-describing while plain
//! `grep -v '^#'` recovers the bare table.

use yasksite_arch::Machine;

use crate::Scale;

/// Environment variable carrying the experiment seed, recorded in the
/// manifest when set (the simulator itself is deterministic; the seed
/// only matters for fault-injection experiments).
pub const SEED_ENV: &str = "YASKSITE_SEED";

/// The source revision, best effort: `GITHUB_SHA` when CI exported it,
/// else `git rev-parse --short=12 HEAD`, else `"unknown"` (e.g. when the
/// binary runs outside a checkout).
#[must_use]
pub fn source_revision() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders the manifest header for `experiment`: machine tags, scale,
/// worker count, seed, crate version and source revision, one
/// `#`-prefixed line each. `machines` may be empty for table-only
/// experiments; `scale`/`jobs` are `None` when the experiment has no
/// such knob.
#[must_use]
pub fn run_manifest(
    experiment: &str,
    machines: &[Machine],
    scale: Option<Scale>,
    jobs: Option<usize>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# run-manifest: {experiment}\n"));
    if !machines.is_empty() {
        let tags: Vec<&str> = machines.iter().map(Machine::tag).collect();
        out.push_str(&format!("#   machines: {}\n", tags.join(", ")));
    }
    if let Some(s) = scale {
        out.push_str(&format!("#   scale: {}\n", s.label()));
    }
    match jobs {
        Some(j) => out.push_str(&format!("#   jobs: {j}\n")),
        None => out.push_str("#   jobs: auto (YASKSITE_JOBS or all cores)\n"),
    }
    match std::env::var(SEED_ENV) {
        Ok(seed) if !seed.trim().is_empty() => {
            out.push_str(&format!("#   seed: {}\n", seed.trim()));
        }
        _ => out.push_str(&format!("#   seed: {SEED_ENV} unset\n")),
    }
    out.push_str(&format!("#   version: {}\n", env!("CARGO_PKG_VERSION")));
    out.push_str(&format!("#   rev: {}\n", source_revision()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_lines_are_comment_prefixed_and_complete() {
        let m = run_manifest(
            "e9_tuning_cost",
            &[Machine::cascade_lake(), Machine::rome()],
            Some(Scale::Small),
            Some(4),
        );
        for line in m.lines() {
            assert!(line.starts_with('#'), "{line}");
        }
        assert!(m.contains("run-manifest: e9_tuning_cost"), "{m}");
        assert!(m.contains("machines: CLX, ROME"), "{m}");
        assert!(m.contains("scale: small"), "{m}");
        assert!(m.contains("jobs: 4"), "{m}");
        assert!(m.contains("seed:"), "{m}");
        assert!(m.contains("version:"), "{m}");
        assert!(m.contains("rev:"), "{m}");
    }

    #[test]
    fn knobless_experiments_omit_their_lines() {
        let m = run_manifest("e1_stencil_table", &[], None, None);
        assert!(!m.contains("machines:"), "{m}");
        assert!(!m.contains("scale:"), "{m}");
        assert!(m.contains("jobs: auto"), "{m}");
    }

    #[test]
    fn revision_is_never_empty() {
        assert!(!source_revision().is_empty());
    }
}
