//! Criterion benchmarks of whole ODE method steps on the host — the
//! native counterpart of the Offsite variant comparison (E7/E8): variant
//! D/E should beat variant A on memory-bound right-hand sides.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_ode::ivps::{Heat2d, Ivp};
use yasksite_ode::{erk_plan, pirk_plan, Integrator, Tableau, Variant};

fn params(ivp: &dyn Ivp) -> TuningParams {
    let d = ivp.domain();
    TuningParams::new([d[0], d[1].min(16), d[2]], Fold::new(8, 1, 1))
}

fn bench_erk_variants(c: &mut Criterion) {
    let ivp = Heat2d::new(256);
    let h = 1e-7;
    let mut g = c.benchmark_group("rk4_step_variants");
    g.sample_size(20);
    g.throughput(Throughput::Elements((256 * 256) as u64));
    for v in Variant::all() {
        let plan = erk_plan(&Tableau::rk4(), &ivp, h, v);
        let mut integ = Integrator::new(&ivp, plan, h, params(&ivp)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| integ.step().unwrap());
        });
    }
    g.finish();
}

fn bench_pirk_variants(c: &mut Criterion) {
    let ivp = Heat2d::new(192);
    let h = 1e-7;
    let mut g = c.benchmark_group("pirk_radau3_step_variants");
    g.sample_size(20);
    g.throughput(Throughput::Elements((192 * 192) as u64));
    for v in [Variant::A, Variant::D] {
        let plan = pirk_plan(&Tableau::radau_iia2(), 3, &ivp, h, v);
        let mut integ = Integrator::new(&ivp, plan, h, params(&ivp)).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| integ.step().unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_erk_variants, bench_pirk_variants);
criterion_main!(benches);
