//! Criterion benchmarks of the analytic model and the cache simulator —
//! the two "tuning currencies" compared in experiment E9: a model
//! evaluation costs microseconds, a simulated (or real) kernel run costs
//! many orders of magnitude more.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use yasksite::Solution;
use yasksite_arch::Machine;
use yasksite_ecm::{EcmModel, KernelDesc};
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::builders::heat3d;

/// Cost of one ECM model evaluation (the analytic tuner's unit of work).
fn bench_ecm_eval(c: &mut Criterion) {
    let m = Machine::cascade_lake();
    let s = heat3d(1);
    let model = EcmModel::new(&m);
    let desc = KernelDesc::new(&s, [512, 512, 512])
        .tile([512, 8, 8])
        .fold(Fold::new(8, 1, 1));
    c.bench_function("ecm_predict", |b| {
        b.iter(|| std::hint::black_box(model.predict_at(&desc, 8)));
    });
}

/// Cost of one simulated kernel measurement (the empirical tuner's unit
/// of work) at a small size.
fn bench_simulated_measure(c: &mut Criterion) {
    let m = Machine::cascade_lake();
    let sol = Solution::new(heat3d(1), [48, 24, 24], m);
    let p = TuningParams::new([48, 8, 8], Fold::new(8, 1, 1));
    let mut g = c.benchmark_group("simulated_measure");
    g.sample_size(10);
    g.throughput(Throughput::Elements((48 * 24 * 24) as u64));
    g.bench_function("heat3d_48", |b| {
        b.iter(|| std::hint::black_box(sol.measure(&p).unwrap()));
    });
    g.finish();
}

/// Raw simulator access throughput.
fn bench_hierarchy_access(c: &mut Criterion) {
    use yasksite_memsim::MemHierarchy;
    let m = Machine::cascade_lake();
    let mut g = c.benchmark_group("memsim_access");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("stream_10k", |b| {
        let mut h = MemHierarchy::new(&m, 1);
        let mut base = 0u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                h.read(0, base + i * 64);
            }
            base = base.wrapping_add(10_000 * 64);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ecm_eval,
    bench_simulated_measure,
    bench_hierarchy_access
);
criterion_main!(benches);
