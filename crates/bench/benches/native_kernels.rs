//! Criterion benchmarks of the native execution paths: the host-side
//! counterpart of the paper's single-kernel measurements, plus the
//! blocking/folding ablations called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use yasksite_engine::{SweepRequest, TierPolicy, TuningParams};
use yasksite_grid::{Fold, Grid3};
use yasksite_stencil::builders::{box3d, heat3d, inverter_chain_rhs};

fn grids(n: [usize; 3], halo: [usize; 3], fold: Fold) -> (Grid3, Grid3) {
    let mut u = Grid3::new("u", n, halo, fold);
    u.fill_with(|i, j, k| ((i + 2 * j + 3 * k) % 7) as f64 * 0.1);
    u.fill_halo(0.0);
    let out = Grid3::new("o", n, halo, fold);
    (u, out)
}

/// Ablation: spatial block size on the host (naive vs tuned-style blocks).
fn bench_blocking(c: &mut Criterion) {
    let n = [128, 64, 64];
    let fold = Fold::new(8, 1, 1);
    let s = heat3d(1);
    let (u, mut out) = grids(n, [1, 1, 1], fold);
    let mut g = c.benchmark_group("heat3d_blocking");
    g.throughput(Throughput::Elements((n[0] * n[1] * n[2]) as u64));
    for block in [[128, 64, 64], [128, 8, 8], [32, 8, 8]] {
        let p = TuningParams::new(block, fold);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}x{}x{}", block[0], block[1], block[2])),
            &p,
            |b, p| {
                b.iter(|| SweepRequest::new(p).apply(&s, &[&u], &mut out).unwrap());
            },
        );
    }
    g.finish();
}

/// Ablation: fast linear path vs generic interpreter (folded layout).
fn bench_fold_paths(c: &mut Criterion) {
    let n = [64, 32, 32];
    let s = box3d(1);
    let mut g = c.benchmark_group("box3d_fold_path");
    g.throughput(Throughput::Elements((n[0] * n[1] * n[2]) as u64));
    for fold in [Fold::new(8, 1, 1), Fold::new(4, 2, 1)] {
        let (u, mut out) = grids(n, [1, 1, 1], fold);
        let p = TuningParams::new([64, 8, 8], fold);
        g.bench_with_input(BenchmarkId::from_parameter(fold), &fold, |b, _| {
            b.iter(|| SweepRequest::new(&p).apply(&s, &[&u], &mut out).unwrap());
        });
    }
    g.finish();
}

/// Nonlinear (tape-interpreted) kernel throughput.
fn bench_tape(c: &mut Criterion) {
    let n = [1 << 16, 1, 1];
    let fold = Fold::new(8, 1, 1);
    let s = inverter_chain_rhs(5.0, 1.0, 0.5);
    let (u, mut out) = grids(n, [1, 0, 0], fold);
    let p = TuningParams::new([4096, 1, 1], fold);
    let mut g = c.benchmark_group("inverter_chain_tape");
    g.throughput(Throughput::Elements(n[0] as u64));
    g.bench_function("tape", |b| {
        b.iter(|| SweepRequest::new(&p).apply(&s, &[&u], &mut out).unwrap());
    });
    g.finish();
}

/// Regression guard for the allocation-free fast path at a memory-bound
/// size: grids far exceed LLC, so any per-row allocation or bounds-check
/// regression shows up directly in the element throughput.
fn bench_memory_bound_fastpath(c: &mut Criterion) {
    let n = [256, 128, 128];
    let fold = Fold::new(8, 1, 1);
    let p = TuningParams::new([256, 16, 16], fold);
    let mut g = c.benchmark_group("fastpath_memory_bound");
    g.throughput(Throughput::Elements((n[0] * n[1] * n[2]) as u64));
    for (name, s) in [("heat3d", heat3d(1)), ("box3d", box3d(1))] {
        let (u, mut out) = grids(n, [1, 1, 1], fold);
        g.bench_function(name, |b| {
            b.iter(|| SweepRequest::new(&p).apply(&s, &[&u], &mut out).unwrap());
        });
    }
    g.finish();
}

/// Ablation: scalar row kernels vs the folded lane kernel on the same
/// row-major layout. box3d(2) has 125 terms (dynamic scalar arity), so
/// the lane kernel's register accumulators show their compute-bound win.
fn bench_tier_ablation(c: &mut Criterion) {
    let n = [96, 48, 48];
    let fold = Fold::new(8, 1, 1);
    let s = box3d(2);
    let p = TuningParams::new([96, 8, 8], fold);
    let mut g = c.benchmark_group("box3d2_tier");
    g.throughput(Throughput::Elements((n[0] * n[1] * n[2]) as u64));
    for (name, policy) in [
        ("scalar", TierPolicy::ForceScalar),
        ("folded", TierPolicy::ForceFolded),
    ] {
        let (u, mut out) = grids(n, [2, 2, 2], fold);
        g.bench_function(name, |b| {
            b.iter(|| {
                SweepRequest::new(&p)
                    .tier(policy)
                    .apply(&s, &[&u], &mut out)
                    .unwrap()
            });
        });
    }
    g.finish();
}

/// Regression guard for the blocked wavefront at a memory-bound size:
/// depth 1 (plain sweep through the wavefront driver) vs depth 2
/// (temporal blocking engaged — per-step throughput must not collapse).
fn bench_wavefront(c: &mut Criterion) {
    let n = [256, 128, 128];
    let fold = Fold::new(8, 1, 1);
    let s = heat3d(1);
    let mut g = c.benchmark_group("wavefront_memory_bound");
    for depth in [1usize, 2] {
        let p = TuningParams::new([256, 16, 16], fold).wavefront(depth);
        let (mut a, mut b2) = grids(n, [1, 1, 1], fold);
        g.throughput(Throughput::Elements((depth * n[0] * n[1] * n[2]) as u64));
        g.bench_with_input(BenchmarkId::new("depth", depth), &p, |b, p| {
            b.iter(|| {
                SweepRequest::new(p)
                    .run_wavefront(&s, &mut a, &mut b2)
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_blocking,
    bench_fold_paths,
    bench_tape,
    bench_memory_bound_fastpath,
    bench_tier_ablation,
    bench_wavefront
);
criterion_main!(benches);
