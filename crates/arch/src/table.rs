//! Textual rendering of machine models (experiment E2).

use crate::Machine;
use std::fmt::Write as _;

/// Renders the machine-model table the paper's evaluation section opens
/// with: one row per parameter, one column per machine.
///
/// ```
/// use yasksite_arch::{machine_table, Machine};
/// let t = machine_table(&[Machine::cascade_lake(), Machine::rome()]);
/// assert!(t.contains("CLX"));
/// assert!(t.contains("cores/socket"));
/// ```
#[must_use]
pub fn machine_table(machines: &[Machine]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {}",
        "parameter",
        machines
            .iter()
            .map(|m| format!("{:>24}", m.tag()))
            .collect::<String>()
    );
    let row = |out: &mut String, label: &str, f: &dyn Fn(&Machine) -> String| {
        let _ = write!(out, "{label:<28} ");
        for m in machines {
            let _ = write!(out, "{:>24}", f(m));
        }
        let _ = writeln!(out);
    };
    row(&mut out, "model", &|m| {
        m.name
            .split('(')
            .nth(1)
            .unwrap_or(&m.name)
            .trim_end_matches(')')
            .to_string()
    });
    row(&mut out, "clock [GHz]", &|m| format!("{:.2}", m.freq_ghz));
    row(&mut out, "cores/socket", &|m| {
        m.cores_per_socket.to_string()
    });
    row(&mut out, "SIMD", &|m| format!("{:?}", m.ports.simd));
    row(&mut out, "peak GF/s per core", &|m| {
        format!("{:.1}", m.peak_gflops_core())
    });
    for (i, _) in machines[0].caches.iter().enumerate() {
        row(
            &mut out,
            &format!("{} size [KiB]", machines[0].caches[i].name),
            &|m| format!("{}", m.caches[i].size_bytes / 1024),
        );
        row(
            &mut out,
            &format!("{} bw [B/cy]", machines[0].caches[i].name),
            &|m| format!("{:.0}", m.caches[i].bytes_per_cycle),
        );
    }
    row(&mut out, "mem bw socket [GB/s]", &|m| {
        format!("{:.0}", m.mem_bw_gbs)
    });
    row(&mut out, "mem bw 1-core [GB/s]", &|m| {
        format!("{:.0}", m.mem_bw_single_core_gbs)
    });
    row(&mut out, "mem cy/CL (1 core)", &|m| {
        format!("{:.1}", m.mem_cycles_per_line())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_machines_and_rows() {
        let t = machine_table(&[Machine::cascade_lake(), Machine::rome(), Machine::host()]);
        for tag in ["CLX", "ROME", "HOST"] {
            assert!(t.contains(tag), "missing {tag}");
        }
        for row in ["clock", "L1 size", "L3 bw", "mem bw socket"] {
            assert!(t.contains(row), "missing row {row}");
        }
        assert!(t.lines().count() > 10);
    }
}
