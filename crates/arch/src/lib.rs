//! Machine models for the YaskSite reproduction.
//!
//! The Execution–Cache–Memory (ECM) performance model and the cache-hierarchy
//! simulator both consume a description of the target machine: the cache
//! levels (size, associativity, line length, inter-level bandwidth), the
//! in-core execution resources (SIMD width, FMA/load/store ports), the clock
//! frequency, and the core/socket topology. This crate provides that
//! description ([`Machine`]) together with the built-in models used in the
//! paper's evaluation — Intel Cascade Lake and AMD Rome — plus a model of the
//! host this reproduction runs on.
//!
//! # Examples
//!
//! ```
//! use yasksite_arch::Machine;
//!
//! let clx = Machine::cascade_lake();
//! assert_eq!(clx.cores_per_socket, 20);
//! // Cycles to move one 64-byte cache line from L2 into L1:
//! let cy = clx.cycles_per_line(1);
//! assert!(cy > 0.0 && cy < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod file;
mod machine;
mod ports;
mod table;

pub use cache::{CacheLevel, InclusionPolicy, Scope, WritePolicy};
pub use file::{format_machine, parse_machine, MachineFileError, MachineFileErrorKind};
pub use machine::{CalibrationProvenance, Machine, MachineKind, MeasurementProvenance};
pub use ports::{PortModel, SimdIsa};
pub use table::machine_table;

/// Number of bytes in the cache lines used by every built-in model.
///
/// All x86 machines covered by the paper use 64-byte lines; keeping the value
/// as a named constant avoids magic numbers in dependent crates.
pub const LINE_BYTES: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_models_are_self_consistent() {
        for m in [Machine::cascade_lake(), Machine::rome(), Machine::host()] {
            m.validate().unwrap();
        }
    }
}
