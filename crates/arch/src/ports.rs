//! In-core execution-resource model.

use serde::{Deserialize, Serialize};

/// The widest SIMD instruction set the model assumes the kernels use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimdIsa {
    /// 128-bit SSE (2 doubles per vector).
    Sse,
    /// 256-bit AVX/AVX2 (4 doubles per vector) — AMD Rome.
    Avx2,
    /// 512-bit AVX-512 (8 doubles per vector) — Cascade Lake.
    Avx512,
}

impl SimdIsa {
    /// Number of `f64` lanes per SIMD register.
    #[must_use]
    pub fn lanes_f64(&self) -> usize {
        match self {
            SimdIsa::Sse => 2,
            SimdIsa::Avx2 => 4,
            SimdIsa::Avx512 => 8,
        }
    }

    /// Register width in bytes.
    #[must_use]
    pub fn width_bytes(&self) -> usize {
        self.lanes_f64() * 8
    }
}

/// Throughput model of the out-of-order core, reduced to the resources that
/// matter for streaming stencil loops.
///
/// The in-core part of the ECM model ("T_OL" / "T_nOL") divides the number of
/// µops of each class in one unit of work by the corresponding issue width to
/// obtain cycle counts; the critical path is the maximum over classes, with
/// loads/stores conventionally forming the non-overlapping part on Intel
/// cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortModel {
    /// SIMD ISA used for vectorised kernels.
    pub simd: SimdIsa,
    /// Ports that can execute an FMA (also counts for plain ADD/MUL).
    pub fma_ports: usize,
    /// Additional ports that can execute ADD/SUB but not FMA/MUL
    /// (0 on the machines modelled here; kept for generality).
    pub extra_add_ports: usize,
    /// SIMD load issue width: how many full-width loads retire per cycle.
    pub load_ports: f64,
    /// SIMD store issue width: how many full-width stores retire per cycle.
    pub store_ports: f64,
    /// Penalty factor applied when the vector width exceeds the native
    /// datapath (AMD Rome executes one 256-bit op per port and splits
    /// nothing; pre-Zen2 would use 2.0).
    pub datapath_split: f64,
}

impl PortModel {
    /// Cycles to execute the arithmetic of `n_fma` FMA, `n_add` ADD/SUB and
    /// `n_mul` MUL vector instructions, assuming perfect scheduling.
    ///
    /// ADD and MUL compete with FMA for the same ports on the modelled
    /// machines; the extra ADD ports (if any) absorb part of the ADD stream.
    #[must_use]
    pub fn arith_cycles(&self, n_fma: f64, n_add: f64, n_mul: f64) -> f64 {
        let fma_like = n_fma + n_mul;
        let total_ports = self.fma_ports as f64 + self.extra_add_ports as f64;
        // Adds can go anywhere; FMA/MUL only to FMA ports. Lower bound:
        let on_fma_ports = fma_like / self.fma_ports as f64;
        let balanced = (fma_like + n_add) / total_ports;
        on_fma_ports.max(balanced) * self.datapath_split
    }

    /// Cycles to issue `n_load` full-width loads and `n_store` full-width
    /// stores.
    #[must_use]
    pub fn mem_cycles(&self, n_load: f64, n_store: f64) -> f64 {
        let l = n_load / self.load_ports;
        let s = n_store / self.store_ports;
        // Loads and stores share AGUs imperfectly; the simple ECM practice
        // is to sum the port-normalised counts when they exceed the combined
        // issue width, else take the max. We use the conservative max of the
        // two formulations' lower bounds: the larger of (max(l, s)) and the
        // combined-issue bound.
        let combined = (n_load + n_store) / (self.load_ports + self.store_ports);
        l.max(s).max(combined) * self.datapath_split
    }

    /// Peak double-precision FLOP/cycle/core (2 flops per FMA lane).
    #[must_use]
    pub fn peak_flops_per_cycle(&self) -> f64 {
        2.0 * self.fma_ports as f64 * self.simd.lanes_f64() as f64 / self.datapath_split
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clx_ports() -> PortModel {
        PortModel {
            simd: SimdIsa::Avx512,
            fma_ports: 2,
            extra_add_ports: 0,
            load_ports: 2.0,
            store_ports: 1.0,
            datapath_split: 1.0,
        }
    }

    #[test]
    fn lanes() {
        assert_eq!(SimdIsa::Sse.lanes_f64(), 2);
        assert_eq!(SimdIsa::Avx2.lanes_f64(), 4);
        assert_eq!(SimdIsa::Avx512.lanes_f64(), 8);
        assert_eq!(SimdIsa::Avx512.width_bytes(), 64);
    }

    #[test]
    fn peak_flops_clx() {
        // 2 FMA ports x 8 lanes x 2 flops = 32 DP flop/cy.
        assert!((clx_ports().peak_flops_per_cycle() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn arith_cycles_fma_bound() {
        // 4 FMAs on 2 ports -> 2 cycles.
        assert!((clx_ports().arith_cycles(4.0, 0.0, 0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mem_cycles_store_bound() {
        let p = clx_ports();
        // 2 loads + 2 stores: stores bound at 2 cycles; combined = 4/3.
        assert!((p.mem_cycles(2.0, 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mem_cycles_combined_bound() {
        let p = clx_ports();
        // 6 loads, 0 stores: 3 cycles from load ports.
        assert!((p.mem_cycles(6.0, 0.0) - 3.0).abs() < 1e-12);
    }
}
