//! Whole-machine descriptors and the built-in models.

use serde::{Deserialize, Serialize};

use crate::cache::{CacheLevel, InclusionPolicy, Scope, WritePolicy};
use crate::ports::{PortModel, SimdIsa};

/// Identifies one of the built-in machine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// Intel Xeon Gold 6248 "Cascade Lake" (paper's CLX testbed).
    CascadeLake,
    /// AMD EPYC 7742 "Rome" (paper's ROME testbed).
    Rome,
    /// The machine this reproduction runs on (used for native timing).
    Host,
    /// A user-defined model.
    Custom,
}

/// One measured quantity backing a calibrated machine model: the accepted
/// value plus the robust-trial evidence behind it (sample counts, the
/// confidence interval spanned by the kept samples, and how many samples
/// the MAD filter rejected as outliers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementProvenance {
    /// Stable probe name (e.g. `fma_gflops`, `mem_gbs`).
    pub name: String,
    /// Unit of `value` (`gflops`, `gbs`, `cycles`).
    pub unit: String,
    /// The accepted estimate (median of the kept samples, or the builtin
    /// fallback when every sample failed — then `samples` is 0).
    pub value: f64,
    /// Valid samples the estimate rests on.
    pub samples: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
    /// Lower bound of the kept-sample spread.
    pub ci_low: f64,
    /// Upper bound of the kept-sample spread.
    pub ci_high: f64,
}

impl MeasurementProvenance {
    /// Validates one measurement record.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency: empty name,
    /// non-finite or non-positive value, or an inverted confidence
    /// interval.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("measurement with an empty name".into());
        }
        if !self.value.is_finite() || self.value <= 0.0 {
            return Err(format!(
                "measurement '{}' value must be positive",
                self.name
            ));
        }
        if !self.ci_low.is_finite() || !self.ci_high.is_finite() || self.ci_low > self.ci_high {
            return Err(format!(
                "measurement '{}' confidence interval is inverted",
                self.name
            ));
        }
        Ok(())
    }
}

/// How a calibrated machine model came to be: the code revision and seed
/// that produced it, when it ran, and one [`MeasurementProvenance`] per
/// micro-benchmark probe. Carried on [`Machine::calibration`] and round-
/// tripped through the machine-file format; models without it (all
/// builtins and hand-written files) simply leave the field `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationProvenance {
    /// Code revision (crate version) of the calibrator.
    pub rev: String,
    /// Seed of the calibration run (fault plan + synthetic streams).
    pub seed: u64,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// One record per probe, in probe order.
    pub measurements: Vec<MeasurementProvenance>,
}

impl CalibrationProvenance {
    /// Validates the provenance block.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency: no measurements,
    /// a duplicate probe name, or a bad individual record.
    pub fn validate(&self) -> Result<(), String> {
        if self.measurements.is_empty() {
            return Err("calibration without measurements".into());
        }
        for (i, m) in self.measurements.iter().enumerate() {
            m.validate()?;
            if self.measurements[..i].iter().any(|o| o.name == m.name) {
                return Err(format!("duplicate measurement '{}'", m.name));
            }
        }
        Ok(())
    }

    /// Samples rejected as outliers, summed over all probes.
    #[must_use]
    pub fn rejected_total(&self) -> usize {
        self.measurements.iter().map(|m| m.rejected).sum()
    }

    /// Valid samples, summed over all probes.
    #[must_use]
    pub fn samples_total(&self) -> usize {
        self.measurements.iter().map(|m| m.samples).sum()
    }
}

/// A complete machine model: topology, cache hierarchy, in-core resources
/// and memory interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Model name for reports.
    pub name: String,
    /// Which built-in (or custom) model this is.
    pub kind: MachineKind,
    /// Nominal (AVX base) clock in GHz; cycle counts are converted to time
    /// with this frequency.
    pub freq_ghz: f64,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Number of sockets (the evaluation uses one socket at a time).
    pub sockets: usize,
    /// Cache levels ordered from closest to the core (L1) outward.
    pub caches: Vec<CacheLevel>,
    /// In-core execution resources.
    pub ports: PortModel,
    /// Sustained memory bandwidth of a full socket, GB/s.
    pub mem_bw_gbs: f64,
    /// Memory bandwidth achievable by a single core, GB/s (limits the
    /// single-core ECM memory term; below the socket limit on all modern
    /// server CPUs).
    pub mem_bw_single_core_gbs: f64,
    /// Main-memory access latency in core cycles (simulator only).
    pub mem_latency_cycles: f64,
    /// Measurement provenance when this model was produced by
    /// `yasksite calibrate`; `None` for builtins and hand-written files.
    #[serde(default)]
    pub calibration: Option<CalibrationProvenance>,
}

impl Machine {
    /// Intel Xeon Gold 6248 ("Cascade Lake", CLX): 20 cores/socket,
    /// 2.5 GHz AVX-512 base clock, 32 KiB L1, 1 MiB private L2, 27.5 MiB
    /// shared victim L3, ~115 GB/s socket bandwidth.
    #[must_use]
    pub fn cascade_lake() -> Self {
        Machine {
            name: "Intel Cascade Lake (Xeon Gold 6248)".into(),
            kind: MachineKind::CascadeLake,
            freq_ghz: 2.5,
            cores_per_socket: 20,
            sockets: 2,
            caches: vec![
                CacheLevel {
                    name: "L1".into(),
                    size_bytes: 32 * 1024,
                    assoc: 8,
                    line_bytes: 64,
                    // Two 64-byte loads per cycle from L1 -> register;
                    // L1<->L2 sustains one line per cycle.
                    bytes_per_cycle: 64.0,
                    latency_cycles: 4.0,
                    inclusion: InclusionPolicy::Inclusive,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope: Scope::PerCore,
                },
                CacheLevel {
                    name: "L2".into(),
                    size_bytes: 1024 * 1024,
                    assoc: 16,
                    line_bytes: 64,
                    bytes_per_cycle: 64.0,
                    latency_cycles: 14.0,
                    inclusion: InclusionPolicy::Inclusive,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope: Scope::PerCore,
                },
                CacheLevel {
                    name: "L3".into(),
                    // 27.5 MiB shared in hardware; modelled as one 28 MiB
                    // 14-way cache so the set count stays a power of two
                    // (required by the simulator's index hashing).
                    size_bytes: 28 * 1024 * 1024,
                    assoc: 14,
                    line_bytes: 64,
                    bytes_per_cycle: 16.0,
                    latency_cycles: 60.0,
                    inclusion: InclusionPolicy::Victim,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope: Scope::PerSocket,
                },
            ],
            ports: PortModel {
                simd: SimdIsa::Avx512,
                fma_ports: 2,
                extra_add_ports: 0,
                load_ports: 2.0,
                store_ports: 1.0,
                datapath_split: 1.0,
            },
            mem_bw_gbs: 115.0,
            mem_bw_single_core_gbs: 14.0,
            mem_latency_cycles: 220.0,
            calibration: None,
        }
    }

    /// AMD EPYC 7742 ("Rome"): 64 cores/socket at 2.25 GHz, 32 KiB L1,
    /// 512 KiB private L2, 16 MiB victim L3 per 4-core CCX, ~190 GB/s
    /// socket bandwidth, AVX2 (256-bit) datapath.
    #[must_use]
    pub fn rome() -> Self {
        Machine {
            name: "AMD Rome (EPYC 7742)".into(),
            kind: MachineKind::Rome,
            freq_ghz: 2.25,
            cores_per_socket: 64,
            sockets: 2,
            caches: vec![
                CacheLevel {
                    name: "L1".into(),
                    size_bytes: 32 * 1024,
                    assoc: 8,
                    line_bytes: 64,
                    bytes_per_cycle: 64.0,
                    latency_cycles: 4.0,
                    inclusion: InclusionPolicy::Inclusive,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope: Scope::PerCore,
                },
                CacheLevel {
                    name: "L2".into(),
                    size_bytes: 512 * 1024,
                    assoc: 8,
                    line_bytes: 64,
                    bytes_per_cycle: 32.0,
                    latency_cycles: 12.0,
                    inclusion: InclusionPolicy::Inclusive,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope: Scope::PerCore,
                },
                CacheLevel {
                    name: "L3".into(),
                    size_bytes: 16 * 1024 * 1024,
                    assoc: 16,
                    line_bytes: 64,
                    bytes_per_cycle: 32.0,
                    latency_cycles: 40.0,
                    inclusion: InclusionPolicy::Victim,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope: Scope::PerCoreGroup(4),
                },
            ],
            ports: PortModel {
                simd: SimdIsa::Avx2,
                fma_ports: 2,
                extra_add_ports: 0,
                load_ports: 2.0,
                store_ports: 1.0,
                datapath_split: 1.0,
            },
            mem_bw_gbs: 190.0,
            mem_bw_single_core_gbs: 22.0,
            mem_latency_cycles: 250.0,
            calibration: None,
        }
    }

    /// A model of the single-vCPU AVX-512 host used for native timing runs
    /// in this reproduction (Sapphire-Rapids-class virtual CPU).
    #[must_use]
    pub fn host() -> Self {
        let mut m = Machine::cascade_lake();
        m.name = "Host vCPU (Sapphire-Rapids-class)".into();
        m.kind = MachineKind::Host;
        m.freq_ghz = 2.7;
        m.cores_per_socket = 1;
        m.sockets = 1;
        m.caches[0].size_bytes = 32 * 1024; // keep power-of-two sets
        m.caches[1].size_bytes = 2 * 1024 * 1024;
        m.caches[2].size_bytes = 64 * 1024 * 1024;
        m.caches[2].assoc = 16;
        m.caches[2].scope = Scope::PerSocket;
        m.mem_bw_gbs = 20.0;
        m.mem_bw_single_core_gbs = 20.0;
        m
    }

    /// Look up a built-in model by its short name (`"clx"`, `"rome"`,
    /// `"host"`); used by the experiment binaries' CLI.
    #[must_use]
    pub fn by_short_name(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "clx" | "cascadelake" | "cascade_lake" => Some(Self::cascade_lake()),
            "rome" | "zen2" => Some(Self::rome()),
            "host" => Some(Self::host()),
            _ => None,
        }
    }

    /// Short tag for file names and table rows.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self.kind {
            MachineKind::CascadeLake => "CLX",
            MachineKind::Rome => "ROME",
            MachineKind::Host => "HOST",
            MachineKind::Custom => "CUSTOM",
        }
    }

    /// Number of `f64` SIMD lanes of the machine's vector ISA.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.ports.simd.lanes_f64()
    }

    /// Cache line length (identical across levels after validation).
    #[must_use]
    pub fn line_bytes(&self) -> usize {
        self.caches
            .first()
            .map_or(crate::LINE_BYTES, |c| c.line_bytes)
    }

    /// Cycles to move one cache line between `caches[level]` and the level
    /// above it (registers for `level == 0`).
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    #[must_use]
    pub fn cycles_per_line(&self, level: usize) -> f64 {
        self.caches[level].cycles_per_line()
    }

    /// Cycles to move one cache line between the last cache level and main
    /// memory, for a single core (bounded by the single-core bandwidth).
    #[must_use]
    pub fn mem_cycles_per_line(&self) -> f64 {
        self.line_bytes() as f64 * self.freq_ghz / self.mem_bw_single_core_gbs
    }

    /// Cycles per cache line of *socket-aggregate* memory traffic when all
    /// `n` cores stream together (bounded by the saturated bandwidth).
    #[must_use]
    pub fn mem_cycles_per_line_saturated(&self) -> f64 {
        self.line_bytes() as f64 * self.freq_ghz / self.mem_bw_gbs
    }

    /// Peak double-precision GFLOP/s of one core.
    #[must_use]
    pub fn peak_gflops_core(&self) -> f64 {
        self.ports.peak_flops_per_cycle() * self.freq_ghz
    }

    /// Validates the whole model.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency: bad cache geometry,
    /// mismatched line sizes, non-monotone capacities, or nonsensical
    /// bandwidths/frequencies.
    pub fn validate(&self) -> Result<(), String> {
        if self.freq_ghz <= 0.0 || self.freq_ghz.is_nan() {
            return Err("frequency must be positive".into());
        }
        if self.cores_per_socket == 0 || self.sockets == 0 {
            return Err("topology must be non-empty".into());
        }
        if self.caches.is_empty() {
            return Err("at least one cache level required".into());
        }
        for c in &self.caches {
            c.validate()?;
        }
        let line = self.caches[0].line_bytes;
        for w in self.caches.windows(2) {
            if w[1].line_bytes != line {
                return Err("all cache levels must share one line size".into());
            }
            let cap0 =
                w[0].size_bytes * self.cores_per_socket / w[0].scope.sharers(self.cores_per_socket);
            let cap1 =
                w[1].size_bytes * self.cores_per_socket / w[1].scope.sharers(self.cores_per_socket);
            if cap1 < cap0 {
                return Err(format!(
                    "aggregate capacity of {} below {}",
                    w[1].name, w[0].name
                ));
            }
        }
        if self.mem_bw_gbs <= 0.0 || self.mem_bw_single_core_gbs <= 0.0 {
            return Err("memory bandwidths must be positive".into());
        }
        if self.mem_bw_single_core_gbs > self.mem_bw_gbs {
            return Err("single-core bandwidth cannot exceed socket bandwidth".into());
        }
        if let Some(c) = &self.calibration {
            c.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clx_derived_quantities() {
        let m = Machine::cascade_lake();
        assert_eq!(m.lanes(), 8);
        assert_eq!(m.line_bytes(), 64);
        // L1<->L2 at 64 B/cy: one cycle per line.
        assert!((m.cycles_per_line(1) - 1.0).abs() < 1e-12);
        // 64 B * 2.5 GHz / 14 GB/s = ~11.43 cy/line single-core.
        assert!((m.mem_cycles_per_line() - 64.0 * 2.5 / 14.0).abs() < 1e-9);
        // Peak: 32 flop/cy * 2.5 GHz = 80 GF/s.
        assert!((m.peak_gflops_core() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn rome_topology() {
        let m = Machine::rome();
        assert_eq!(m.cores_per_socket, 64);
        assert_eq!(m.caches[2].scope.sharers(m.cores_per_socket), 4);
        assert_eq!(m.lanes(), 4);
    }

    #[test]
    fn lookup_by_name() {
        assert!(Machine::by_short_name("clx").is_some());
        assert!(Machine::by_short_name("ROME").is_some());
        assert!(Machine::by_short_name("host").is_some());
        assert!(Machine::by_short_name("m1").is_none());
    }

    #[test]
    fn validate_rejects_inverted_capacities() {
        let mut m = Machine::cascade_lake();
        m.caches[1].size_bytes = 16 * 1024;
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_rejects_bw_inversion() {
        let mut m = Machine::rome();
        m.mem_bw_single_core_gbs = m.mem_bw_gbs * 2.0;
        assert!(m.validate().is_err());
    }

    fn sample_calibration() -> CalibrationProvenance {
        CalibrationProvenance {
            rev: "0.1.0".into(),
            seed: 42,
            date: "2026-08-09".into(),
            measurements: vec![MeasurementProvenance {
                name: "mem_gbs".into(),
                unit: "gbs".into(),
                value: 20.0,
                samples: 5,
                rejected: 1,
                ci_low: 19.0,
                ci_high: 21.0,
            }],
        }
    }

    #[test]
    fn calibration_provenance_validates() {
        let mut m = Machine::host();
        m.calibration = Some(sample_calibration());
        m.validate().unwrap();
        // Inverted CI fails the whole model.
        m.calibration.as_mut().unwrap().measurements[0].ci_low = 30.0;
        assert!(m.validate().unwrap_err().contains("inverted"));
        // Duplicate probe names are rejected.
        let mut c = sample_calibration();
        c.measurements.push(c.measurements[0].clone());
        assert!(c.validate().unwrap_err().contains("duplicate"));
        // Empty blocks carry no evidence.
        c.measurements.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn saturated_cycles_below_single_core() {
        for m in [Machine::cascade_lake(), Machine::rome()] {
            assert!(m.mem_cycles_per_line_saturated() < m.mem_cycles_per_line());
        }
    }
}
