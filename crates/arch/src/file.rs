//! Plain-text machine description files.
//!
//! YaskSite users describe new CPUs in small config files; this module
//! provides a minimal `key = value` format (one property per line, `#`
//! comments) so custom machines can be loaded by the CLI without pulling
//! in a serialisation format crate:
//!
//! ```text
//! name = My CPU
//! freq_ghz = 3.0
//! cores_per_socket = 24
//! simd = avx512
//! mem_bw_gbs = 150
//! mem_bw_single_core_gbs = 18
//! cache = L1 32768 8 64 inclusive per_core
//! cache = L2 1048576 16 32 inclusive per_core
//! cache = L3 33554432 16 16 victim per_socket
//! ```
//!
//! Cache lines are `name size_bytes assoc bytes_per_cycle policy scope`;
//! `scope` is `per_core`, `per_socket` or `ccx:<n>`.
//!
//! Calibrated models (emitted by `yasksite calibrate`) additionally carry
//! a provenance block — a `calibration = <rev> <seed> <date>` header
//! followed by one `measurement = <name> <unit> <value> <samples>
//! <rejected> <ci_low> <ci_high>` line per probe. Files without the block
//! parse exactly as before.

use std::fmt;

use crate::cache::{CacheLevel, InclusionPolicy, Scope, WritePolicy};
use crate::machine::{CalibrationProvenance, Machine, MachineKind, MeasurementProvenance};
use crate::ports::{PortModel, SimdIsa};

/// What kind of problem a machine file has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineFileErrorKind {
    /// A line is not of the `key = value` shape.
    Syntax {
        /// What the parser expected instead.
        detail: String,
    },
    /// A property key the format does not define.
    UnknownKey {
        /// The offending key.
        key: String,
    },
    /// A value that fails to parse or names an unknown variant.
    BadValue {
        /// What is wrong with the value.
        detail: String,
    },
    /// The file parsed, but the assembled model fails
    /// [`Machine::validate`].
    InvalidModel {
        /// The first inconsistency `validate` found.
        detail: String,
    },
}

/// A machine-file parse failure: the offending line (1-based, `None` for
/// whole-model validation failures) plus the kind of problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineFileError {
    /// 1-based line number the error was detected on, when line-local.
    pub line: Option<usize>,
    /// The category and detail of the failure.
    pub kind: MachineFileErrorKind,
}

impl MachineFileError {
    fn at(line: usize, kind: MachineFileErrorKind) -> Self {
        MachineFileError {
            line: Some(line),
            kind,
        }
    }
}

impl fmt::Display for MachineFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.kind {
            MachineFileErrorKind::Syntax { detail } => write!(f, "{detail}"),
            MachineFileErrorKind::UnknownKey { key } => write!(f, "unknown key '{key}'"),
            MachineFileErrorKind::BadValue { detail } => write!(f, "{detail}"),
            MachineFileErrorKind::InvalidModel { detail } => {
                write!(f, "invalid machine model: {detail}")
            }
        }
    }
}

impl std::error::Error for MachineFileError {}

/// Parses a machine description in the documented `key = value` format.
///
/// Unspecified in-core parameters default to the common 2-FMA / 2-load /
/// 1-store server-core configuration.
///
/// # Errors
/// Returns a line-tagged [`MachineFileError`] for syntax errors, unknown
/// keys and bad values, and a line-less one for a model that fails
/// [`Machine::validate`].
pub fn parse_machine(text: &str) -> Result<Machine, MachineFileError> {
    let mut m = Machine {
        name: "custom".into(),
        kind: MachineKind::Custom,
        freq_ghz: 0.0,
        cores_per_socket: 0,
        sockets: 1,
        caches: Vec::new(),
        ports: PortModel {
            simd: SimdIsa::Avx2,
            fma_ports: 2,
            extra_add_ports: 0,
            load_ports: 2.0,
            store_ports: 1.0,
            datapath_split: 1.0,
        },
        mem_bw_gbs: 0.0,
        mem_bw_single_core_gbs: 0.0,
        mem_latency_cycles: 200.0,
        calibration: None,
    };
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |detail: String| {
            MachineFileError::at(lineno + 1, MachineFileErrorKind::BadValue { detail })
        };
        let (key, value) = line.split_once('=').ok_or_else(|| {
            MachineFileError::at(
                lineno + 1,
                MachineFileErrorKind::Syntax {
                    detail: "expected 'key = value'".into(),
                },
            )
        })?;
        let (key, value) = (key.trim(), value.trim());
        let parse_f64 = |v: &str| -> Result<f64, MachineFileError> {
            v.parse().map_err(|_| bad(format!("'{v}' is not a number")))
        };
        match key {
            "name" => m.name = value.to_string(),
            "kind" => {
                m.kind = match value.to_ascii_lowercase().as_str() {
                    "cascade_lake" | "clx" => MachineKind::CascadeLake,
                    "rome" => MachineKind::Rome,
                    "host" => MachineKind::Host,
                    "custom" => MachineKind::Custom,
                    other => return Err(bad(format!("unknown kind '{other}'"))),
                };
            }
            "freq_ghz" => m.freq_ghz = parse_f64(value)?,
            "cores_per_socket" => {
                m.cores_per_socket = value
                    .parse()
                    .map_err(|_| bad(format!("'{value}' is not a count")))?;
            }
            "sockets" => {
                m.sockets = value
                    .parse()
                    .map_err(|_| bad(format!("'{value}' is not a count")))?;
            }
            "simd" => {
                m.ports.simd = match value.to_ascii_lowercase().as_str() {
                    "sse" => SimdIsa::Sse,
                    "avx2" | "avx" => SimdIsa::Avx2,
                    "avx512" => SimdIsa::Avx512,
                    other => return Err(bad(format!("unknown SIMD '{other}'"))),
                };
            }
            "fma_ports" => {
                m.ports.fma_ports = value
                    .parse()
                    .map_err(|_| bad(format!("'{value}' is not a count")))?;
            }
            "load_ports" => m.ports.load_ports = parse_f64(value)?,
            "store_ports" => m.ports.store_ports = parse_f64(value)?,
            "mem_bw_gbs" => m.mem_bw_gbs = parse_f64(value)?,
            "mem_bw_single_core_gbs" => m.mem_bw_single_core_gbs = parse_f64(value)?,
            "mem_latency_cycles" => m.mem_latency_cycles = parse_f64(value)?,
            "cache" => {
                let f: Vec<&str> = value.split_whitespace().collect();
                if f.len() != 6 {
                    return Err(bad(
                        "cache needs: name size assoc bytes_per_cycle policy scope".into(),
                    ));
                }
                let parse_usize = |v: &str| -> Result<usize, MachineFileError> {
                    v.parse().map_err(|_| bad(format!("'{v}' is not a count")))
                };
                let inclusion = match f[4] {
                    "inclusive" => InclusionPolicy::Inclusive,
                    "victim" => InclusionPolicy::Victim,
                    other => return Err(bad(format!("unknown policy '{other}'"))),
                };
                let scope = if f[5] == "per_core" {
                    Scope::PerCore
                } else if f[5] == "per_socket" {
                    Scope::PerSocket
                } else if let Some(n) = f[5].strip_prefix("ccx:") {
                    Scope::PerCoreGroup(parse_usize(n)?)
                } else {
                    return Err(bad(format!("unknown scope '{}'", f[5])));
                };
                m.caches.push(CacheLevel {
                    name: f[0].to_string(),
                    size_bytes: parse_usize(f[1])?,
                    assoc: parse_usize(f[2])?,
                    line_bytes: 64,
                    bytes_per_cycle: parse_f64(f[3])?,
                    latency_cycles: 10.0,
                    inclusion,
                    write_policy: WritePolicy::WriteBackAllocate,
                    scope,
                });
            }
            "calibration" => {
                let f: Vec<&str> = value.split_whitespace().collect();
                if f.len() != 3 {
                    return Err(bad("calibration needs: rev seed date".into()));
                }
                let seed: u64 = f[1]
                    .parse()
                    .map_err(|_| bad(format!("'{}' is not a seed", f[1])))?;
                m.calibration = Some(CalibrationProvenance {
                    rev: f[0].to_string(),
                    seed,
                    date: f[2].to_string(),
                    measurements: Vec::new(),
                });
            }
            "measurement" => {
                let f: Vec<&str> = value.split_whitespace().collect();
                if f.len() != 7 {
                    return Err(bad(
                        "measurement needs: name unit value samples rejected ci_low ci_high".into(),
                    ));
                }
                let parse_usize = |v: &str| -> Result<usize, MachineFileError> {
                    v.parse().map_err(|_| bad(format!("'{v}' is not a count")))
                };
                let record = MeasurementProvenance {
                    name: f[0].to_string(),
                    unit: f[1].to_string(),
                    value: parse_f64(f[2])?,
                    samples: parse_usize(f[3])?,
                    rejected: parse_usize(f[4])?,
                    ci_low: parse_f64(f[5])?,
                    ci_high: parse_f64(f[6])?,
                };
                match &mut m.calibration {
                    Some(c) => c.measurements.push(record),
                    None => {
                        return Err(bad("measurement before the calibration header line".into()))
                    }
                }
            }
            other => {
                return Err(MachineFileError::at(
                    lineno + 1,
                    MachineFileErrorKind::UnknownKey { key: other.into() },
                ))
            }
        }
    }
    m.validate().map_err(|detail| MachineFileError {
        line: None,
        kind: MachineFileErrorKind::InvalidModel { detail },
    })?;
    Ok(m)
}

/// Writes a machine back into the parseable file format.
#[must_use]
pub fn format_machine(m: &Machine) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "name = {}", m.name);
    let kind = match m.kind {
        MachineKind::CascadeLake => "cascade_lake",
        MachineKind::Rome => "rome",
        MachineKind::Host => "host",
        MachineKind::Custom => "custom",
    };
    let _ = writeln!(s, "kind = {kind}");
    let _ = writeln!(s, "freq_ghz = {}", m.freq_ghz);
    let _ = writeln!(s, "cores_per_socket = {}", m.cores_per_socket);
    let _ = writeln!(s, "sockets = {}", m.sockets);
    let simd = match m.ports.simd {
        SimdIsa::Sse => "sse",
        SimdIsa::Avx2 => "avx2",
        SimdIsa::Avx512 => "avx512",
    };
    let _ = writeln!(s, "simd = {simd}");
    let _ = writeln!(s, "fma_ports = {}", m.ports.fma_ports);
    let _ = writeln!(s, "load_ports = {}", m.ports.load_ports);
    let _ = writeln!(s, "store_ports = {}", m.ports.store_ports);
    let _ = writeln!(s, "mem_bw_gbs = {}", m.mem_bw_gbs);
    let _ = writeln!(s, "mem_bw_single_core_gbs = {}", m.mem_bw_single_core_gbs);
    let _ = writeln!(s, "mem_latency_cycles = {}", m.mem_latency_cycles);
    for c in &m.caches {
        let scope = match c.scope {
            Scope::PerCore => "per_core".to_string(),
            Scope::PerSocket => "per_socket".to_string(),
            Scope::PerCoreGroup(n) => format!("ccx:{n}"),
        };
        let policy = match c.inclusion {
            InclusionPolicy::Inclusive => "inclusive",
            InclusionPolicy::Victim => "victim",
        };
        let _ = writeln!(
            s,
            "cache = {} {} {} {} {policy} {scope}",
            c.name, c.size_bytes, c.assoc, c.bytes_per_cycle
        );
    }
    if let Some(c) = &m.calibration {
        let _ = writeln!(s, "calibration = {} {} {}", c.rev, c.seed, c.date);
        for p in &c.measurements {
            let _ = writeln!(
                s,
                "measurement = {} {} {} {} {} {} {}",
                p.name, p.unit, p.value, p.samples, p.rejected, p.ci_low, p.ci_high
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_builtins() {
        for m in [Machine::cascade_lake(), Machine::rome(), Machine::host()] {
            let text = format_machine(&m);
            let back = parse_machine(&text).unwrap();
            assert_eq!(back.cores_per_socket, m.cores_per_socket);
            assert_eq!(back.caches.len(), m.caches.len());
            assert_eq!(back.ports.simd, m.ports.simd);
            assert!((back.mem_bw_gbs - m.mem_bw_gbs).abs() < 1e-12);
            for (a, b) in back.caches.iter().zip(&m.caches) {
                assert_eq!(a.size_bytes, b.size_bytes);
                assert_eq!(a.scope, b.scope);
                assert_eq!(a.inclusion, b.inclusion);
            }
        }
    }

    #[test]
    fn parses_documented_example() {
        let text = "\
# a comment
name = My CPU
freq_ghz = 3.0
cores_per_socket = 24
simd = avx512
mem_bw_gbs = 150
mem_bw_single_core_gbs = 18
cache = L1 32768 8 64 inclusive per_core
cache = L2 1048576 16 32 inclusive per_core
cache = L3 33554432 16 16 victim per_socket
";
        let m = parse_machine(text).unwrap();
        assert_eq!(m.name, "My CPU");
        assert_eq!(m.cores_per_socket, 24);
        assert_eq!(m.lanes(), 8);
        assert_eq!(m.caches[2].num_sets(), 32768);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_machine("freq_ghz = fast\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.to_string().starts_with("line 1:"), "{err}");
        let err = parse_machine("name = x\nbogus_key = 1\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert_eq!(
            err.kind,
            MachineFileErrorKind::UnknownKey {
                key: "bogus_key".into()
            }
        );
        let err = parse_machine("cache = L1 32768 8\n").unwrap_err();
        assert!(err.to_string().contains("cache needs"), "{err}");
        let err = parse_machine("no equals sign here\n").unwrap_err();
        assert!(
            matches!(err.kind, MachineFileErrorKind::Syntax { .. }),
            "{err}"
        );
    }

    #[test]
    fn invalid_models_rejected_after_parse() {
        // Valid syntax, but no caches / zero frequency -> validate() fails.
        let err = parse_machine("name = x\n").unwrap_err();
        assert_eq!(err.line, None);
        assert!(
            matches!(err.kind, MachineFileErrorKind::InvalidModel { .. }),
            "{err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("frequency") || msg.contains("cache"), "{msg}");
    }

    #[test]
    fn machine_file_error_is_std_error() {
        let err = parse_machine("freq_ghz = fast\n").unwrap_err();
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.to_string().contains("not a number"));
    }

    #[test]
    fn kind_round_trips() {
        for m in [Machine::cascade_lake(), Machine::rome(), Machine::host()] {
            let back = parse_machine(&format_machine(&m)).unwrap();
            assert_eq!(back.kind, m.kind);
        }
        // Files without a kind key stay custom, as before.
        let err_free = "\
name = x
freq_ghz = 2.0
cores_per_socket = 1
mem_bw_gbs = 10
mem_bw_single_core_gbs = 10
cache = L1 32768 8 64 inclusive per_core
";
        assert_eq!(parse_machine(err_free).unwrap().kind, MachineKind::Custom);
        let err = parse_machine("kind = toaster\n").unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");
    }

    #[test]
    fn calibration_block_round_trips() {
        let mut m = Machine::host();
        m.calibration = Some(CalibrationProvenance {
            rev: "0.1.0".into(),
            seed: 7,
            date: "2026-08-09".into(),
            measurements: vec![
                MeasurementProvenance {
                    name: "fma_gflops".into(),
                    unit: "gflops".into(),
                    value: 38.5,
                    samples: 5,
                    rejected: 1,
                    ci_low: 37.0,
                    ci_high: 40.0,
                },
                MeasurementProvenance {
                    name: "mem_gbs".into(),
                    unit: "gbs".into(),
                    value: 19.25,
                    samples: 4,
                    rejected: 0,
                    ci_low: 18.5,
                    ci_high: 20.0,
                },
            ],
        });
        let text = format_machine(&m);
        assert!(text.contains("calibration = 0.1.0 7 2026-08-09"), "{text}");
        let back = parse_machine(&text).unwrap();
        assert_eq!(back.calibration, m.calibration);
        assert_eq!(back.kind, MachineKind::Host);
    }

    #[test]
    fn measurement_requires_calibration_header() {
        let err = parse_machine("measurement = a gbs 1 1 0 1 1\n").unwrap_err();
        assert!(
            err.to_string().contains("before the calibration header"),
            "{err}"
        );
        let err = parse_machine("calibration = rev nope 2026-08-09\n").unwrap_err();
        assert!(err.to_string().contains("not a seed"), "{err}");
        let err = parse_machine("calibration = rev\n").unwrap_err();
        assert!(err.to_string().contains("calibration needs"), "{err}");
    }

    #[test]
    fn ccx_scope_roundtrip() {
        let text = format_machine(&Machine::rome());
        assert!(text.contains("ccx:4"));
        let back = parse_machine(&text).unwrap();
        assert_eq!(back.caches[2].scope, Scope::PerCoreGroup(4));
    }
}
