//! Cache-level descriptors.

use serde::{Deserialize, Serialize};

/// How a cache level relates to the level above it (closer to the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InclusionPolicy {
    /// Every line in the upper level is also present here (e.g. Intel L3
    /// before Skylake, and the private L2s on most machines).
    Inclusive,
    /// Lines enter this level only when evicted from the level above
    /// (victim cache — Skylake/Cascade Lake L3, AMD Zen L3).
    Victim,
}

/// Write-handling policy of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Write-back with write-allocate: a store miss first reads the line
    /// (the allocate), and dirty lines are written downward on eviction.
    /// This is the policy of all caches modelled in the paper.
    WriteBackAllocate,
    /// Streaming/non-temporal stores: the line is written straight to the
    /// level below without an allocate read. Used when modelling
    /// non-temporal store variants of kernels.
    WriteThroughStreaming,
}

/// Which cores share one instance of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// One instance per core (private L1/L2).
    PerCore,
    /// One instance per group of `n` cores (AMD Rome: L3 per 4-core CCX).
    PerCoreGroup(usize),
    /// One instance per socket (Intel shared L3).
    PerSocket,
}

impl Scope {
    /// Number of cores sharing one instance, for a socket with
    /// `cores_per_socket` cores.
    #[must_use]
    pub fn sharers(&self, cores_per_socket: usize) -> usize {
        match *self {
            Scope::PerCore => 1,
            Scope::PerCoreGroup(n) => n,
            Scope::PerSocket => cores_per_socket,
        }
    }
}

/// One level of the cache hierarchy.
///
/// Bandwidth is expressed as the sustained number of bytes per core-clock
/// cycle that can move between this level and the level *above* it (closer to
/// the core). The ECM model converts this into "cycles per cache line".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Human-readable name ("L1", "L2", ...).
    pub name: String,
    /// Capacity of one instance in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line length in bytes (64 for every built-in model).
    pub line_bytes: usize,
    /// Sustained bandwidth to the level above, in bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Load-to-use latency in cycles (used by the simulator's latency
    /// accounting, not by the bandwidth-only ECM terms).
    pub latency_cycles: f64,
    /// Relationship to the level above.
    pub inclusion: InclusionPolicy,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Sharing scope.
    pub scope: Scope,
}

impl CacheLevel {
    /// Cycles needed to move one full line between this level and the level
    /// above it.
    ///
    /// ```
    /// use yasksite_arch::Machine;
    /// let l2 = &Machine::cascade_lake().caches[1];
    /// assert!((l2.cycles_per_line() - 64.0 / l2.bytes_per_cycle).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn cycles_per_line(&self) -> f64 {
        self.line_bytes as f64 / self.bytes_per_cycle
    }

    /// Number of sets in one instance.
    ///
    /// # Panics
    /// Panics if the geometry is inconsistent (checked by
    /// [`Machine::validate`](crate::Machine::validate)).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Validates the geometry: sizes must factor exactly into
    /// `sets * ways * line` and the set count must be a power of two
    /// (required for the simulator's index hashing).
    ///
    /// # Errors
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(format!("{}: line_bytes must be a power of two", self.name));
        }
        if self.assoc == 0 {
            return Err(format!("{}: associativity must be positive", self.name));
        }
        if !self.size_bytes.is_multiple_of(self.assoc * self.line_bytes) {
            return Err(format!(
                "{}: size {} is not sets*assoc*line",
                self.name, self.size_bytes
            ));
        }
        let sets = self.num_sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!(
                "{}: set count {sets} must be a power of two",
                self.name
            ));
        }
        if self.bytes_per_cycle <= 0.0 || self.bytes_per_cycle.is_nan() {
            return Err(format!("{}: bandwidth must be positive", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level() -> CacheLevel {
        CacheLevel {
            name: "L1".into(),
            size_bytes: 32 * 1024,
            assoc: 8,
            line_bytes: 64,
            bytes_per_cycle: 128.0,
            latency_cycles: 4.0,
            inclusion: InclusionPolicy::Inclusive,
            write_policy: WritePolicy::WriteBackAllocate,
            scope: Scope::PerCore,
        }
    }

    #[test]
    fn geometry() {
        let l = level();
        assert_eq!(l.num_sets(), 64);
        assert!(l.validate().is_ok());
        assert!((l.cycles_per_line() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        let mut l = level();
        l.size_bytes = 24 * 1024; // 48 sets
        assert!(l.validate().is_err());
    }

    #[test]
    fn rejects_zero_assoc() {
        let mut l = level();
        l.assoc = 0;
        assert!(l.validate().is_err());
    }

    #[test]
    fn rejects_unfactorable_size() {
        let mut l = level();
        l.size_bytes = 1000;
        assert!(l.validate().is_err());
    }

    #[test]
    fn scope_sharers() {
        assert_eq!(Scope::PerCore.sharers(20), 1);
        assert_eq!(Scope::PerCoreGroup(4).sharers(64), 4);
        assert_eq!(Scope::PerSocket.sharers(20), 20);
    }
}
