//! The `yasksite` command-line tool: predict, measure, tune and generate
//! stencil kernels against the built-in machine models. Run with no
//! arguments for usage.

use std::process::ExitCode;

use yasksite::cli::{
    machine_from_flags, params_from_flags, parse_flags, parse_triple, request_from_flags,
    serve_config_from_flags, stencil_by_name, telemetry_from_flags, top_options_from_flags,
    trials_from_flags, ErrorReport, TopOptions, USAGE,
};
use yasksite::telemetry::json::Json;
use yasksite::telemetry::Telemetry;
use yasksite::{
    calibrate, check_calibration, render_report, render_top, validate_prometheus_text,
    validate_status_json, CalibrateConfig, Provenance, SearchSpace, Solution,
};
use yasksite_arch::{format_machine, machine_table, parse_machine, Machine};
use yasksite_stencil::{paper_suite, stencil_table};

fn run(args: &[String], tel: &Telemetry) -> Result<(), String> {
    let (pos, flags) = parse_flags(args)?;
    let Some(cmd) = pos.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    match cmd.as_str() {
        "machines" => {
            println!(
                "{}",
                machine_table(&[Machine::cascade_lake(), Machine::rome(), Machine::host()])
            );
            Ok(())
        }
        "stencils" => {
            println!("{}", stencil_table(&paper_suite()));
            Ok(())
        }
        "report" => {
            let path = pos
                .get(1)
                .map(String::as_str)
                .or_else(|| flags.get("trace").map(String::as_str))
                .ok_or_else(|| {
                    "usage: yasksite report <trace.jsonl> [--baseline <trace.jsonl>]".to_string()
                })?;
            let trace = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read trace file '{path}': {e}"))?;
            let baseline = flags
                .get("baseline")
                .map(|b| {
                    std::fs::read_to_string(b)
                        .map_err(|e| format!("cannot read trace file '{b}': {e}"))
                })
                .transpose()?;
            print!("{}", render_report(&trace, baseline.as_deref())?);
            Ok(())
        }
        "serve" => {
            let (mut config, socket) = serve_config_from_flags(&flags)?;
            config.telemetry = tel.clone();
            install_signal_handlers();
            let stats = match socket {
                Some(path) => serve_on_socket(config, &path),
                None => yasksite::serve_stdin(config, yasksite::shutdown_flag()),
            }
            .map_err(|e| format!("serve failed: {e}"))?;
            // Stdout carries only JSON responses; the exit summary goes
            // to stderr.
            eprintln!(
                "serve: {} received, {} completed, {} overloaded, \
                 {} budget-rejected, {} degraded, {} persist errors",
                stats.received,
                stats.completed,
                stats.rejected_overload,
                stats.rejected_budget,
                stats.degraded,
                stats.persist_errors
            );
            Ok(())
        }
        "calibrate" => run_calibrate(&pos, &flags, tel),
        "top" => {
            let target = pos.get(1).map(String::as_str).ok_or_else(|| {
                "usage: yasksite top <socket|state-dir> [--once] [--check] \
                 [--interval SECS] [--format json|prom]"
                    .to_string()
            })?;
            let opts = top_options_from_flags(&flags)?;
            run_top(target, &opts)
        }
        "predict" | "measure" | "codegen" | "tune" => {
            let machine = machine_from_flags(&flags).map_err(|e| e.to_string())?;
            let sname = flags
                .get("stencil")
                .ok_or_else(|| "--stencil <name> is required".to_string())?;
            let stencil =
                stencil_by_name(sname).ok_or_else(|| format!("unknown stencil '{sname}'"))?;
            let domain = parse_triple(
                flags
                    .get("domain")
                    .ok_or_else(|| "--domain AxBxC is required".to_string())?,
            )?;
            let sol = Solution::new(stencil, domain, machine.clone());
            match cmd.as_str() {
                "predict" => {
                    let params = params_from_flags(&flags, domain, &machine)?;
                    let cores = params.threads;
                    let p = sol.predict(&params, cores);
                    println!("configuration: {params} on {}", machine.tag());
                    println!("ECM: {}", p.ecm.summary());
                    println!(
                        "prediction @ {cores} cores: {:.0} MLUP/s, {:.4} s/sweep{}",
                        p.mlups,
                        p.seconds_per_sweep,
                        if p.wavefront_effective {
                            " (wavefront active)"
                        } else {
                            ""
                        }
                    );
                }
                "measure" => {
                    let params = params_from_flags(&flags, domain, &machine)?;
                    let m = sol.measure(&params).map_err(|e| e.to_string())?;
                    println!(
                        "measured ({}): {:.0} MLUP/s, {:.4} s/sweep",
                        if m.simulated { "simulated" } else { "native" },
                        m.mlups,
                        m.seconds_per_sweep
                    );
                    if let Some(st) = m.stats {
                        println!(
                            "memory traffic: {:.1} MB read, {:.1} MB written",
                            st.mem_read_lines as f64 * 64.0 / 1e6,
                            st.mem_write_lines as f64 * 64.0 / 1e6
                        );
                    }
                }
                "codegen" => {
                    let params = params_from_flags(&flags, domain, &machine)?;
                    print!("{}", sol.codegen(&params).source);
                }
                "tune" => {
                    let req = request_from_flags(&flags)?.telemetry(tel.clone());
                    let space = SearchSpace::standard(sol.stencil(), domain, &machine);
                    let r = sol
                        .tune_space_with(&space, &req)
                        .map_err(|e| e.to_string())?;
                    println!("best: {}  ({:.0} MLUP/s)", r.best, r.best_score);
                    println!(
                        "tier: {} — {}{}",
                        r.tier,
                        r.tier_reason,
                        if r.tier_degraded() {
                            "  [degraded]"
                        } else {
                            ""
                        }
                    );
                    if matches!(r.best_provenance, Some(p) if p.is_fallback()) {
                        println!(
                            "warning: the winner rests on the analytic fallback \
                             (no successful measurement)"
                        );
                    }
                    println!("cost: {}", r.cost.summary());
                    if r.trials.trials > 0 {
                        println!("trials: {}", r.trials);
                    }
                    if !r.drift.is_empty() {
                        print!("{}", r.drift.render_table());
                    }
                    if let Some(prof) = &r.profile {
                        print!("{}", prof.render());
                    }
                    println!("top candidates:");
                    for (i, (p, s)) in r.ranked.iter().take(5).enumerate() {
                        let tag = match r.provenances.get(i) {
                            Some(pr) if pr.is_fallback() => "  [predicted fallback]",
                            Some(Provenance::Retried { .. }) => "  [retried]",
                            _ => "",
                        };
                        println!("  {p:<40} {s:>8.0} MLUP/s{tag}");
                    }
                    if flags.contains_key("metrics") {
                        if let Some(snap) = tel.metrics_snapshot() {
                            println!();
                            print!("{}", snap.render());
                        }
                        let spans = tel.span_report();
                        if !spans.is_empty() {
                            println!();
                            print!("{spans}");
                        }
                    }
                }
                _ => unreachable!(),
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// The `yasksite calibrate` command: measure the host into a calibrated
/// machine file, or (with `--check`) validate one that was emitted
/// earlier.
fn run_calibrate(
    pos: &[String],
    flags: &std::collections::HashMap<String, String>,
    tel: &Telemetry,
) -> Result<(), String> {
    if flags.contains_key("check") {
        let path = pos
            .get(1)
            .map(String::as_str)
            .ok_or_else(|| "usage: yasksite calibrate --check <machine-file>".to_string())?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read machine file '{path}': {e}"))?;
        let machine = parse_machine(&text).map_err(|e| e.to_string())?;
        let c = check_calibration(&machine)?;
        println!(
            "calibration ok: {} probes, {} samples, {} rejected outliers, \
             {} fallback probes",
            c.probes, c.samples, c.rejected, c.fallback_probes
        );
        return Ok(());
    }
    let seed = flags
        .get("seed")
        .map(|v| v.parse::<u64>().map_err(|_| format!("bad --seed '{v}'")))
        .transpose()?
        .unwrap_or(42);
    let (trial, budget) = trials_from_flags(flags)?;
    let mut cfg = CalibrateConfig::new(seed);
    // `trials_from_flags` defaults to the legacy single-shot protocol;
    // calibration wants the robust default unless the user asked
    // otherwise.
    if flags.contains_key("samples")
        || flags.contains_key("warmup")
        || flags.contains_key("retries")
    {
        cfg.trial = trial;
    }
    cfg.budget = budget;
    cfg.quick = flags.contains_key("quick");
    cfg.synthetic = flags.contains_key("synthetic");
    let out = calibrate(&cfg, tel).map_err(|e| e.to_string())?;
    let text = format_machine(&out.machine);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| format!("cannot write machine file '{path}': {e}"))?;
            println!("calibrated machine written to {path}");
            print!("{}", out.render_table());
            println!("cost: {}", out.cost.summary());
        }
        None => {
            // Stdout carries the machine file; the evidence goes to
            // stderr so the output stays pipeable.
            print!("{text}");
            eprint!("{}", out.render_table());
            eprintln!("cost: {}", out.cost.summary());
        }
    }
    if flags.contains_key("metrics") {
        if let Some(snap) = tel.metrics_snapshot() {
            println!();
            print!("{}", snap.render());
        }
    }
    Ok(())
}

/// Routes SIGTERM and SIGINT into the daemon's shutdown flag so `yasksite
/// serve` drains in-flight requests, snapshots its state and exits 0
/// instead of dying mid-write. The handler only stores an atomic — the
/// signal-safety minimum.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        yasksite::shutdown_flag().store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

#[cfg(unix)]
fn serve_on_socket(
    config: yasksite::ServeConfig,
    path: &std::path::Path,
) -> std::io::Result<yasksite::ServeStats> {
    yasksite::serve_unix(config, path, yasksite::shutdown_flag())
}

#[cfg(not(unix))]
fn serve_on_socket(
    _config: yasksite::ServeConfig,
    _path: &std::path::Path,
) -> std::io::Result<yasksite::ServeStats> {
    Err(std::io::Error::other(
        "--socket requires a Unix platform; use stdin mode instead",
    ))
}

/// Fetches one status response line: over the daemon's Unix socket when
/// `target` is a socket, or from `<state-dir>/status.json` when it is a
/// directory. The Prometheus exposition needs a live daemon — the status
/// file only carries the JSON snapshot.
fn fetch_status(target: &str, prometheus: bool) -> Result<String, String> {
    let path = std::path::Path::new(target);
    if path.is_dir() {
        if prometheus {
            return Err("--format prom needs a live socket, not a state dir".to_string());
        }
        let file = path.join("status.json");
        if !file.exists() {
            // A state dir without a snapshot is an expected state, not an
            // io accident: the daemon was never started against this dir,
            // or the dir predates status files.
            return Err(format!(
                "no status.json in state dir '{}' (daemon not started, or the \
                 state dir predates status snapshots)",
                path.display()
            ));
        }
        return std::fs::read_to_string(&file).map_err(|e| {
            format!(
                "cannot read '{}': {e} (is the daemon running?)",
                file.display()
            )
        });
    }
    fetch_status_from_socket(path, prometheus)
}

#[cfg(unix)]
fn fetch_status_from_socket(path: &std::path::Path, prometheus: bool) -> Result<String, String> {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let mut stream = UnixStream::connect(path)
        .map_err(|e| format!("cannot connect to '{}': {e}", path.display()))?;
    let request = if prometheus {
        "{\"id\":\"top\",\"op\":\"status\",\"format\":\"prom\"}\n"
    } else {
        "{\"id\":\"top\",\"op\":\"status\"}\n"
    };
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("cannot send status request: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read status response: {e}"))?;
    if line.trim().is_empty() {
        return Err("daemon closed the connection without answering".to_string());
    }
    Ok(line)
}

#[cfg(not(unix))]
fn fetch_status_from_socket(path: &std::path::Path, _prometheus: bool) -> Result<String, String> {
    Err(format!(
        "'{}' is not a state directory, and sockets need a Unix platform",
        path.display()
    ))
}

/// Parses one fetched status line and extracts the Prometheus body when
/// the exposition was requested (the daemon wraps it in a JSON envelope).
fn parse_status(line: &str, prometheus: bool) -> Result<(Json, Option<String>), String> {
    let parsed = yasksite::telemetry::json::parse(line.trim())
        .map_err(|e| format!("status response is not valid JSON: {e}"))?;
    if !prometheus {
        return Ok((parsed, None));
    }
    let body = parsed
        .get("body")
        .and_then(Json::as_str)
        .ok_or("prom status response carries no 'body' field")?
        .to_string();
    Ok((parsed, Some(body)))
}

/// The `yasksite top` command: live dashboard, single frame, raw
/// Prometheus dump, or `--check` validation of the daemon's output.
fn run_top(target: &str, opts: &TopOptions) -> Result<(), String> {
    loop {
        let line = fetch_status(target, opts.prometheus)?;
        let (parsed, prom_body) = parse_status(&line, opts.prometheus)?;
        if opts.check {
            if let Some(body) = &prom_body {
                let samples = validate_prometheus_text(body)
                    .map_err(|e| format!("prometheus exposition invalid: {e}"))?;
                println!("prometheus ok: {samples} samples");
            } else {
                let c = validate_status_json(&parsed)
                    .map_err(|e| format!("status snapshot invalid: {e}"))?;
                println!(
                    "status ok: {} kinds, {} latency samples, queue depth {}, \
                     {} drift suspects",
                    c.kinds, c.latency_samples, c.queue_depth, c.drift_suspects
                );
            }
            return Ok(());
        }
        if let Some(body) = prom_body {
            print!("{body}");
        } else {
            if !opts.once {
                // Clear the terminal between frames for a stable dashboard.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_top(&parsed, target));
        }
        if opts.once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(opts.interval_secs));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The telemetry handle is built before dispatch so even failures land
    // in the trace. A flag-parse failure here is re-detected (and
    // reported) by `run` below with a disabled handle.
    let tel = match parse_flags(&args).and_then(|(_, flags)| telemetry_from_flags(&flags)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{}", ErrorReport::classify(&e).render());
            return ExitCode::FAILURE;
        }
    };
    match run(&args, &tel) {
        Ok(()) => {
            tel.finish();
            ExitCode::SUCCESS
        }
        Err(e) => {
            tel.error(&e);
            tel.finish();
            eprintln!("{}", ErrorReport::classify(&e).render());
            ExitCode::FAILURE
        }
    }
}
