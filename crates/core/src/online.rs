//! Online (run-time) auto-tuning — YASK's built-in tuner, reproduced.
//!
//! YASK can tune block sizes *while the application runs*: early time
//! steps are measured with varying blocks, a hill-climbing search walks
//! the block lattice, and the best block found is used for the remaining
//! steps. This is the empirical counterpart the paper's analytic approach
//! competes against; having both allows the cost/quality comparison of
//! experiment E9 to be extended to the online setting.
//!
//! The tuner accepts either raw step times ([`OnlineTuner::record`]) or
//! whole robust trials ([`OnlineTuner::record_trial`]); in the latter
//! case the [`Provenance`] of every lattice point is retained, so a
//! winner that rests on an analytic fallback instead of a measurement is
//! visible to the caller. No method panics: protocol violations and
//! invalid input come back as [`ToolError`].
//!
//! # Drift feedback
//!
//! When trials arrive with their analytic prediction
//! ([`OnlineTuner::record_trial_with_prediction`]), the tuner closes the
//! loop on its own model error: the per-sample drifts of each lattice
//! point are aggregated into a [`DriftStats`] and a multiplicative
//! correction coefficient (the median observed measured/predicted
//! throughput ratio) is fitted per key. A key whose p95 absolute drift
//! crosses [`yasksite_ecm::DRIFT_SUSPECT_THRESHOLD`] is *model suspect*:
//! the driven climb emits a `model_suspect` event, applies the fitted
//! correction to the analytic model and re-ranks the open candidate
//! queue under the corrected predictions. Feedback is purely a steering
//! signal — with a clean backend (drift below threshold) the climb is
//! bitwise-identical to one with feedback disabled.

use yasksite_ecm::DriftStats;
use yasksite_engine::TuningParams;

use crate::cache::PredictionCache;
use crate::solution::{Solution, ToolError};
use crate::space::SearchSpace;
use crate::trial::{
    run_trial_observed, MeasureBackend, Provenance, TrialBudget, TrialConfig, TrialResult,
    TrialSummary,
};
use yasksite_telemetry::{Level, Telemetry};

/// Hill-climbing online tuner over the `(block_y, block_z)` lattice of a
/// [`SearchSpace`].
///
/// Protocol: repeatedly call [`OnlineTuner::suggest`] for the parameters
/// to use for the next measured step(s), then [`OnlineTuner::record`] (or
/// [`OnlineTuner::record_trial`]) with the observation. When
/// [`OnlineTuner::converged`] turns true, [`OnlineTuner::best`] is the
/// tuned configuration.
#[derive(Debug, Clone)]
pub struct OnlineTuner {
    /// Distinct y-extents, ascending.
    ys: Vec<usize>,
    /// Distinct z-extents, ascending.
    zs: Vec<usize>,
    /// Measurement per lattice point (`ys.len() * zs.len()`), seconds.
    measured: Vec<Option<f64>>,
    /// Provenance per lattice point, parallel to `measured`.
    prov: Vec<Option<Provenance>>,
    template: TuningParams,
    /// Current best lattice point.
    best: (usize, usize),
    /// Points queued for measurement.
    queue: Vec<(usize, usize)>,
    trials: usize,
    /// Aggregate statistics over recorded trials.
    summary: TrialSummary,
    /// Fitted model correction per lattice point, parallel to `measured`.
    corrections: Vec<Option<KeyCorrection>>,
    /// Whether drift feedback fits corrections at all (on by default;
    /// the property suite uses the disabled tuner as its baseline).
    feedback_enabled: bool,
    /// Keys that crossed the SUSPECT threshold.
    model_suspects: usize,
    /// Times the open candidate queue was re-ranked under a corrected
    /// model.
    reranks: usize,
}

/// The model-correction state the drift feedback loop fitted for one
/// lattice key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyCorrection {
    /// Block y-extent of the key.
    pub block_y: usize,
    /// Block z-extent of the key.
    pub block_z: usize,
    /// Drift percentiles over the key's trial samples.
    pub stats: DriftStats,
    /// Multiplicative correction on predicted throughput: the median
    /// measured/predicted MLUP/s ratio. Corrected prediction =
    /// `predicted_mlups * coeff` (equivalently `predicted_seconds /
    /// coeff`). Always positive.
    pub coeff: f64,
    /// Whether the key's p95 absolute drift crossed
    /// [`yasksite_ecm::DRIFT_SUSPECT_THRESHOLD`].
    pub suspect: bool,
}

impl OnlineTuner {
    /// Builds the tuner from a search space (its block list defines the
    /// lattice) and a parameter template providing fold/threads/etc.
    ///
    /// # Errors
    /// [`ToolError::InvalidInput`] if the space has no blocks.
    pub fn new(space: &SearchSpace, template: TuningParams) -> Result<Self, ToolError> {
        let mut ys: Vec<usize> = space.blocks().iter().map(|b| b[1]).collect();
        let mut zs: Vec<usize> = space.blocks().iter().map(|b| b[2]).collect();
        ys.sort_unstable();
        ys.dedup();
        zs.sort_unstable();
        zs.dedup();
        if ys.is_empty() || zs.is_empty() {
            return Err(ToolError::InvalidInput("empty block lattice".into()));
        }
        // Start in the middle of the lattice.
        let start = (ys.len() / 2, zs.len() / 2);
        let mut t = OnlineTuner {
            measured: vec![None; ys.len() * zs.len()],
            prov: vec![None; ys.len() * zs.len()],
            corrections: vec![None; ys.len() * zs.len()],
            ys,
            zs,
            template,
            best: start,
            queue: Vec::new(),
            trials: 0,
            summary: TrialSummary::default(),
            feedback_enabled: true,
            model_suspects: 0,
            reranks: 0,
        };
        t.queue.push(start);
        Ok(t)
    }

    fn idx(&self, p: (usize, usize)) -> usize {
        p.0 * self.zs.len() + p.1
    }

    fn params_at(&self, p: (usize, usize)) -> TuningParams {
        let mut out = self.template.clone();
        out.block = [self.template.block[0], self.ys[p.0], self.zs[p.1]];
        out
    }

    fn neighbours(&self, p: (usize, usize)) -> Vec<(usize, usize)> {
        let mut n = Vec::new();
        if p.0 > 0 {
            n.push((p.0 - 1, p.1));
        }
        if p.0 + 1 < self.ys.len() {
            n.push((p.0 + 1, p.1));
        }
        if p.1 > 0 {
            n.push((p.0, p.1 - 1));
        }
        if p.1 + 1 < self.zs.len() {
            n.push((p.0, p.1 + 1));
        }
        n
    }

    fn refill_queue(&mut self) {
        let best = self.best;
        self.queue = self
            .neighbours(best)
            .into_iter()
            .filter(|&p| self.measured[self.idx(p)].is_none())
            .collect();
    }

    /// The next configuration to run, or `None` once converged.
    #[must_use]
    pub fn suggest(&mut self) -> Option<TuningParams> {
        if let Some(&p) = self.queue.last() {
            return Some(self.params_at(p));
        }
        self.refill_queue();
        self.queue.last().map(|&p| self.params_at(p))
    }

    fn record_inner(&mut self, seconds: f64, prov: Provenance) -> Result<(), ToolError> {
        if !seconds.is_finite() || seconds <= 0.0 {
            return Err(ToolError::Measurement(format!(
                "non-finite or non-positive step time {seconds}"
            )));
        }
        let Some(p) = self.queue.pop() else {
            return Err(ToolError::Protocol(
                "record without a pending suggestion".into(),
            ));
        };
        let i = self.idx(p);
        self.measured[i] = Some(seconds);
        self.prov[i] = Some(prov);
        self.trials += 1;
        let best_t = self.measured[self.idx(self.best)].unwrap_or(f64::INFINITY);
        if seconds < best_t {
            self.best = p;
            self.queue.clear(); // restart the neighbourhood around the new best
        }
        Ok(())
    }

    /// Records the measured step time of the most recently suggested
    /// configuration.
    ///
    /// # Errors
    /// [`ToolError::Protocol`] without a pending suggestion (the
    /// observation is discarded and the tuner state is unchanged);
    /// [`ToolError::Measurement`] for a non-finite or non-positive time
    /// (the suggestion stays pending so the caller can re-measure).
    pub fn record(&mut self, seconds: f64) -> Result<(), ToolError> {
        self.record_inner(seconds, Provenance::Measured)
    }

    /// Records a whole robust trial for the most recently suggested
    /// configuration, retaining its provenance and statistics.
    ///
    /// # Errors
    /// As [`OnlineTuner::record`]; a fallback trial with a non-finite
    /// prediction is rejected as a measurement error.
    pub fn record_trial(&mut self, trial: &TrialResult) -> Result<(), ToolError> {
        self.record_inner(trial.seconds_per_sweep, trial.provenance)?;
        self.summary.absorb(trial);
        Ok(())
    }

    /// Disables (or re-enables) the drift feedback loop. With feedback
    /// off the tuner never fits corrections, never flags keys suspect
    /// and never re-ranks — the pre-feedback behaviour, used as the
    /// baseline of the determinism property suite.
    #[must_use]
    pub fn feedback(mut self, on: bool) -> Self {
        self.feedback_enabled = on;
        self
    }

    /// Records a robust trial *with* the analytic prediction it was
    /// checked against, fitting the key's drift-correction state.
    /// Returns the fitted correction when the key **newly** crossed the
    /// SUSPECT threshold — the caller's cue to apply the correction and
    /// re-rank (the driven climb does both automatically).
    ///
    /// Fallback trials carry no measurement and fit nothing; neither do
    /// trials recorded while feedback is disabled. Below-threshold keys
    /// still retain their (non-suspect) correction state for
    /// observability, but the climb never acts on it.
    ///
    /// # Errors
    /// As [`OnlineTuner::record_trial`].
    pub fn record_trial_with_prediction(
        &mut self,
        trial: &TrialResult,
        predicted_seconds: f64,
    ) -> Result<Option<KeyCorrection>, ToolError> {
        let pending = self.queue.last().copied();
        self.record_trial(trial)?;
        if !self.feedback_enabled
            || trial.provenance.is_fallback()
            || trial.samples.is_empty()
            || !(predicted_seconds.is_finite() && predicted_seconds > 0.0)
        {
            return Ok(None);
        }
        let p = pending.expect("record_trial succeeded, so a suggestion was pending");
        // Signed drift per sample, in throughput space: MLUP/s is
        // inversely proportional to seconds, so measured/predicted
        // throughput = predicted_seconds / sample_seconds.
        let mut drifts: Vec<f64> = trial
            .samples
            .iter()
            .filter(|s| s.is_finite() && **s > 0.0)
            .map(|s| predicted_seconds / s - 1.0)
            .collect();
        let Some(stats) = DriftStats::from_drifts(&drifts) else {
            return Ok(None);
        };
        drifts.sort_by(f64::total_cmp);
        let mid = drifts.len() / 2;
        let median = if drifts.len() % 2 == 1 {
            drifts[mid]
        } else {
            (drifts[mid - 1] + drifts[mid]) / 2.0
        };
        // drift > -1 always (both sides positive), so coeff > 0; the
        // floor only guards against rounding at the extreme.
        let correction = KeyCorrection {
            block_y: self.ys[p.0],
            block_z: self.zs[p.1],
            stats,
            coeff: (1.0 + median).max(1e-9),
            suspect: stats.suspect,
        };
        let i = self.idx(p);
        let was_suspect = self.corrections[i].is_some_and(|c| c.suspect);
        self.corrections[i] = Some(correction);
        let newly_suspect = stats.suspect && !was_suspect;
        if newly_suspect {
            self.model_suspects += 1;
        }
        Ok(newly_suspect.then_some(correction))
    }

    /// Re-ranks the open candidate queue by `score` (higher is better):
    /// the best-scoring point moves to the pop end so it is measured
    /// next. Ties break on lattice order, keeping the re-rank
    /// deterministic. An empty queue is refilled from the current best's
    /// neighbourhood first, so a re-rank right after an improvement
    /// still has candidates to order.
    pub fn rerank_open_candidates<F: FnMut(&TuningParams) -> f64>(&mut self, mut score: F) {
        if self.queue.is_empty() {
            self.refill_queue();
        }
        if self.queue.len() > 1 {
            let mut scored: Vec<((usize, usize), f64)> = self
                .queue
                .iter()
                .map(|&p| (p, score(&self.params_at(p))))
                .collect();
            scored.sort_by(|a, b| {
                a.1.total_cmp(&b.1)
                    .then_with(|| (self.idx(a.0)).cmp(&self.idx(b.0)))
            });
            self.queue = scored.into_iter().map(|(p, _)| p).collect();
        }
        self.reranks += 1;
    }

    /// The fitted correction state of every key that has one, in
    /// lattice order.
    #[must_use]
    pub fn corrections(&self) -> Vec<KeyCorrection> {
        self.corrections.iter().filter_map(|c| *c).collect()
    }

    /// Keys whose drift crossed the SUSPECT threshold.
    #[must_use]
    pub fn model_suspects(&self) -> usize {
        self.model_suspects
    }

    /// Times the open candidate queue was re-ranked under a corrected
    /// model.
    #[must_use]
    pub fn reranks(&self) -> usize {
        self.reranks
    }

    /// Whether the hill climb has no unmeasured improving direction left.
    #[must_use]
    pub fn converged(&mut self) -> bool {
        if !self.queue.is_empty() {
            return false;
        }
        self.refill_queue();
        self.queue.is_empty()
    }

    /// The best configuration found so far.
    #[must_use]
    pub fn best(&self) -> TuningParams {
        self.params_at(self.best)
    }

    /// Provenance of the current best point (`None` until it has been
    /// recorded, which only holds before the first record).
    #[must_use]
    pub fn best_provenance(&self) -> Option<Provenance> {
        self.prov[self.idx(self.best)]
    }

    /// Number of measurements consumed.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Aggregate statistics over all trials recorded via
    /// [`OnlineTuner::record_trial`].
    #[must_use]
    pub fn summary(&self) -> TrialSummary {
        self.summary
    }

    /// Size of the full lattice (what exhaustive search would measure).
    #[must_use]
    pub fn lattice_size(&self) -> usize {
        self.ys.len() * self.zs.len()
    }

    /// Drives the tuner to convergence against `backend`, measuring every
    /// suggestion as a robust trial with `sol`'s analytic prediction as
    /// the fallback. Returns the tuned parameters.
    ///
    /// Fallback predictions are served through the process-wide
    /// [`PredictionCache::global`]; use
    /// [`OnlineTuner::run_to_convergence_cached`] to supply a private
    /// cache.
    ///
    /// This is the fault-tolerant entry point: under an all-failures
    /// backend every lattice point degrades to its ECM prediction and the
    /// climb still terminates with a valid configuration.
    ///
    /// # Errors
    /// [`ToolError::Measurement`] only if a fallback prediction itself is
    /// non-finite (a corrupt machine model).
    pub fn run_to_convergence(
        &mut self,
        sol: &Solution,
        backend: &mut dyn MeasureBackend,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> Result<TuningParams, ToolError> {
        self.run_to_convergence_cached(sol, backend, cfg, budget, PredictionCache::global())
    }

    /// [`OnlineTuner::run_to_convergence`] with an explicit
    /// [`PredictionCache`] for the analytic fallback predictions. The
    /// climb itself is inherently sequential (each suggestion depends on
    /// the previous record), so the cache is where repeated online
    /// sessions save their model work.
    ///
    /// # Errors
    /// As [`OnlineTuner::run_to_convergence`].
    pub fn run_to_convergence_cached(
        &mut self,
        sol: &Solution,
        backend: &mut dyn MeasureBackend,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
        cache: &PredictionCache,
    ) -> Result<TuningParams, ToolError> {
        self.run_to_convergence_observed(sol, backend, cfg, budget, cache, &Telemetry::disabled())
    }

    /// [`OnlineTuner::run_to_convergence_cached`] recording the climb into
    /// `telemetry`: one `tune_session` span for the whole climb, a `trial`
    /// child per lattice point (with `predict` and `measure` grandchildren)
    /// and the same `tune.*` counters the offline tuner maintains.
    /// Telemetry is purely observational — the climb, its winner and its
    /// trial count are identical with a disabled handle.
    ///
    /// # Errors
    /// As [`OnlineTuner::run_to_convergence`].
    pub fn run_to_convergence_observed(
        &mut self,
        sol: &Solution,
        backend: &mut dyn MeasureBackend,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
        cache: &PredictionCache,
        telemetry: &Telemetry,
    ) -> Result<TuningParams, ToolError> {
        let session = telemetry.span("tune_session");
        telemetry.event(
            Level::Info,
            "session_start",
            session.id(),
            &[
                ("strategy", "online".into()),
                ("lattice", self.lattice_size().into()),
            ],
        );
        while !self.converged() {
            let p = match self.suggest() {
                Some(p) => p,
                None => break,
            };
            let cores = p.threads.max(1);
            let trial_span = session.child("trial");
            let (pred, hit) = {
                let _predict_span = trial_span.child("predict");
                cache.predict(sol, &p, cores)
            };
            if hit {
                telemetry.inc("tune.cache_hits");
            } else {
                telemetry.inc("tune.cache_misses");
            }
            let fallback = pred.seconds_per_sweep;
            let trial = run_trial_observed(
                backend,
                &p,
                fallback,
                cfg,
                budget,
                telemetry,
                Some(&trial_span),
            );
            telemetry.add("tune.engine_runs", trial.attempts as u64);
            if trial.provenance.is_fallback() {
                telemetry.inc("tune.fallbacks");
            }
            if let Some(c) = self.record_trial_with_prediction(&trial, fallback)? {
                telemetry.inc("tune.model_suspects");
                telemetry.event(
                    Level::Info,
                    "model_suspect",
                    session.id(),
                    &[
                        ("block_y", c.block_y.into()),
                        ("block_z", c.block_z.into()),
                        ("p95", c.stats.p95.into()),
                        ("coeff", c.coeff.into()),
                        ("count", c.stats.count.into()),
                    ],
                );
                // The model misdescribed this key badly enough to doubt
                // its ranking: re-order the open candidates under the
                // corrected predictions before measuring on.
                self.rerank_open_candidates(|p| {
                    let cores = p.threads.max(1);
                    let (pred, _) = cache.predict(sol, p, cores);
                    pred.mlups * c.coeff
                });
                telemetry.inc("tune.reranks");
            }
        }
        telemetry.event(
            Level::Info,
            "session_end",
            session.id(),
            &[("trials", self.trials().into())],
        );
        Ok(self.best())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Solution;
    use crate::trial::{FaultPlan, FaultyBackend, SolutionBackend};
    use yasksite_arch::Machine;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::heat3d;

    fn drive(tuner: &mut OnlineTuner, sol: &Solution) -> usize {
        while !tuner.converged() {
            let p = tuner.suggest().expect("not converged");
            let m = sol.measure(&p).expect("simulated measurement");
            tuner.record(m.seconds_per_sweep).expect("valid record");
        }
        tuner.trials()
    }

    #[test]
    fn converges_cheaper_than_exhaustive() {
        let m = Machine::cascade_lake();
        let sol = Solution::new(heat3d(1), [64, 64, 64], m.clone());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
        let template = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let mut tuner = OnlineTuner::new(&space, template).unwrap();
        let trials = drive(&mut tuner, &sol);
        assert!(
            trials < tuner.lattice_size(),
            "hill climb must beat exhaustive: {trials} vs {}",
            tuner.lattice_size()
        );
        // The found block is within 15% of the exhaustive best.
        let best_measured = sol.measure(&tuner.best()).unwrap().mlups;
        let mut exhaustive_best = 0.0f64;
        for p in space.candidates(1) {
            exhaustive_best = exhaustive_best.max(sol.measure(&p).unwrap().mlups);
        }
        assert!(
            best_measured >= 0.85 * exhaustive_best,
            "online pick {best_measured:.0} vs exhaustive {exhaustive_best:.0}"
        );
    }

    #[test]
    fn suggestion_record_protocol() {
        let m = Machine::cascade_lake();
        let space = SearchSpace::spatial_only(&heat3d(1), [32, 32, 32], &m);
        let mut tuner =
            OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1))).unwrap();
        let first = tuner.suggest().expect("has a start point");
        assert_eq!(first.block[0], 32);
        tuner.record(1.0).unwrap();
        assert_eq!(tuner.trials(), 1);
        // A better neighbour becomes the new best.
        let suggested = tuner.suggest().expect("neighbours queued");
        tuner.record(0.5).unwrap();
        assert_eq!(
            tuner.best().block,
            suggested.block,
            "the faster neighbour must take over as best"
        );
        assert_ne!(tuner.best().block, first.block);
        assert!(tuner.trials() == 2);
    }

    #[test]
    fn record_requires_suggestion() {
        let m = Machine::cascade_lake();
        let space = SearchSpace::spatial_only(&heat3d(1), [32, 32, 32], &m);
        let mut tuner =
            OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1))).unwrap();
        let _ = tuner.suggest();
        tuner.record(1.0).unwrap();
        let err = tuner.record(1.0).unwrap_err(); // no suggestion pending
        assert!(matches!(err, ToolError::Protocol(_)), "{err}");
        assert_eq!(tuner.trials(), 1, "failed record must not count");
    }

    #[test]
    fn empty_lattice_is_an_error_not_a_panic() {
        let space = SearchSpace::empty();
        let err = OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ToolError::InvalidInput(_)), "{err}");
    }

    #[test]
    fn non_finite_record_is_rejected_and_suggestion_stays_pending() {
        let m = Machine::cascade_lake();
        let space = SearchSpace::spatial_only(&heat3d(1), [32, 32, 32], &m);
        let mut tuner =
            OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1))).unwrap();
        let _ = tuner.suggest().expect("start point");
        let err = tuner.record(f64::NAN).unwrap_err();
        assert!(matches!(err, ToolError::Measurement(_)), "{err}");
        // The suggestion is still pending: a valid re-measure succeeds.
        tuner.record(1.0).unwrap();
        assert_eq!(tuner.trials(), 1);
    }

    #[test]
    fn observed_climb_matches_unobserved_and_balances_spans() {
        let m = Machine::cascade_lake();
        let sol = Solution::new(heat3d(1), [32, 32, 32], m.clone());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
        let template = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)).threads(1);
        let cfg = TrialConfig::default();

        let mut plain = OnlineTuner::new(&space, template.clone()).unwrap();
        let mut backend = SolutionBackend::new(&sol);
        let plain_best = plain
            .run_to_convergence_cached(
                &sol,
                &mut backend,
                &cfg,
                &mut TrialBudget::unlimited(),
                &PredictionCache::new(),
            )
            .unwrap();

        let (tel, sink) =
            yasksite_telemetry::Telemetry::recording(yasksite_telemetry::Level::Debug);
        let mut observed = OnlineTuner::new(&space, template).unwrap();
        let mut backend = SolutionBackend::new(&sol);
        let observed_best = observed
            .run_to_convergence_observed(
                &sol,
                &mut backend,
                &cfg,
                &mut TrialBudget::unlimited(),
                &PredictionCache::new(),
                &tel,
            )
            .unwrap();

        assert_eq!(plain_best, observed_best, "telemetry must not steer");
        assert_eq!(plain.trials(), observed.trials());
        drop(tel);
        assert!(!sink.lines().is_empty(), "observed run must emit events");
        let joined = sink.lines().join("\n");
        let stats = yasksite_telemetry::check_trace(&joined).expect("balanced trace");
        assert_eq!(stats.spans_opened, stats.spans_closed);
    }

    fn lattice_tuner() -> OnlineTuner {
        let m = Machine::cascade_lake();
        let space = SearchSpace::spatial_only(&heat3d(1), [32, 32, 32], &m);
        OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1))).unwrap()
    }

    fn measured_trial(samples: Vec<f64>) -> TrialResult {
        let mid = samples[samples.len() / 2];
        TrialResult {
            seconds_per_sweep: mid,
            provenance: Provenance::Measured,
            kept: samples.len(),
            rejected: 0,
            retries: 0,
            attempts: samples.len(),
            samples,
            truncated: false,
        }
    }

    #[test]
    fn high_drift_fits_a_correction_that_reduces_p95() {
        use yasksite_ecm::DRIFT_SUSPECT_THRESHOLD;
        let mut tuner = lattice_tuner();
        let _ = tuner.suggest().expect("start point");
        // Prediction says 1.0 s, the machine delivers ~4 s: every sample
        // drifts by ~-0.75, far past the SUSPECT threshold.
        let samples = vec![4.0, 3.9, 4.1, 4.0, 4.2];
        let trial = measured_trial(samples.clone());
        let c = tuner
            .record_trial_with_prediction(&trial, 1.0)
            .expect("valid record")
            .expect("the key must newly cross the threshold");
        assert!(c.suspect);
        assert!(c.stats.p95 > DRIFT_SUSPECT_THRESHOLD, "{:?}", c.stats);
        assert!(
            (c.coeff - 0.25).abs() < 0.02,
            "4x-slow measurements fit a ~0.25 throughput coefficient, got {}",
            c.coeff
        );
        assert_eq!(tuner.model_suspects(), 1);
        // Applying the correction to the prediction and re-deriving the
        // drifts must pull the key's p95 back under the threshold.
        let corrected: Vec<f64> = samples.iter().map(|s| (1.0 / c.coeff) / s - 1.0).collect();
        let after = DriftStats::from_drifts(&corrected).unwrap();
        assert!(
            after.p95 < c.stats.p95,
            "correction must reduce p95: {} -> {}",
            c.stats.p95,
            after.p95
        );
        assert!(!after.suspect, "corrected drift stays under the threshold");
    }

    #[test]
    fn below_threshold_keys_keep_state_but_never_fire() {
        let mut tuner = lattice_tuner();
        let _ = tuner.suggest().expect("start point");
        // ~2% drift: well under the threshold.
        let trial = measured_trial(vec![1.02, 1.01, 1.03, 1.02, 1.02]);
        let fired = tuner.record_trial_with_prediction(&trial, 1.0).unwrap();
        assert!(fired.is_none(), "below-threshold drift must not fire");
        assert_eq!(tuner.model_suspects(), 0);
        assert_eq!(tuner.reranks(), 0);
        let corrections = tuner.corrections();
        assert_eq!(corrections.len(), 1, "state is still retained");
        assert!(!corrections[0].suspect);
    }

    #[test]
    fn fallback_trials_and_disabled_feedback_fit_nothing() {
        let mut tuner = lattice_tuner();
        let _ = tuner.suggest().expect("start point");
        let mut fb = measured_trial(vec![4.0]);
        fb.provenance = Provenance::PredictedFallback {
            reason: crate::trial::FallbackReason::AllSamplesFailed,
        };
        fb.samples.clear();
        fb.kept = 0;
        assert!(tuner
            .record_trial_with_prediction(&fb, 1.0)
            .unwrap()
            .is_none());
        assert!(tuner.corrections().is_empty());

        let mut off = lattice_tuner().feedback(false);
        let _ = off.suggest().expect("start point");
        let trial = measured_trial(vec![4.0, 4.0, 4.0]);
        assert!(off
            .record_trial_with_prediction(&trial, 1.0)
            .unwrap()
            .is_none());
        assert!(off.corrections().is_empty());
        assert_eq!(off.model_suspects(), 0);
    }

    #[test]
    fn rerank_orders_best_candidate_last_deterministically() {
        let mut tuner = lattice_tuner();
        let _ = tuner.suggest().expect("start point");
        tuner.record(1.0).unwrap();
        assert!(
            tuner.suggest().is_some(),
            "neighbours queued after the first record"
        );
        // Score by block volume: the largest block must surface at the
        // pop end of the queue.
        tuner.rerank_open_candidates(|p| (p.block[1] * p.block[2]) as f64);
        assert_eq!(tuner.reranks(), 1);
        let next = tuner.suggest().expect("queue non-empty");
        let mut again = lattice_tuner();
        let _ = again.suggest();
        again.record(1.0).unwrap();
        let _ = again.suggest();
        again.rerank_open_candidates(|p| (p.block[1] * p.block[2]) as f64);
        assert_eq!(
            next,
            again.suggest().expect("queue non-empty"),
            "re-ranking is deterministic"
        );
    }

    #[test]
    fn run_to_convergence_under_total_failure_falls_back() {
        let m = Machine::cascade_lake();
        let sol = Solution::new(heat3d(1), [32, 32, 32], m.clone());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
        let template = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)).threads(1);
        let mut tuner = OnlineTuner::new(&space, template).unwrap();
        let mut backend = FaultyBackend::new(SolutionBackend::new(&sol), FaultPlan::always_fail(3));
        let best = tuner
            .run_to_convergence(
                &sol,
                &mut backend,
                &TrialConfig::default(),
                &mut TrialBudget::unlimited(),
            )
            .expect("terminates with a valid config");
        assert!(best.block[1] > 0 && best.block[2] > 0);
        assert!(
            tuner.best_provenance().expect("recorded").is_fallback(),
            "all-failures plan must leave a fallback winner"
        );
        assert_eq!(tuner.summary().fallbacks, tuner.trials());
    }
}
