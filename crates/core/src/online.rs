//! Online (run-time) auto-tuning — YASK's built-in tuner, reproduced.
//!
//! YASK can tune block sizes *while the application runs*: early time
//! steps are measured with varying blocks, a hill-climbing search walks
//! the block lattice, and the best block found is used for the remaining
//! steps. This is the empirical counterpart the paper's analytic approach
//! competes against; having both allows the cost/quality comparison of
//! experiment E9 to be extended to the online setting.

use yasksite_engine::TuningParams;

use crate::space::SearchSpace;

/// Hill-climbing online tuner over the `(block_y, block_z)` lattice of a
/// [`SearchSpace`].
///
/// Protocol: repeatedly call [`OnlineTuner::suggest`] for the parameters
/// to use for the next measured step(s), then [`OnlineTuner::record`]
/// with the observed seconds. When [`OnlineTuner::converged`] turns true,
/// [`OnlineTuner::best`] is the tuned configuration.
#[derive(Debug, Clone)]
pub struct OnlineTuner {
    /// Distinct y-extents, ascending.
    ys: Vec<usize>,
    /// Distinct z-extents, ascending.
    zs: Vec<usize>,
    /// Measurement per lattice point (`ys.len() * zs.len()`), seconds.
    measured: Vec<Option<f64>>,
    template: TuningParams,
    /// Current best lattice point.
    best: (usize, usize),
    /// Points queued for measurement.
    queue: Vec<(usize, usize)>,
    trials: usize,
}

impl OnlineTuner {
    /// Builds the tuner from a search space (its block list defines the
    /// lattice) and a parameter template providing fold/threads/etc.
    ///
    /// # Panics
    /// Panics if the space has no blocks.
    #[must_use]
    pub fn new(space: &SearchSpace, template: TuningParams) -> Self {
        let mut ys: Vec<usize> = space.blocks().iter().map(|b| b[1]).collect();
        let mut zs: Vec<usize> = space.blocks().iter().map(|b| b[2]).collect();
        ys.sort_unstable();
        ys.dedup();
        zs.sort_unstable();
        zs.dedup();
        assert!(!ys.is_empty() && !zs.is_empty(), "empty block lattice");
        // Start in the middle of the lattice.
        let start = (ys.len() / 2, zs.len() / 2);
        let mut t = OnlineTuner {
            measured: vec![None; ys.len() * zs.len()],
            ys,
            zs,
            template,
            best: start,
            queue: Vec::new(),
            trials: 0,
        };
        t.queue.push(start);
        t
    }

    fn idx(&self, p: (usize, usize)) -> usize {
        p.0 * self.zs.len() + p.1
    }

    fn params_at(&self, p: (usize, usize)) -> TuningParams {
        let mut out = self.template.clone();
        out.block = [self.template.block[0], self.ys[p.0], self.zs[p.1]];
        out
    }

    fn neighbours(&self, p: (usize, usize)) -> Vec<(usize, usize)> {
        let mut n = Vec::new();
        if p.0 > 0 {
            n.push((p.0 - 1, p.1));
        }
        if p.0 + 1 < self.ys.len() {
            n.push((p.0 + 1, p.1));
        }
        if p.1 > 0 {
            n.push((p.0, p.1 - 1));
        }
        if p.1 + 1 < self.zs.len() {
            n.push((p.0, p.1 + 1));
        }
        n
    }

    fn refill_queue(&mut self) {
        let best = self.best;
        self.queue = self
            .neighbours(best)
            .into_iter()
            .filter(|&p| self.measured[self.idx(p)].is_none())
            .collect();
    }

    /// The next configuration to run, or `None` once converged.
    #[must_use]
    pub fn suggest(&mut self) -> Option<TuningParams> {
        if let Some(&p) = self.queue.last() {
            return Some(self.params_at(p));
        }
        self.refill_queue();
        self.queue.last().map(|&p| self.params_at(p))
    }

    /// Records the measured step time of the most recently suggested
    /// configuration.
    ///
    /// # Panics
    /// Panics if called without a pending suggestion.
    pub fn record(&mut self, seconds: f64) {
        let p = self.queue.pop().expect("record without a pending suggestion");
        let i = self.idx(p);
        self.measured[i] = Some(seconds);
        self.trials += 1;
        let best_t = self.measured[self.idx(self.best)].unwrap_or(f64::INFINITY);
        if seconds < best_t {
            self.best = p;
            self.queue.clear(); // restart the neighbourhood around the new best
        }
    }

    /// Whether the hill climb has no unmeasured improving direction left.
    #[must_use]
    pub fn converged(&mut self) -> bool {
        if !self.queue.is_empty() {
            return false;
        }
        self.refill_queue();
        self.queue.is_empty()
    }

    /// The best configuration found so far.
    #[must_use]
    pub fn best(&self) -> TuningParams {
        self.params_at(self.best)
    }

    /// Number of measurements consumed.
    #[must_use]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Size of the full lattice (what exhaustive search would measure).
    #[must_use]
    pub fn lattice_size(&self) -> usize {
        self.ys.len() * self.zs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Solution;
    use yasksite_arch::Machine;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::heat3d;

    fn drive(tuner: &mut OnlineTuner, sol: &Solution) -> usize {
        while !tuner.converged() {
            let p = tuner.suggest().expect("not converged");
            let m = sol.measure(&p).expect("simulated measurement");
            tuner.record(m.seconds_per_sweep);
        }
        tuner.trials()
    }

    #[test]
    fn converges_cheaper_than_exhaustive() {
        let m = Machine::cascade_lake();
        let sol = Solution::new(heat3d(1), [64, 64, 64], m.clone());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), &m);
        let template = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let mut tuner = OnlineTuner::new(&space, template);
        let trials = drive(&mut tuner, &sol);
        assert!(
            trials < tuner.lattice_size(),
            "hill climb must beat exhaustive: {trials} vs {}",
            tuner.lattice_size()
        );
        // The found block is within 15% of the exhaustive best.
        let best_measured = sol.measure(&tuner.best()).unwrap().mlups;
        let mut exhaustive_best = 0.0f64;
        for p in space.candidates(1) {
            exhaustive_best = exhaustive_best.max(sol.measure(&p).unwrap().mlups);
        }
        assert!(
            best_measured >= 0.85 * exhaustive_best,
            "online pick {best_measured:.0} vs exhaustive {exhaustive_best:.0}"
        );
    }

    #[test]
    fn suggestion_record_protocol() {
        let m = Machine::cascade_lake();
        let space = SearchSpace::spatial_only(&heat3d(1), [32, 32, 32], &m);
        let mut tuner = OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)));
        let first = tuner.suggest().expect("has a start point");
        assert_eq!(first.block[0], 32);
        tuner.record(1.0);
        assert_eq!(tuner.trials(), 1);
        // A better neighbour becomes the new best.
        let _ = tuner.suggest().expect("neighbours queued");
        tuner.record(0.5);
        assert_eq!(tuner.best().block, tuner.best().block);
        assert!(tuner.trials() == 2);
    }

    #[test]
    #[should_panic(expected = "record without a pending suggestion")]
    fn record_requires_suggestion() {
        let m = Machine::cascade_lake();
        let space = SearchSpace::spatial_only(&heat3d(1), [32, 32, 32], &m);
        let mut tuner = OnlineTuner::new(&space, TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)));
        let _ = tuner.suggest();
        tuner.record(1.0);
        tuner.record(1.0); // no suggestion pending
    }
}
