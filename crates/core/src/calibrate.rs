//! Measured machine discovery: `yasksite calibrate`.
//!
//! The builtin [`Machine::host`] model is a hand-written guess about the
//! machine this reproduction runs on. This module replaces the guess with
//! *measurements*, kerncraft-style: a fixed set of seeded micro-benchmark
//! probes — FMA throughput, L1 load/store throughput, triad bandwidth at
//! cache-level-sized working sets, memory bandwidth and a pointer-chase
//! memory latency — each run through the same robust trial machinery the
//! tuner uses ([`run_trial_observed`]: warmup, MAD outlier rejection,
//! bounded retries, budget accounting, graceful fallback to the builtin
//! value when a probe fails entirely).
//!
//! The result is a [`Machine`] with [`MachineKind::Host`] whose cache and
//! memory bandwidths come from the probes, carrying a
//! [`CalibrationProvenance`] block (per-probe sample counts, kept-sample
//! confidence intervals, rejected-outlier counts, the calibrator revision,
//! seed and date) that round-trips through the machine-file format and is
//! re-validated by [`check_calibration`] — the `yasksite calibrate
//! --check` entry point.
//!
//! Two execution modes share every code path above the sample:
//!
//! - **native** (default): the probes time real loops on this host;
//! - **synthetic** (`--synthetic`): samples are drawn from a seeded
//!   [`TrialRng`] stream around the builtin model's nominal values, so CI
//!   and the test suite get bitwise-deterministic calibrations without
//!   depending on machine noise.

use std::hint::black_box;
use std::time::Instant;

use yasksite_arch::{CalibrationProvenance, Machine, MachineKind, MeasurementProvenance};
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_telemetry::{Level, Telemetry};

use crate::cost::TuneCost;
use crate::solution::ToolError;
use crate::trial::{
    run_trial_observed, FaultPlan, FaultyBackend, MeasureBackend, TrialBudget, TrialConfig,
    TrialResult, TrialRng,
};

/// Names of the calibration probes, in execution order. Every calibrated
/// model carries exactly one measurement per name.
pub const PROBE_NAMES: [&str; 7] = [
    "fma_gflops",
    "load_gbs",
    "store_gbs",
    "l2_gbs",
    "l3_gbs",
    "mem_gbs",
    "mem_latency_cycles",
];

/// Configuration of one calibration run.
#[derive(Debug, Clone)]
pub struct CalibrateConfig {
    /// Seed of the run: drives the synthetic sample stream, the pointer-
    /// chase permutation and (via [`FaultPlan::stream`]) any injected
    /// faults. Identical seeds give identical synthetic calibrations.
    pub seed: u64,
    /// Calibrator revision recorded in the provenance block.
    pub rev: String,
    /// UTC date recorded in the provenance block, `YYYY-MM-DD`.
    pub date: String,
    /// Trial protocol each probe runs under.
    pub trial: TrialConfig,
    /// Shared budget across all probes.
    pub budget: TrialBudget,
    /// Optional fault injection (tests and the CI smoke job).
    pub faults: Option<FaultPlan>,
    /// Shrink working sets and iteration counts for smoke runs.
    pub quick: bool,
    /// Draw samples from the seeded synthetic stream instead of timing
    /// real loops.
    pub synthetic: bool,
}

impl CalibrateConfig {
    /// A default-protocol calibration under `seed`: robust trials
    /// ([`TrialConfig::default`]), unlimited budget, native mode.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        CalibrateConfig {
            seed,
            rev: env!("CARGO_PKG_VERSION").to_string(),
            date: today_utc(),
            trial: TrialConfig::default(),
            budget: TrialBudget::unlimited(),
            faults: None,
            quick: false,
            synthetic: false,
        }
    }
}

/// What a calibration run produced: the calibrated model plus its cost.
#[derive(Debug, Clone)]
pub struct CalibrationOutcome {
    /// The measured [`MachineKind::Host`] model, provenance attached,
    /// already validated.
    pub machine: Machine,
    /// Cost ledger of the run (`recalibrations` is 1, `engine_runs`
    /// counts probe attempts, `fallbacks` counts probes that degraded to
    /// the builtin value).
    pub cost: TuneCost,
}

impl CalibrationOutcome {
    /// Renders the per-probe evidence as an aligned table.
    #[must_use]
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("probe                 value       unit     samples  rejected  ci\n");
        if let Some(c) = &self.machine.calibration {
            for m in &c.measurements {
                let _ = writeln!(
                    out,
                    "{:<20} {:>9.2}  {:<8} {:>8}  {:>8}  [{:.2}, {:.2}]",
                    m.name, m.value, m.unit, m.samples, m.rejected, m.ci_low, m.ci_high
                );
            }
        }
        out
    }
}

/// What [`check_calibration`] verified, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationCheck {
    /// Probes carried by the provenance block.
    pub probes: usize,
    /// Valid samples across all probes.
    pub samples: usize,
    /// MAD-rejected outliers across all probes.
    pub rejected: usize,
    /// Probes that rest on the builtin fallback (zero samples).
    pub fallback_probes: usize,
}

/// Validates a calibrated machine model: the model itself
/// ([`Machine::validate`]), the presence and internal consistency of the
/// provenance block, that every probe of [`PROBE_NAMES`] is present
/// exactly once, that each measured value lies inside its own confidence
/// interval, and that the model's memory bandwidth actually equals the
/// `mem_gbs` probe.
///
/// # Errors
/// A human-readable message naming the first violated invariant.
pub fn check_calibration(m: &Machine) -> Result<CalibrationCheck, String> {
    m.validate()?;
    let Some(c) = &m.calibration else {
        return Err("machine carries no calibration block (not a calibrated model)".into());
    };
    c.validate()?;
    for name in PROBE_NAMES {
        let found = c.measurements.iter().filter(|p| p.name == name).count();
        if found != 1 {
            return Err(format!("probe '{name}' appears {found} times, expected 1"));
        }
    }
    let mut samples = 0usize;
    let mut rejected = 0usize;
    let mut fallback_probes = 0usize;
    for p in &c.measurements {
        if p.samples == 0 {
            fallback_probes += 1;
        } else if !(p.ci_low <= p.value && p.value <= p.ci_high) {
            return Err(format!(
                "probe '{}' value {} outside its confidence interval [{}, {}]",
                p.name, p.value, p.ci_low, p.ci_high
            ));
        }
        samples += p.samples;
        rejected += p.rejected;
    }
    let mem = c
        .measurements
        .iter()
        .find(|p| p.name == "mem_gbs")
        .expect("presence checked above");
    if (m.mem_bw_single_core_gbs - mem.value).abs() > 1e-9 * mem.value.max(1.0) {
        return Err(format!(
            "model memory bandwidth {} disagrees with the mem_gbs probe {}",
            m.mem_bw_single_core_gbs, mem.value
        ));
    }
    Ok(CalibrationCheck {
        probes: c.measurements.len(),
        samples,
        rejected,
        fallback_probes,
    })
}

/// One probe: how to run a sample and how to turn seconds into the final
/// unit.
struct Probe {
    name: &'static str,
    unit: &'static str,
    /// Work per sample in the unit's base quantity (flops, bytes, chase
    /// steps).
    work: f64,
    /// Nominal value from the builtin host model (the fallback, and the
    /// centre of the synthetic stream).
    nominal: f64,
    /// Seconds → value in the probe's unit.
    kind: ProbeKind,
}

#[derive(Clone, Copy)]
enum ProbeKind {
    /// value = work / seconds / 1e9 (GFLOP/s or GB/s).
    GigaPerSecond,
    /// value = seconds / work * freq_ghz * 1e9 (cycles per chase step).
    LatencyCycles { freq_ghz: f64 },
}

impl Probe {
    fn value_of(&self, seconds: f64) -> f64 {
        match self.kind {
            ProbeKind::GigaPerSecond => self.work / seconds / 1e9,
            ProbeKind::LatencyCycles { freq_ghz } => seconds / self.work * freq_ghz * 1e9,
        }
    }

    fn seconds_of(&self, value: f64) -> f64 {
        match self.kind {
            ProbeKind::GigaPerSecond => self.work / (value * 1e9),
            ProbeKind::LatencyCycles { freq_ghz } => value * self.work / (freq_ghz * 1e9),
        }
    }
}

/// Backend adapter: every sample runs `kernel` and returns its seconds.
struct ProbeBackend<F: FnMut() -> f64> {
    kernel: F,
}

impl<F: FnMut() -> f64> MeasureBackend for ProbeBackend<F> {
    fn run_sample(&mut self, _params: &TuningParams) -> Result<f64, ToolError> {
        Ok((self.kernel)())
    }
}

/// The probe set for `template`, sized by `quick`.
fn probes(template: &Machine, quick: bool) -> Vec<Probe> {
    let scale = if quick { 1 } else { 8 };
    let freq = template.freq_ghz;
    // Working sets: L1-resident streams, then triads sized well inside
    // L2, spilling L2 into L3, and spilling everything into memory.
    let l1 = template.caches.first().map_or(32 * 1024, |c| c.size_bytes);
    let l2 = template.caches.get(1).map_or(1 << 20, |c| c.size_bytes);
    let l3 = template.caches.get(2).map_or(1 << 25, |c| c.size_bytes);
    let fma_iters = 200_000 * scale;
    let stream_passes = 16 * scale;
    let chase_steps = 100_000 * scale;
    let nominal_bw = |level: usize| -> f64 {
        template
            .caches
            .get(level)
            .map_or(template.mem_bw_single_core_gbs, |c| {
                c.bytes_per_cycle * freq
            })
    };
    vec![
        Probe {
            name: "fma_gflops",
            unit: "gflops",
            // 8 accumulators, 2 flops per fused multiply-add.
            work: (fma_iters * 8 * 2) as f64,
            nominal: template.peak_gflops_core(),
            kind: ProbeKind::GigaPerSecond,
        },
        Probe {
            name: "load_gbs",
            unit: "gbs",
            work: (stream_passes * (l1 / 2)) as f64,
            nominal: nominal_bw(0),
            kind: ProbeKind::GigaPerSecond,
        },
        Probe {
            name: "store_gbs",
            unit: "gbs",
            work: (stream_passes * (l1 / 2)) as f64,
            nominal: nominal_bw(0),
            kind: ProbeKind::GigaPerSecond,
        },
        Probe {
            name: "l2_gbs",
            unit: "gbs",
            work: (stream_passes * (l2 / 2)) as f64,
            nominal: nominal_bw(1),
            kind: ProbeKind::GigaPerSecond,
        },
        Probe {
            name: "l3_gbs",
            unit: "gbs",
            work: (stream_passes.div_ceil(4) * (l3 / 2)) as f64,
            nominal: nominal_bw(2),
            kind: ProbeKind::GigaPerSecond,
        },
        Probe {
            name: "mem_gbs",
            unit: "gbs",
            work: (stream_passes.div_ceil(8) * l3 * 2) as f64,
            nominal: template.mem_bw_single_core_gbs,
            kind: ProbeKind::GigaPerSecond,
        },
        Probe {
            name: "mem_latency_cycles",
            unit: "cycles",
            work: chase_steps as f64,
            nominal: template.mem_latency_cycles,
            kind: ProbeKind::LatencyCycles { freq_ghz: freq },
        },
    ]
}

/// A native timed kernel for `probe`: returns seconds per sample.
fn native_kernel(probe: &Probe, seed: u64) -> Box<dyn FnMut() -> f64> {
    match probe.name {
        "fma_gflops" => {
            let iters = (probe.work / 16.0) as usize;
            Box::new(move || {
                let start = Instant::now();
                let mut acc = [1.0f64; 8];
                let (a, b) = (black_box(1.000_000_1f64), black_box(1e-9f64));
                for _ in 0..iters {
                    for slot in &mut acc {
                        *slot = slot.mul_add(a, b);
                    }
                }
                black_box(acc);
                start.elapsed().as_secs_f64()
            })
        }
        "store_gbs" => {
            let bytes = probe.work as usize;
            let n = 2048; // 16 KiB, L1-resident
            let passes = bytes / (n * 8);
            let mut buf = vec![0.0f64; n];
            Box::new(move || {
                let start = Instant::now();
                for p in 0..passes {
                    buf.fill(p as f64);
                    black_box(&mut buf);
                }
                start.elapsed().as_secs_f64()
            })
        }
        "mem_latency_cycles" => {
            // Pointer chase over a seeded permutation cycle: each load
            // depends on the previous one, so the loop time is latency,
            // not bandwidth.
            let steps = probe.work as usize;
            let n = 1 << 21; // 16 MiB of usize — beyond L3 on the host model
            let mut next: Vec<usize> = (0..n).collect();
            let mut rng = TrialRng::new(seed);
            // Sattolo's algorithm: a single cycle visiting every slot.
            for i in (1..n).rev() {
                let j = (rng.next_u64() as usize) % i;
                next.swap(i, j);
            }
            Box::new(move || {
                let start = Instant::now();
                let mut p = 0usize;
                for _ in 0..steps {
                    p = next[p];
                }
                black_box(p);
                start.elapsed().as_secs_f64()
            })
        }
        // The load and triad probes share a streaming kernel; only the
        // working set differs.
        _ => {
            let bytes = probe.work as usize;
            let n = match probe.name {
                "load_gbs" => 2048,      // 16 KiB — L1-resident
                "l2_gbs" => 16 * 1024,   // 128 KiB — spills L1, fits L2
                "l3_gbs" => 1024 * 1024, // 8 MiB — spills L2, fits L3
                _ => 16 * 1024 * 1024,   // 128 MiB — well past L3
            };
            let passes = (bytes / (n * 8)).max(1);
            let buf: Vec<f64> = (0..n).map(|i| i as f64).collect();
            Box::new(move || {
                let start = Instant::now();
                let mut sum = 0.0f64;
                for _ in 0..passes {
                    for &x in &buf {
                        sum += x;
                    }
                    black_box(sum);
                }
                black_box(sum);
                start.elapsed().as_secs_f64()
            })
        }
    }
}

/// A synthetic sample stream for `probe`: seconds drawn deterministically
/// around the nominal value with ±2% seeded noise.
fn synthetic_kernel(probe: &Probe, seed: u64) -> Box<dyn FnMut() -> f64> {
    let nominal_seconds = probe.seconds_of(probe.nominal);
    let mut rng = TrialRng::new(seed);
    Box::new(move || nominal_seconds * (1.0 + 0.04 * (rng.next_f64() - 0.5)))
}

/// Runs the full calibration: every probe of [`PROBE_NAMES`] as a robust
/// trial, assembled into a validated [`MachineKind::Host`] model carrying
/// its [`CalibrationProvenance`]. Emits a `calibrate` span with one
/// `calibrate_probe` child (and the usual `measure` trial events) per
/// probe, a `probe` event carrying the accepted value and its evidence,
/// and `calibrate.*` counters.
///
/// # Errors
/// [`ToolError::InvalidInput`] when the assembled model fails
/// [`Machine::validate`] — possible only if measurements come back
/// degenerate (e.g. an injected fault plan corrupted every probe).
pub fn calibrate(cfg: &CalibrateConfig, tel: &Telemetry) -> Result<CalibrationOutcome, ToolError> {
    let wall_start = Instant::now();
    let template = Machine::host();
    let specs = probes(&template, cfg.quick);
    let root = tel.span("calibrate");
    tel.event(
        Level::Info,
        "calibrate_start",
        root.id(),
        &[
            ("seed", cfg.seed.into()),
            ("probes", specs.len().into()),
            (
                "mode",
                if cfg.synthetic { "synthetic" } else { "native" }.into(),
            ),
            ("quick", u64::from(cfg.quick).into()),
        ],
    );

    let dummy = TuningParams::new([1, 1, 1], Fold::new(1, 1, 1));
    let mut budget = cfg.budget;
    let mut cost = TuneCost {
        recalibrations: 1,
        ..TuneCost::default()
    };
    let mut measurements = Vec::with_capacity(specs.len());
    let mut values = Vec::with_capacity(specs.len());
    for (i, probe) in specs.iter().enumerate() {
        let span = root.child("calibrate_probe");
        tel.inc("calibrate.probes");
        let stream_seed = cfg.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
        let kernel = if cfg.synthetic {
            synthetic_kernel(probe, stream_seed)
        } else {
            native_kernel(probe, stream_seed)
        };
        let mut backend = ProbeBackend { kernel };
        let fallback_seconds = probe.seconds_of(probe.nominal);
        let trial = match cfg.faults {
            Some(plan) => {
                let mut faulty = FaultyBackend::new(backend, plan.stream(i as u64));
                run_trial_observed(
                    &mut faulty,
                    &dummy,
                    fallback_seconds,
                    &cfg.trial,
                    &mut budget,
                    tel,
                    Some(&span),
                )
            }
            None => run_trial_observed(
                &mut backend,
                &dummy,
                fallback_seconds,
                &cfg.trial,
                &mut budget,
                tel,
                Some(&span),
            ),
        };
        let record = measurement_of(probe, &trial);
        cost.engine_runs += trial.attempts;
        if trial.provenance.is_fallback() {
            cost.fallbacks += 1;
            tel.inc("calibrate.fallbacks");
        } else {
            cost.target_seconds += trial.samples.iter().sum::<f64>();
        }
        tel.add("calibrate.samples", record.samples as u64);
        tel.add("calibrate.rejected", record.rejected as u64);
        tel.event(
            Level::Info,
            "probe",
            span.id(),
            &[
                ("name", record.name.clone().into()),
                ("unit", record.unit.clone().into()),
                ("value", record.value.into()),
                ("samples", record.samples.into()),
                ("rejected", record.rejected.into()),
                ("ci_low", record.ci_low.into()),
                ("ci_high", record.ci_high.into()),
                ("provenance", trial.provenance.label().into()),
            ],
        );
        values.push(record.value);
        measurements.push(record);
    }

    let machine = assemble(&template, &specs, &values, cfg, measurements);
    machine
        .validate()
        .map_err(|e| ToolError::InvalidInput(format!("calibrated model is invalid: {e}")))?;
    tel.event(
        Level::Info,
        "calibrate_end",
        root.id(),
        &[
            ("probes", specs.len().into()),
            ("fallbacks", cost.fallbacks.into()),
            ("runs", cost.engine_runs.into()),
        ],
    );
    cost.wall_seconds = wall_start.elapsed().as_secs_f64();
    Ok(CalibrationOutcome { machine, cost })
}

/// Converts one trial into the provenance record of `probe`: the accepted
/// value plus the spread of the collected samples. A fallback trial
/// records the nominal value with zero samples.
fn measurement_of(probe: &Probe, trial: &TrialResult) -> MeasurementProvenance {
    if trial.provenance.is_fallback() || trial.samples.is_empty() {
        return MeasurementProvenance {
            name: probe.name.to_string(),
            unit: probe.unit.to_string(),
            value: probe.nominal,
            samples: 0,
            rejected: trial.rejected,
            ci_low: probe.nominal,
            ci_high: probe.nominal,
        };
    }
    let value = probe.value_of(trial.seconds_per_sweep);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &s in &trial.samples {
        let v = probe.value_of(s);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    MeasurementProvenance {
        name: probe.name.to_string(),
        unit: probe.unit.to_string(),
        value,
        samples: trial.kept,
        rejected: trial.rejected,
        ci_low: lo.min(value),
        ci_high: hi.max(value),
    }
}

/// Folds the probe values into the host template: measured cache and
/// memory bandwidths, measured memory latency, provenance attached.
fn assemble(
    template: &Machine,
    specs: &[Probe],
    values: &[f64],
    cfg: &CalibrateConfig,
    measurements: Vec<MeasurementProvenance>,
) -> Machine {
    let get = |name: &str| -> f64 {
        specs
            .iter()
            .zip(values)
            .find(|(p, _)| p.name == name)
            .map_or(0.0, |(_, v)| *v)
    };
    let mut m = template.clone();
    m.name = "Calibrated host".into();
    m.kind = MachineKind::Host;
    let freq = m.freq_ghz;
    // GB/s at freq GHz is bytes-per-cycle; clamp so a pathological probe
    // cannot produce a zero-bandwidth (invalid) level.
    if let Some(c) = m.caches.first_mut() {
        c.bytes_per_cycle = (get("load_gbs") / freq).max(1.0);
    }
    if let Some(c) = m.caches.get_mut(1) {
        c.bytes_per_cycle = (get("l2_gbs") / freq).max(1.0);
    }
    if let Some(c) = m.caches.get_mut(2) {
        c.bytes_per_cycle = (get("l3_gbs") / freq).max(1.0);
    }
    let mem = get("mem_gbs").max(0.1);
    m.mem_bw_single_core_gbs = mem;
    // A single core measured it, so it is also the best known socket
    // figure on this single-vCPU host.
    m.mem_bw_gbs = m.mem_bw_gbs.max(mem);
    m.mem_latency_cycles = get("mem_latency_cycles").clamp(1.0, 100_000.0);
    m.calibration = Some(CalibrationProvenance {
        rev: cfg.rev.clone(),
        seed: cfg.seed,
        date: cfg.date.clone(),
        measurements,
    });
    m
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's
/// algorithm), for the provenance block.
#[must_use]
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_arch::{format_machine, parse_machine};

    fn synthetic_config(seed: u64) -> CalibrateConfig {
        CalibrateConfig {
            quick: true,
            synthetic: true,
            date: "2026-08-09".into(),
            ..CalibrateConfig::new(seed)
        }
    }

    #[test]
    fn synthetic_calibration_is_deterministic_under_seed() {
        let tel = Telemetry::disabled();
        let a = calibrate(&synthetic_config(7), &tel).unwrap();
        let b = calibrate(&synthetic_config(7), &tel).unwrap();
        assert_eq!(a.machine, b.machine, "same seed, same model — bitwise");
        let c = calibrate(&synthetic_config(8), &tel).unwrap();
        assert_ne!(
            a.machine.calibration, c.machine.calibration,
            "a different seed must perturb the synthetic samples"
        );
        assert_eq!(a.cost.recalibrations, 1);
        assert!(a.cost.engine_runs > 0);
    }

    #[test]
    fn calibrated_model_passes_its_own_check_and_roundtrips() {
        let tel = Telemetry::disabled();
        let out = calibrate(&synthetic_config(42), &tel).unwrap();
        assert_eq!(out.machine.kind, MachineKind::Host);
        let check = check_calibration(&out.machine).expect("fresh calibration validates");
        assert_eq!(check.probes, PROBE_NAMES.len());
        assert_eq!(check.fallback_probes, 0);
        assert!(check.samples >= PROBE_NAMES.len(), "{check:?}");
        // Through the machine-file format and back: still a valid
        // calibrated model with identical provenance.
        let text = format_machine(&out.machine);
        let back = parse_machine(&text).expect("calibrated file parses");
        assert_eq!(back.calibration, out.machine.calibration);
        assert_eq!(back.kind, MachineKind::Host);
        check_calibration(&back).expect("round-tripped calibration validates");
        // Synthetic values sit near the builtin nominals.
        let host = Machine::host();
        assert!(
            (back.mem_bw_single_core_gbs - host.mem_bw_single_core_gbs).abs()
                < 0.1 * host.mem_bw_single_core_gbs,
            "synthetic mem bw {} vs nominal {}",
            back.mem_bw_single_core_gbs,
            host.mem_bw_single_core_gbs
        );
    }

    #[test]
    fn check_rejects_uncalibrated_and_tampered_models() {
        assert!(check_calibration(&Machine::host())
            .unwrap_err()
            .contains("no calibration block"));
        let tel = Telemetry::disabled();
        let out = calibrate(&synthetic_config(1), &tel).unwrap();
        // Drop a probe.
        let mut missing = out.machine.clone();
        missing
            .calibration
            .as_mut()
            .unwrap()
            .measurements
            .retain(|p| p.name != "mem_gbs");
        assert!(check_calibration(&missing)
            .unwrap_err()
            .contains("'mem_gbs' appears 0 times"));
        // Tamper with the model so it disagrees with its own probe.
        let mut tampered = out.machine.clone();
        tampered.mem_bw_single_core_gbs *= 0.5;
        tampered.mem_bw_gbs = tampered.mem_bw_gbs.max(tampered.mem_bw_single_core_gbs);
        assert!(check_calibration(&tampered)
            .unwrap_err()
            .contains("disagrees"));
        // Push a value outside its own CI.
        let mut out_of_ci = out.machine.clone();
        out_of_ci.calibration.as_mut().unwrap().measurements[0].value *= 100.0;
        assert!(check_calibration(&out_of_ci)
            .unwrap_err()
            .contains("outside its confidence interval"));
    }

    #[test]
    fn faulty_probes_degrade_to_the_builtin_nominals() {
        let tel = Telemetry::disabled();
        let cfg = CalibrateConfig {
            faults: Some(FaultPlan::always_fail(9)),
            ..synthetic_config(9)
        };
        let out = calibrate(&cfg, &tel).unwrap();
        let check = check_calibration(&out.machine).expect("fallback calibration still validates");
        assert_eq!(check.fallback_probes, PROBE_NAMES.len());
        assert_eq!(check.samples, 0);
        assert_eq!(out.cost.fallbacks, PROBE_NAMES.len());
        // Every value equals its nominal: the model matches the builtin.
        let host = Machine::host();
        assert!(
            (out.machine.mem_bw_single_core_gbs - host.mem_bw_single_core_gbs).abs() < 1e-9,
            "fallback must preserve the builtin bandwidth"
        );
    }

    #[test]
    fn calibration_emits_balanced_spans_and_probe_events() {
        let (tel, sink) = Telemetry::recording(Level::Debug);
        let out = calibrate(&synthetic_config(3), &tel).unwrap();
        drop(tel);
        assert!(out.machine.calibration.is_some());
        let joined = sink.lines().join("\n");
        let stats = yasksite_telemetry::check_trace(&joined).expect("balanced calibrate trace");
        assert_eq!(stats.spans_opened, stats.spans_closed);
        for name in PROBE_NAMES {
            assert!(
                joined.contains(&format!("\"name\":\"{name}\"")),
                "probe event for {name} missing"
            );
        }
        assert!(joined.contains("calibrate_start"));
        assert!(joined.contains("calibrate_end"));
    }

    #[test]
    fn today_utc_is_plausible() {
        let d = today_utc();
        assert_eq!(d.len(), 10, "{d}");
        let year: i32 = d[..4].parse().unwrap();
        assert!((2024..2200).contains(&year), "{d}");
    }
}
