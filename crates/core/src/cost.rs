//! Autotuning cost accounting (experiment E9).

use std::ops::AddAssign;

/// What a tuning session spent: the currency of the paper's
/// "minimal code generation time and autotuning costs" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuneCost {
    /// Analytic model evaluations (microseconds each).
    pub model_evals: usize,
    /// Kernel executions (simulated or native) performed.
    pub engine_runs: usize,
    /// Sum of the *estimated target-machine* seconds the executed kernels
    /// would take — what an empirical tuner burns on the real testbed.
    pub target_seconds: f64,
    /// Wall-clock seconds this process spent tuning.
    pub wall_seconds: f64,
    /// Seconds spent generating kernel source.
    pub codegen_seconds: f64,
}

impl AddAssign for TuneCost {
    fn add_assign(&mut self, rhs: TuneCost) {
        self.model_evals += rhs.model_evals;
        self.engine_runs += rhs.engine_runs;
        self.target_seconds += rhs.target_seconds;
        self.wall_seconds += rhs.wall_seconds;
        self.codegen_seconds += rhs.codegen_seconds;
    }
}

impl TuneCost {
    /// One-line summary for tables.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} model evals, {} runs, {:.3}s target time, {:.3}s wall",
            self.model_evals, self.engine_runs, self.target_seconds, self.wall_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = TuneCost::default();
        a += TuneCost {
            model_evals: 3,
            engine_runs: 1,
            target_seconds: 0.5,
            wall_seconds: 0.1,
            codegen_seconds: 0.01,
        };
        a += TuneCost {
            model_evals: 2,
            ..TuneCost::default()
        };
        assert_eq!(a.model_evals, 5);
        assert_eq!(a.engine_runs, 1);
        assert!(a.summary().contains("5 model evals"));
    }
}
