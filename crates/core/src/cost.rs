//! Autotuning cost accounting (experiment E9).

use std::ops::AddAssign;

/// What a tuning session spent: the currency of the paper's
/// "minimal code generation time and autotuning costs" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuneCost {
    /// Analytic model evaluations (microseconds each). Counts every time
    /// a strategy *consulted* the model, whether or not the answer came
    /// from the prediction cache.
    pub model_evals: usize,
    /// Kernel executions (simulated or native) performed.
    pub engine_runs: usize,
    /// Sum of the *estimated target-machine* seconds the executed kernels
    /// would take — what an empirical tuner burns on the real testbed.
    pub target_seconds: f64,
    /// Wall-clock seconds this process spent tuning.
    pub wall_seconds: f64,
    /// Seconds spent generating kernel source.
    pub codegen_seconds: f64,
    /// Predictions served from the memoized [`crate::PredictionCache`]
    /// without recomputation.
    pub cache_hits: usize,
    /// Predictions computed fresh (and stored for later sessions).
    pub cache_misses: usize,
}

impl AddAssign for TuneCost {
    fn add_assign(&mut self, rhs: TuneCost) {
        self.model_evals += rhs.model_evals;
        self.engine_runs += rhs.engine_runs;
        self.target_seconds += rhs.target_seconds;
        self.wall_seconds += rhs.wall_seconds;
        self.codegen_seconds += rhs.codegen_seconds;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
    }
}

impl TuneCost {
    /// One-line summary for tables.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} model evals ({} cached), {} runs, {:.3}s target time, {:.3}s wall",
            self.model_evals,
            self.cache_hits,
            self.engine_runs,
            self.target_seconds,
            self.wall_seconds
        )
    }

    /// This cost with the cache counters zeroed — what the determinism
    /// guarantee compares, since hit/miss splits depend on cache warmth,
    /// not on the tuning outcome.
    #[must_use]
    pub fn without_cache_counters(&self) -> TuneCost {
        TuneCost {
            cache_hits: 0,
            cache_misses: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = TuneCost::default();
        a += TuneCost {
            model_evals: 3,
            engine_runs: 1,
            target_seconds: 0.5,
            wall_seconds: 0.1,
            codegen_seconds: 0.01,
            cache_hits: 2,
            cache_misses: 1,
        };
        a += TuneCost {
            model_evals: 2,
            cache_hits: 1,
            ..TuneCost::default()
        };
        assert_eq!(a.model_evals, 5);
        assert_eq!(a.engine_runs, 1);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_misses, 1);
        assert!(a.summary().contains("5 model evals"));
    }

    #[test]
    fn cache_counters_strippable() {
        let a = TuneCost {
            model_evals: 7,
            cache_hits: 4,
            cache_misses: 3,
            ..TuneCost::default()
        };
        let b = TuneCost {
            model_evals: 7,
            cache_hits: 0,
            cache_misses: 7,
            ..TuneCost::default()
        };
        assert_ne!(a, b);
        assert_eq!(a.without_cache_counters(), b.without_cache_counters());
    }
}
