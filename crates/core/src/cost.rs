//! Autotuning cost accounting (experiment E9).

use std::ops::AddAssign;

/// What a tuning session spent: the currency of the paper's
/// "minimal code generation time and autotuning costs" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TuneCost {
    /// Analytic model evaluations (microseconds each). Counts every time
    /// a strategy *consulted* the model, whether or not the answer came
    /// from the prediction cache.
    pub model_evals: usize,
    /// Kernel executions (simulated or native) performed.
    pub engine_runs: usize,
    /// Sum of the *estimated target-machine* seconds the executed kernels
    /// would take — what an empirical tuner burns on the real testbed.
    /// Only genuinely measured candidates charge here; a trial that fell
    /// back to its analytic prediction executed nothing on the target.
    pub target_seconds: f64,
    /// Wall-clock seconds this process spent tuning.
    pub wall_seconds: f64,
    /// Wall-clock seconds spent generating kernel source for the winner.
    pub codegen_seconds: f64,
    /// Predictions served from the memoized [`crate::PredictionCache`]
    /// without recomputation.
    pub cache_hits: usize,
    /// Predictions computed fresh (and stored for later sessions).
    pub cache_misses: usize,
    /// Trials that fell back to the analytic prediction instead of a
    /// measurement (matches [`crate::TrialSummary::fallbacks`]).
    pub fallbacks: usize,
    /// Measured trials whose predicted-vs-measured residual entered the
    /// session's [`crate::DriftLedger`] (= measured, non-fallback
    /// trials; deterministic for a fixed request).
    pub drift_records: usize,
    /// Stencils the ledger flagged model suspect (p95 absolute drift
    /// beyond [`yasksite_ecm::DRIFT_SUSPECT_THRESHOLD`]). Depends on
    /// measured throughput, so — like wall time — it varies run to run
    /// on a real host.
    pub drift_suspects: usize,
    /// Drift records evicted by a bounded [`crate::DriftLedger`]
    /// (oldest-first per `(stencil, params, cores)` key). Zero unless the
    /// session asked for a cap; deterministic for a fixed request.
    pub drift_evictions: usize,
    /// Machine-calibration passes folded into this cost (each
    /// [`crate::calibrate`] run counts one).
    pub recalibrations: usize,
    /// Model-correction re-rankings the online drift feedback loop
    /// applied after a key crossed the SUSPECT threshold. Depends on
    /// measured throughput, like `drift_suspects`.
    pub corrections_applied: usize,
}

impl AddAssign for TuneCost {
    fn add_assign(&mut self, rhs: TuneCost) {
        self.model_evals += rhs.model_evals;
        self.engine_runs += rhs.engine_runs;
        self.target_seconds += rhs.target_seconds;
        self.wall_seconds += rhs.wall_seconds;
        self.codegen_seconds += rhs.codegen_seconds;
        self.cache_hits += rhs.cache_hits;
        self.cache_misses += rhs.cache_misses;
        self.fallbacks += rhs.fallbacks;
        self.drift_records += rhs.drift_records;
        self.drift_suspects += rhs.drift_suspects;
        self.drift_evictions += rhs.drift_evictions;
        self.recalibrations += rhs.recalibrations;
        self.corrections_applied += rhs.corrections_applied;
    }
}

impl TuneCost {
    /// One-line summary for tables: the full cost ledger — model evals
    /// (with the cached share), engine runs, fallbacks, drift records
    /// (with the suspect count), target time, codegen time and wall
    /// time.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} model evals ({} cached), {} runs, {} fallbacks, {} drift records ({} suspect, {} evicted), {:.3}s target time, {:.3}s codegen, {:.3}s wall",
            self.model_evals,
            self.cache_hits,
            self.engine_runs,
            self.fallbacks,
            self.drift_records,
            self.drift_suspects,
            self.drift_evictions,
            self.target_seconds,
            self.codegen_seconds,
            self.wall_seconds
        );
        if self.recalibrations > 0 || self.corrections_applied > 0 {
            s.push_str(&format!(
                ", {} recalibrations, {} corrections applied",
                self.recalibrations, self.corrections_applied
            ));
        }
        s
    }

    /// This cost with the cache counters zeroed — what the determinism
    /// guarantee compares, since hit/miss splits depend on cache warmth,
    /// not on the tuning outcome.
    #[must_use]
    pub fn without_cache_counters(&self) -> TuneCost {
        TuneCost {
            cache_hits: 0,
            cache_misses: 0,
            ..*self
        }
    }

    /// This cost with the wall-clock-dependent fields
    /// (`wall_seconds`, `codegen_seconds`, `drift_suspects` and
    /// `corrections_applied` — both derive from measured throughput)
    /// zeroed — the other half of the determinism comparison, since wall
    /// time varies run to run even when the tuning outcome is
    /// bitwise-identical.
    #[must_use]
    pub fn without_wall_clock(&self) -> TuneCost {
        TuneCost {
            wall_seconds: 0.0,
            codegen_seconds: 0.0,
            drift_suspects: 0,
            corrections_applied: 0,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut a = TuneCost::default();
        a += TuneCost {
            model_evals: 3,
            engine_runs: 1,
            target_seconds: 0.5,
            wall_seconds: 0.1,
            codegen_seconds: 0.01,
            cache_hits: 2,
            cache_misses: 1,
            fallbacks: 1,
            drift_records: 1,
            drift_suspects: 1,
            drift_evictions: 1,
            recalibrations: 1,
            corrections_applied: 2,
        };
        a += TuneCost {
            model_evals: 2,
            cache_hits: 1,
            drift_records: 2,
            ..TuneCost::default()
        };
        assert_eq!(a.model_evals, 5);
        assert_eq!(a.engine_runs, 1);
        assert_eq!(a.cache_hits, 3);
        assert_eq!(a.cache_misses, 1);
        assert_eq!(a.fallbacks, 1);
        assert_eq!(a.drift_records, 3);
        assert_eq!(a.drift_suspects, 1);
        assert_eq!(a.drift_evictions, 1);
        assert_eq!(a.recalibrations, 1);
        assert_eq!(a.corrections_applied, 2);
        assert!(a.summary().contains("5 model evals"));
        assert!(a
            .summary()
            .contains("1 recalibrations, 2 corrections applied"));
    }

    #[test]
    fn summary_reports_the_full_ledger() {
        let c = TuneCost {
            model_evals: 10,
            engine_runs: 4,
            target_seconds: 1.5,
            wall_seconds: 0.25,
            codegen_seconds: 0.125,
            cache_hits: 6,
            cache_misses: 4,
            fallbacks: 2,
            drift_records: 2,
            drift_suspects: 1,
            drift_evictions: 3,
            recalibrations: 0,
            corrections_applied: 0,
        };
        let s = c.summary();
        assert!(s.contains("10 model evals (6 cached)"), "{s}");
        assert!(s.contains("4 runs"), "{s}");
        assert!(s.contains("2 fallbacks"), "{s}");
        assert!(s.contains("2 drift records (1 suspect, 3 evicted)"), "{s}");
        assert!(s.contains("1.500s target time"), "{s}");
        assert!(s.contains("0.125s codegen"), "{s}");
        assert!(s.contains("0.250s wall"), "{s}");
        assert!(
            !s.contains("recalibrations"),
            "the calibration tail only appears when non-zero: {s}"
        );
    }

    #[test]
    fn cache_counters_strippable() {
        let a = TuneCost {
            model_evals: 7,
            cache_hits: 4,
            cache_misses: 3,
            ..TuneCost::default()
        };
        let b = TuneCost {
            model_evals: 7,
            cache_hits: 0,
            cache_misses: 7,
            ..TuneCost::default()
        };
        assert_ne!(a, b);
        assert_eq!(a.without_cache_counters(), b.without_cache_counters());
    }

    #[test]
    fn wall_clock_strippable() {
        let a = TuneCost {
            engine_runs: 2,
            wall_seconds: 0.7,
            codegen_seconds: 0.1,
            drift_records: 2,
            drift_suspects: 1,
            corrections_applied: 3,
            ..TuneCost::default()
        };
        let b = TuneCost {
            engine_runs: 2,
            wall_seconds: 1.9,
            codegen_seconds: 0.4,
            drift_records: 2,
            drift_suspects: 0,
            ..TuneCost::default()
        };
        assert_ne!(a, b);
        assert_eq!(a.without_wall_clock(), b.without_wall_clock());
        assert_eq!(a.without_wall_clock().engine_runs, 2);
        assert_eq!(
            a.without_wall_clock().drift_records,
            2,
            "drift_records is deterministic and must survive the strip"
        );
    }
}
