//! The crash-safe tuning daemon behind `yasksite serve`.
//!
//! The daemon accepts line-delimited JSON requests on stdin (or a Unix
//! socket) and answers each with one JSON line. Five operations exist:
//!
//! * `tune` — run a tuning session and return the winner;
//! * `predict` — one analytic prediction through the shared cache;
//! * `report` — daemon status (counters, cache and store sizes);
//! * `status` — the full observability snapshot (schema-v1 JSON, or the
//!   Prometheus text exposition with `"format":"prom"`): queue depth,
//!   rolling-window latency percentiles per request kind and tenant,
//!   tier mix, drift-SUSPECT count, pool occupancy;
//! * `shutdown` — drain queued requests, snapshot state, exit.
//!
//! ```text
//! {"id":"t1","op":"tune","stencil":"heat-3d-r1","domain":"32x16x16",
//!  "machine":"clx","cores":2,"strategy":"hybrid","samples":2,
//!  "tenant":"ci","deadline_ms":5000}
//! ```
//!
//! # Robustness properties
//!
//! * **Admission control** — per-tenant [`TrialBudget`]-style caps on
//!   measurement runs and target seconds; an exhausted tenant is rejected
//!   with `"kind":"tenant_budget_exhausted"` before any work starts, and
//!   a session never receives more budget than the tenant has left.
//! * **Backpressure** — requests flow through a bounded queue. When it is
//!   full the reader rejects immediately with `"kind":"overloaded"`
//!   instead of buffering without bound or blocking the pipe.
//! * **Deadlines** — `deadline_ms` (or the daemon-wide default) becomes
//!   the [`TrialConfig::deadline`] watchdog: a stuck trial is cancelled
//!   at the deadline and degrades to its analytic fallback.
//! * **Panic isolation** — each tuning session runs under
//!   `catch_unwind`; a panicking measurement backend degrades that one
//!   request to a purely analytic session (`"degraded":true`) instead of
//!   killing the daemon.
//! * **Persistence** — with `--state-dir`, predictions and drift history
//!   live in the crash-safe journals of [`PersistentStore`]; on SIGTERM
//!   or `shutdown` the daemon finishes in-flight requests, compacts the
//!   journals and exits 0. A restart warm-starts the cache (verified
//!   against the live model) so repeated requests are served from memory.
//!
//! The protocol handler ([`ServeState::handle_line`]) is a pure
//! line-in/line-out function so every policy above is unit-testable
//! without process machinery.
//!
//! # Observability
//!
//! Every request gets a stable id (`r000001`, …) and — while the
//! head-sampling budget ([`ServeConfig::trace_sample`]) lasts — a span
//! tree (`request` → `admission`/`tune`/`predict`/`persist`) plus
//! `request_start`/`request_end` events through the configured
//! telemetry sink. Requests past the budget run with a *quiet*
//! telemetry handle ([`yasksite_telemetry::Telemetry::quiet`]): no
//! events or spans, but counters and histograms keep aggregating, so
//! the trace stream stays bounded while `status` stays complete.
//! Queue wait, service time and end-to-end latency land in 60-second
//! rolling windows per request kind (and per tenant), which the
//! `status` operation digests to p50/p95/p99. With `--state-dir` the
//! same snapshot is rewritten atomically to `status.json` after every
//! request, so `yasksite top <state-dir>` can watch a daemon without a
//! socket. Telemetry stays purely observational: responses are bitwise
//! identical whether tracing is off, sampled, or full.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvTimeoutError, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use yasksite_arch::Machine;
use yasksite_telemetry::json::{parse, write_escaped, write_f64, Json};
use yasksite_telemetry::{Level, RollingCounter, RollingHistogram, SpanGuard, Telemetry};

use crate::cache::PredictionCache;
use crate::cli::{parse_triple, stencil_by_name};
use crate::drift::DriftLedger;
use crate::persist::PersistentStore;
use crate::request::TuneRequest;
use crate::solution::Solution;
use crate::space::SearchSpace;
use crate::status::{
    CalibrationStatus, LatencyDigest, StatusSnapshot, TenantUsage, PROM_CONTENT_TYPE,
};
use crate::trial::{FallbackReason, FaultPlan, Provenance, TrialBudget, TrialConfig};
use crate::tuner::TuneStrategy;

/// Daemon-wide shutdown flag, set by the binary's SIGTERM/SIGINT handler
/// (and by tests). The serve loops poll it between requests.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The process-wide shutdown flag the signal handler stores into.
#[must_use]
pub fn shutdown_flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory for the crash-safe journals; `None` serves from memory
    /// only.
    pub state_dir: Option<PathBuf>,
    /// Bound on queued (accepted but unprocessed) requests; further
    /// requests are rejected with `"kind":"overloaded"`.
    pub queue_capacity: usize,
    /// Default per-request deadline in milliseconds when the request
    /// carries none; `None` never cancels.
    pub default_deadline_ms: Option<u64>,
    /// Per-tenant cap on measurement runs across the daemon's lifetime.
    pub tenant_runs: Option<usize>,
    /// Per-tenant cap on accumulated target seconds.
    pub tenant_secs: Option<f64>,
    /// Cap on drift records per `(stencil, params, cores)` key in the
    /// daemon's long-lived ledger (oldest evicted first).
    pub drift_cap: Option<usize>,
    /// Head-sampling budget: the first N requests are traced in full
    /// (spans + events); later requests run with a quiet handle that
    /// still aggregates metrics. `None` traces every request.
    pub trace_sample: Option<u64>,
    /// Telemetry handle all sessions record into.
    pub telemetry: Telemetry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            state_dir: None,
            queue_capacity: 16,
            default_deadline_ms: None,
            tenant_runs: None,
            tenant_secs: None,
            drift_cap: Some(64),
            trace_sample: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Counters the daemon accumulates over its lifetime (returned when the
/// serve loop exits, and reported live by the `report` operation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests that reached the protocol handler.
    pub received: usize,
    /// Requests answered with `"ok":true`.
    pub completed: usize,
    /// Requests rejected because the queue was full.
    pub rejected_overload: usize,
    /// Requests rejected by tenant admission control.
    pub rejected_budget: usize,
    /// Requests answered with `"ok":false` for any other reason.
    pub rejected_bad: usize,
    /// Tuning sessions that degraded to analytic after a worker panic.
    pub degraded: usize,
    /// Journal appends or snapshots that failed (state kept in memory).
    pub persist_errors: usize,
}

/// Per-tenant consumption, charged after each tuning session.
#[derive(Debug, Clone, Copy, Default)]
struct TenantUse {
    runs: usize,
    seconds: f64,
}

/// Width of the rolling latency/rate window the `status` snapshot
/// covers, in seconds.
const STATUS_WINDOW_SECS: f64 = 60.0;

/// Cap on distinct tenant keys in the per-tenant latency windows;
/// further tenants aggregate under `"other"` so a tenant-per-request
/// client cannot grow the daemon without bound.
const MAX_TENANT_WINDOWS: usize = 32;

/// The daemon's rolling observability windows: request rate plus
/// queue-wait / service / end-to-end latency histograms per request
/// kind and per tenant. Memory is bounded: kinds come from the fixed
/// protocol vocabulary, tenants are capped at [`MAX_TENANT_WINDOWS`],
/// and every histogram holds at most its slot budget.
struct ServeWindows {
    requests: RollingCounter,
    queue_wait_ms: BTreeMap<String, RollingHistogram>,
    service_ms: BTreeMap<String, RollingHistogram>,
    e2e_ms: BTreeMap<String, RollingHistogram>,
    tenant_e2e_ms: BTreeMap<String, RollingHistogram>,
}

fn window_entry<'a>(
    map: &'a mut BTreeMap<String, RollingHistogram>,
    key: &str,
) -> &'a mut RollingHistogram {
    if !map.contains_key(key) {
        map.insert(
            key.to_string(),
            RollingHistogram::for_latency_ms(STATUS_WINDOW_SECS),
        );
    }
    map.get_mut(key).expect("just inserted")
}

impl ServeWindows {
    fn new() -> Self {
        ServeWindows {
            requests: RollingCounter::new(STATUS_WINDOW_SECS, 8),
            queue_wait_ms: BTreeMap::new(),
            service_ms: BTreeMap::new(),
            e2e_ms: BTreeMap::new(),
            tenant_e2e_ms: BTreeMap::new(),
        }
    }

    fn record(
        &mut self,
        now: f64,
        kind: &str,
        tenant: Option<&str>,
        wait_ms: f64,
        service_ms: f64,
    ) {
        self.requests.add_at(now, 1);
        window_entry(&mut self.queue_wait_ms, kind).observe_at(now, wait_ms);
        window_entry(&mut self.service_ms, kind).observe_at(now, service_ms);
        window_entry(&mut self.e2e_ms, kind).observe_at(now, wait_ms + service_ms);
        if let Some(t) = tenant {
            let key = if self.tenant_e2e_ms.contains_key(t)
                || self.tenant_e2e_ms.len() < MAX_TENANT_WINDOWS
            {
                t
            } else {
                "other"
            };
            window_entry(&mut self.tenant_e2e_ms, key).observe_at(now, wait_ms + service_ms);
        }
    }

    fn digest(
        map: &BTreeMap<String, RollingHistogram>,
        now: f64,
    ) -> BTreeMap<String, LatencyDigest> {
        map.iter()
            .filter_map(|(k, h)| {
                let s = h.snapshot_at(now);
                s.percentiles().map(|p| {
                    (
                        k.clone(),
                        LatencyDigest {
                            count: p.count,
                            sum: s.sum,
                            p50: p.p50,
                            p95: p.p95,
                            p99: p.p99,
                        },
                    )
                })
            })
            .collect()
    }
}

/// The daemon's long-lived state plus the protocol handler. One request
/// is processed at a time; the queue in front provides the backpressure.
pub struct ServeState {
    config: ServeConfig,
    store: Option<PersistentStore>,
    cache: Arc<PredictionCache>,
    ledger: DriftLedger,
    tenants: HashMap<String, TenantUse>,
    warmed: HashSet<u64>,
    stats: ServeStats,
    shutdown_requested: bool,
    /// Monotone request sequence; the source of request ids and of the
    /// head-sampling decision.
    seq: u64,
    /// When this state was built — the epoch of the rolling windows.
    started: Instant,
    windows: ServeWindows,
    /// Completed tuning sessions per winning tier name.
    tier_ran: BTreeMap<String, u64>,
    /// Completed tuning sessions whose winner planned onto a degraded
    /// tier, keyed by the planner's reason (a small fixed vocabulary).
    tier_degraded: BTreeMap<String, u64>,
    /// Live queue depth, shared with the serve loop (`None` when the
    /// state is driven directly, e.g. the Unix-socket path or tests).
    queue_depth: Option<Arc<AtomicUsize>>,
    /// Overload rejections counted by the reader thread.
    overloads: Option<Arc<AtomicUsize>>,
    /// Calibration provenance of `<state-dir>/machine.calibrated`, when
    /// the daemon found one at startup. `age_secs` holds the file's age
    /// at load; snapshots add the uptime since.
    calibration: Option<CalibrationStatus>,
}

/// Name of the calibrated machine file a daemon looks for in its state
/// directory (the conventional `yasksite calibrate --out` target).
pub const CALIBRATED_MACHINE_FILE: &str = "machine.calibrated";

/// Loads the calibration provenance of `<dir>/machine.calibrated`, if
/// present and valid. Invalid files are reported, not fatal.
fn load_calibration(dir: &std::path::Path, tel: &Telemetry) -> Option<CalibrationStatus> {
    let path = dir.join(CALIBRATED_MACHINE_FILE);
    let text = std::fs::read_to_string(&path).ok()?;
    let age_secs = std::fs::metadata(&path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .map_or(0.0, |d| d.as_secs_f64());
    match yasksite_arch::parse_machine(&text) {
        Ok(m) => m.calibration.map(|c| CalibrationStatus {
            rev: c.rev,
            seed: c.seed,
            date: c.date,
            probes: c.measurements.len(),
            age_secs,
        }),
        Err(e) => {
            tel.error(&format!(
                "calibrated machine file '{}' unusable: {e}",
                path.display()
            ));
            tel.inc("serve.calibration_unusable");
            None
        }
    }
}

/// Incremental JSON-object writer for responses (hand-rolled; the
/// workspace has no serde derive machinery).
struct JsonOut {
    buf: String,
}

impl JsonOut {
    fn new(id: &str, ok: bool) -> Self {
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"id\":");
        write_escaped(&mut buf, id);
        buf.push_str(",\"ok\":");
        buf.push_str(if ok { "true" } else { "false" });
        JsonOut { buf }
    }

    fn key(&mut self, k: &str) {
        self.buf.push(',');
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        write_escaped(&mut self.buf, v);
        self
    }

    fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    fn uint(mut self, k: &str, v: usize) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    fn boolean(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn error_response(id: &str, kind: &str, message: &str) -> String {
    JsonOut::new(id, false)
        .str("kind", kind)
        .str("error", message)
        .finish()
}

/// Extracts the request id from a raw line (string ids verbatim, numeric
/// ids stringified, everything else empty).
fn extract_id(parsed: &Json) -> String {
    match parsed.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => {
            let mut s = String::new();
            write_f64(&mut s, *n);
            s
        }
        _ => String::new(),
    }
}

/// The rejection the reader writes when the request queue is full. Public
/// so the backpressure contract is directly testable.
#[must_use]
pub fn overload_response(line: &str) -> String {
    let id = parse(line).map(|j| extract_id(&j)).unwrap_or_default();
    error_response(&id, "overloaded", "request queue is full; retry later")
}

fn get_str<'a>(req: &'a Json, key: &str) -> Option<&'a str> {
    req.get(key).and_then(Json::as_str)
}

fn get_u64(req: &Json, key: &str) -> Option<u64> {
    req.get(key).and_then(Json::as_u64)
}

fn get_f64(req: &Json, key: &str) -> Option<f64> {
    req.get(key).and_then(Json::as_f64)
}

/// Builds a [`FaultPlan`] from the optional `"faults"` object of a tune
/// request (testing hook: lets harnesses exercise fallback, panic
/// isolation and I/O degradation through the protocol).
fn faults_from_json(obj: &Json) -> FaultPlan {
    let f = |key: &str, default: f64| get_f64(obj, key).unwrap_or(default);
    let base = FaultPlan::none();
    FaultPlan {
        seed: get_u64(obj, "seed").unwrap_or(base.seed),
        fail_prob: f("fail_prob", base.fail_prob),
        nan_prob: f("nan_prob", base.nan_prob),
        spike_prob: f("spike_prob", base.spike_prob),
        spike_factor: f("spike_factor", base.spike_factor),
        panic_prob: f("panic_prob", base.panic_prob),
        io_short_prob: f("io_short_prob", base.io_short_prob),
        io_corrupt_prob: f("io_corrupt_prob", base.io_corrupt_prob),
        io_enospc_prob: f("io_enospc_prob", base.io_enospc_prob),
    }
}

/// Resolves `stencil`/`domain`/`machine` request fields into a
/// [`Solution`].
fn solution_from_request(req: &Json) -> Result<(Solution, Machine, [usize; 3]), String> {
    let sname = get_str(req, "stencil").ok_or("'stencil' is required")?;
    let stencil = stencil_by_name(sname).ok_or_else(|| format!("unknown stencil '{sname}'"))?;
    let domain = parse_triple(get_str(req, "domain").ok_or("'domain' is required (AxBxC)")?)?;
    let mname = get_str(req, "machine").unwrap_or("clx");
    let machine = Machine::by_short_name(mname)
        .ok_or_else(|| format!("unknown machine '{mname}' (clx|rome|host)"))?;
    let sol = Solution::new(stencil, domain, machine.clone());
    Ok((sol, machine, domain))
}

impl ServeState {
    /// Builds the daemon state, opening (and if necessary recovering) the
    /// persistent store. A store that cannot be opened degrades the
    /// daemon to memory-only serving rather than failing startup.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        let tel = config.telemetry.clone();
        let store =
            config
                .state_dir
                .as_ref()
                .and_then(|dir| match PersistentStore::open(dir, &tel) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        tel.error(&format!("state dir '{}' unusable: {e}", dir.display()));
                        tel.inc("serve.state_degraded");
                        None
                    }
                });
        let state_degraded = config.state_dir.is_some() && store.is_none();
        let ledger = match config.drift_cap {
            Some(cap) => DriftLedger::bounded(cap),
            None => DriftLedger::new(),
        };
        let calibration = config
            .state_dir
            .as_ref()
            .and_then(|dir| load_calibration(dir, &tel));
        if let Some(c) = &calibration {
            tel.event(
                Level::Info,
                "calibration_loaded",
                0,
                &[
                    ("rev", c.rev.as_str().into()),
                    ("seed", c.seed.into()),
                    ("date", c.date.as_str().into()),
                    ("probes", c.probes.into()),
                    ("age_secs", c.age_secs.into()),
                ],
            );
        }
        let mut state = ServeState {
            config,
            store,
            cache: Arc::new(PredictionCache::new()),
            ledger,
            tenants: HashMap::new(),
            warmed: HashSet::new(),
            stats: ServeStats::default(),
            shutdown_requested: false,
            seq: 0,
            started: Instant::now(),
            windows: ServeWindows::new(),
            tier_ran: BTreeMap::new(),
            tier_degraded: BTreeMap::new(),
            queue_depth: None,
            overloads: None,
            calibration,
        };
        if state_degraded {
            state.stats.persist_errors += 1;
        }
        state
    }

    /// Lifetime counters so far.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.stats
    }

    /// Whether a `shutdown` request has been handled (the serve loop
    /// drains and exits once this is set).
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }

    /// The shared prediction cache (exposed for tests).
    #[must_use]
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Attaches the serve loop's live queue-depth and overload counters
    /// so `status` snapshots can report them.
    pub fn attach_queue_gauges(&mut self, depth: Arc<AtomicUsize>, overloads: Arc<AtomicUsize>) {
        self.queue_depth = Some(depth);
        self.overloads = Some(overloads);
    }

    /// Handles one request line, returning the response line (`None` for
    /// blank lines). Never panics and never exits: every failure becomes
    /// an `"ok":false` response.
    pub fn handle_line(&mut self, line: &str) -> Option<String> {
        self.handle_line_at(line, None)
    }

    /// [`ServeState::handle_line`] with the time the request spent in
    /// the admission queue (the serve loop measures it; direct callers
    /// pass `None`, recorded as zero wait).
    pub fn handle_line_at(&mut self, line: &str, queue_wait: Option<Duration>) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        self.seq += 1;
        self.stats.received += 1;
        // Head sampling: the first `trace_sample` requests trace fully;
        // the rest run quiet (metrics aggregate, no events/spans), so a
        // long-lived daemon's trace stream stays bounded.
        let sampled = self.config.trace_sample.is_none_or(|n| self.seq <= n);
        let tel = if sampled {
            self.config.telemetry.clone()
        } else {
            self.config.telemetry.quiet()
        };
        tel.inc("serve.requests");
        if !sampled {
            tel.inc("serve.trace_unsampled");
        }
        let rid = format!("r{:06}", self.seq);
        let wait_ms = queue_wait.map_or(0.0, |d| d.as_secs_f64() * 1e3);
        let service_start = Instant::now();
        let span = tel.span("request");
        tel.event(
            Level::Info,
            "request_start",
            span.id(),
            &[
                ("rid", rid.as_str().into()),
                ("queue_wait_ms", wait_ms.into()),
                ("sampled", sampled.into()),
            ],
        );
        let (kind, tenant, response) = match parse(line) {
            Err(e) => {
                self.stats.rejected_bad += 1;
                (
                    "bad",
                    None,
                    error_response("", "bad_request", &format!("invalid JSON: {e}")),
                )
            }
            Ok(parsed) => {
                let id = extract_id(&parsed);
                match get_str(&parsed, "op") {
                    Some("tune") => {
                        let tenant = get_str(&parsed, "tenant")
                            .unwrap_or("anonymous")
                            .to_string();
                        let resp = self.op_tune(&id, &parsed, &tel, &span);
                        ("tune", Some(tenant), resp)
                    }
                    Some("predict") => {
                        let resp = self.op_predict(&id, &parsed, &tel, &span);
                        ("predict", None, resp)
                    }
                    Some("report") => ("report", None, self.op_report(&id)),
                    Some("status") => ("status", None, self.op_status(&id, &parsed)),
                    Some("shutdown") => {
                        self.shutdown_requested = true;
                        self.stats.completed += 1;
                        let resp = JsonOut::new(&id, true)
                            .str("op", "shutdown")
                            .boolean("draining", true)
                            .finish();
                        ("shutdown", None, resp)
                    }
                    Some(other) => {
                        self.stats.rejected_bad += 1;
                        (
                            "bad",
                            None,
                            error_response(&id, "bad_request", &format!("unknown op '{other}'")),
                        )
                    }
                    None => {
                        self.stats.rejected_bad += 1;
                        (
                            "bad",
                            None,
                            error_response(&id, "bad_request", "'op' is required"),
                        )
                    }
                }
            }
        };
        let service_ms = service_start.elapsed().as_secs_f64() * 1e3;
        let now = self.started.elapsed().as_secs_f64();
        self.windows
            .record(now, kind, tenant.as_deref(), wait_ms, service_ms);
        tel.observe("serve.service_ms", service_ms);
        tel.event(
            Level::Info,
            "request_end",
            span.id(),
            &[
                ("rid", rid.as_str().into()),
                ("kind", kind.into()),
                ("queue_wait_ms", wait_ms.into()),
                ("service_ms", service_ms.into()),
                ("e2e_ms", (wait_ms + service_ms).into()),
            ],
        );
        drop(span);
        self.refresh_status_file();
        Some(response)
    }

    /// Warm-starts the cache for `sol` from the persistent store, once
    /// per solution per daemon lifetime. Returns `(loaded, stale)`.
    fn ensure_warm(&mut self, sol: &Solution) -> (usize, usize) {
        let Some(store) = &self.store else {
            return (0, 0);
        };
        if !self.warmed.insert(sol.signature()) {
            return (0, 0);
        }
        let stats = store.warm_solution(sol, &self.cache);
        if stats.stale > 0 {
            self.config
                .telemetry
                .add("serve.warm_stale", stats.stale as u64);
        }
        self.config
            .telemetry
            .add("serve.warm_loaded", stats.loaded as u64);
        (stats.loaded, stats.stale)
    }

    /// Remaining budget for `tenant` under the daemon caps.
    fn tenant_remaining(&self, tenant: &str) -> TrialBudget {
        let used = self.tenants.get(tenant).copied().unwrap_or_default();
        TrialBudget {
            max_runs: self
                .config
                .tenant_runs
                .map(|cap| cap.saturating_sub(used.runs)),
            max_seconds: self
                .config
                .tenant_secs
                .map(|cap| (cap - used.seconds).max(0.0)),
            runs_used: 0,
            seconds_used: 0.0,
        }
    }

    fn op_tune(&mut self, id: &str, req: &Json, tel: &Telemetry, parent: &SpanGuard) -> String {
        let (sol, machine, domain) = match solution_from_request(req) {
            Ok(t) => t,
            Err(e) => {
                self.stats.rejected_bad += 1;
                return error_response(id, "bad_request", &e);
            }
        };
        let strategy = match get_str(req, "strategy").unwrap_or("analytic") {
            "analytic" => TuneStrategy::Analytic,
            "hybrid" => TuneStrategy::Hybrid { shortlist: 3 },
            "empirical" => TuneStrategy::Empirical,
            other => {
                self.stats.rejected_bad += 1;
                return error_response(id, "bad_request", &format!("unknown strategy '{other}'"));
            }
        };
        let tenant = get_str(req, "tenant").unwrap_or("anonymous").to_string();

        // Admission control: reject before any work when the tenant has
        // nothing left; otherwise the session budget is capped at the
        // intersection of the request's asks and the tenant's remainder.
        let remaining = {
            let _admission = parent.child("admission");
            self.tenant_remaining(&tenant)
        };
        if remaining.max_runs == Some(0) || remaining.max_seconds.is_some_and(|s| s <= 0.0) {
            self.stats.rejected_budget += 1;
            tel.inc("serve.rejected_budget");
            return error_response(
                id,
                "tenant_budget_exhausted",
                &format!("tenant '{tenant}' has no measurement budget left"),
            );
        }
        let mut budget = remaining;
        if let Some(r) = get_u64(req, "budget_runs") {
            let r = r as usize;
            budget.max_runs = Some(budget.max_runs.map_or(r, |m| m.min(r)));
        }
        if let Some(s) = get_f64(req, "budget_secs") {
            budget.max_seconds = Some(budget.max_seconds.map_or(s, |m| m.min(s)));
        }

        let mut trial = match get_u64(req, "samples") {
            Some(n) => TrialConfig {
                samples: (n as usize).max(1),
                ..TrialConfig::default()
            },
            None => TrialConfig::single_shot(),
        };
        let deadline_ms = get_u64(req, "deadline_ms").or(self.config.default_deadline_ms);
        if let Some(ms) = deadline_ms {
            trial = trial.deadline_at(Instant::now() + Duration::from_millis(ms));
        }

        let mut tune_req = TuneRequest::new(strategy)
            .cores(get_u64(req, "cores").unwrap_or(1).max(1) as usize)
            .trial(trial)
            .budget(budget)
            .cache(Arc::clone(&self.cache))
            .telemetry(tel.clone());
        if let Some(cap) = self.config.drift_cap {
            tune_req = tune_req.drift_cap(cap);
        }
        if let Some(j) = get_u64(req, "jobs") {
            tune_req = tune_req.jobs((j as usize).max(1));
        }
        if let Some(obj) = req.get("faults") {
            tune_req = tune_req.faults(faults_from_json(obj));
        }

        let (warm_loaded, warm_stale) = self.ensure_warm(&sol);
        let space = SearchSpace::standard(sol.stencil(), domain, &machine);

        // Panic isolation: a poisoned measurement backend may panic
        // mid-session. Catch it and degrade this one request to a purely
        // analytic session (which runs no backend) instead of dying.
        let span = parent.child("tune");
        let attempt = catch_unwind(AssertUnwindSafe(|| sol.tune_space_with(&space, &tune_req)));
        let (result, degraded) = match attempt {
            Ok(r) => (r, false),
            Err(_) => {
                self.stats.degraded += 1;
                tel.inc("serve.panics");
                tel.event(
                    Level::Error,
                    "serve_panic_degraded",
                    span.id(),
                    &[("stencil", sol.stencil().name().into())],
                );
                let analytic = tune_req
                    .clone()
                    .budget(TrialBudget::runs(0))
                    .trial(TrialConfig::single_shot());
                let analytic = TuneRequest {
                    strategy: TuneStrategy::Analytic,
                    faults: None,
                    ..analytic
                };
                (sol.tune_space_with(&space, &analytic), true)
            }
        };
        drop(span);
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                self.stats.rejected_bad += 1;
                return error_response(id, "internal", &e.to_string());
            }
        };

        // Charge the tenant what the session actually consumed.
        let use_entry = self.tenants.entry(tenant.clone()).or_default();
        use_entry.runs += result.budget.runs_used;
        use_entry.seconds += result.budget.seconds_used;

        // Tier mix: which execution tier the winner plans onto, and why
        // (the status snapshot's `tier_ran` / `tier_degraded` counters;
        // the shared registry's `tier.*` counters are bumped by the
        // tuner itself).
        *self.tier_ran.entry(result.tier.to_string()).or_insert(0) += 1;
        if result.tier_degraded() {
            *self
                .tier_degraded
                .entry(result.tier_reason.to_string())
                .or_insert(0) += 1;
        }

        // Fold the session's drift audit into the daemon ledger and the
        // journals; absorb new predictions into the store.
        self.ledger.absorb(&result.drift);
        let mut persisted = 0usize;
        if let Some(store) = &mut self.store {
            let _persist = parent.child("persist");
            for rec in result.drift.records() {
                if store.record_drift(rec).is_err() {
                    self.stats.persist_errors += 1;
                }
            }
            let absorb = store.absorb_cache(&self.cache);
            persisted = absorb.persisted;
            self.stats.persist_errors += absorb.errors;
        }

        let deadline_fallbacks = result
            .provenances
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Provenance::PredictedFallback {
                        reason: FallbackReason::DeadlineExceeded
                    }
                )
            })
            .count();
        self.stats.completed += 1;
        let mut out = JsonOut::new(id, true)
            .str("op", "tune")
            .str("best", &result.best.to_string())
            .num("best_mlups", result.best_score)
            .str("tier", &result.tier.to_string())
            .str("tier_reason", result.tier_reason)
            .boolean("tier_degraded", result.tier_degraded())
            .boolean("degraded", degraded)
            .uint("warm_loaded", warm_loaded)
            .uint("warm_stale", warm_stale)
            .uint("cache_hits", result.cost.cache_hits)
            .uint("engine_runs", result.cost.engine_runs)
            .uint("runs_used", result.budget.runs_used)
            .uint("deadline_fallbacks", deadline_fallbacks)
            .uint("drift_records", result.drift.len())
            .uint("persisted", persisted)
            .str("tenant", &tenant);
        if let Some(p) = result.best_provenance {
            out = out.str("provenance", &p.to_string());
        }
        out.finish()
    }

    fn op_predict(&mut self, id: &str, req: &Json, _tel: &Telemetry, parent: &SpanGuard) -> String {
        let (sol, machine, domain) = match solution_from_request(req) {
            Ok(t) => t,
            Err(e) => {
                self.stats.rejected_bad += 1;
                return error_response(id, "bad_request", &e);
            }
        };
        let cores = get_u64(req, "cores").unwrap_or(1).max(1) as usize;
        let block = match get_str(req, "block").map(parse_triple).transpose() {
            Ok(b) => b.unwrap_or(domain),
            Err(e) => {
                self.stats.rejected_bad += 1;
                return error_response(id, "bad_request", &e);
            }
        };
        let fold = yasksite_grid::Fold::new(machine.lanes(), 1, 1);
        let wavefront = get_u64(req, "wavefront").unwrap_or(1).max(1) as usize;
        let params = yasksite_engine::TuningParams::new(block, fold)
            .threads(cores)
            .wavefront(wavefront);

        self.ensure_warm(&sol);
        let (perf, warm) = {
            let _predict = parent.child("predict");
            self.cache.predict(&sol, &params, cores)
        };
        if let Some(store) = &mut self.store {
            let _persist = parent.child("persist");
            let absorb = store.absorb_cache(&self.cache);
            self.stats.persist_errors += absorb.errors;
        }
        self.stats.completed += 1;
        JsonOut::new(id, true)
            .str("op", "predict")
            .str("params", &params.to_string())
            .num("mlups", perf.mlups)
            .num("seconds_per_sweep", perf.seconds_per_sweep)
            .boolean("wavefront_effective", perf.wavefront_effective)
            .boolean("warm", warm)
            .finish()
    }

    fn op_report(&mut self, id: &str) -> String {
        let s = self.stats;
        let mut out = JsonOut::new(id, true)
            .str("op", "report")
            .uint("received", s.received)
            .uint("completed", s.completed)
            .uint("rejected_overload", s.rejected_overload)
            .uint("rejected_budget", s.rejected_budget)
            .uint("rejected_bad", s.rejected_bad)
            .uint("degraded", s.degraded)
            .uint("persist_errors", s.persist_errors)
            .uint("cache_entries", self.cache.len())
            .uint("drift_records", self.ledger.len())
            .uint("drift_evictions", self.ledger.evictions())
            .uint("tenants", self.tenants.len());
        if let Some(store) = &self.store {
            out = out
                .boolean("store_healthy", store.healthy())
                .uint("store_predictions", store.prediction_count())
                .uint("store_drift", store.drift_count())
                .uint("store_recoveries", store.recoveries().len());
        }
        self.stats.completed += 1;
        out.finish()
    }

    fn op_status(&mut self, id: &str, req: &Json) -> String {
        self.stats.completed += 1;
        let snap = self.status_snapshot();
        if get_str(req, "format") == Some("prom") {
            JsonOut::new(id, true)
                .str("op", "status")
                .str("content_type", PROM_CONTENT_TYPE)
                .str("body", &snap.to_prometheus())
                .finish()
        } else {
            snap.to_json_response(id)
        }
    }

    /// The current observability snapshot: lifetime counters plus the
    /// rolling-window latency digests, as one plain-data struct (see
    /// [`StatusSnapshot`] for the rendered forms).
    #[must_use]
    pub fn status_snapshot(&self) -> StatusSnapshot {
        let now = self.started.elapsed().as_secs_f64();
        let pool = yasksite_engine::ExecPool::global().stats();
        StatusSnapshot {
            uptime_secs: now,
            window_secs: self.windows.requests.window_secs(),
            queue_depth: self
                .queue_depth
                .as_ref()
                .map_or(0, |d| d.load(Ordering::Relaxed)),
            queue_capacity: self.config.queue_capacity.max(1),
            received: self.stats.received,
            completed: self.stats.completed,
            rejected_overload: self.stats.rejected_overload
                + self
                    .overloads
                    .as_ref()
                    .map_or(0, |o| o.load(Ordering::Relaxed)),
            rejected_budget: self.stats.rejected_budget,
            rejected_bad: self.stats.rejected_bad,
            degraded: self.stats.degraded,
            persist_errors: self.stats.persist_errors,
            rate_per_sec: self.windows.requests.rate_at(now),
            cache_entries: self.cache.len(),
            drift_records: self.ledger.len(),
            drift_suspects: self.ledger.suspect_count(),
            drift_evictions: self.ledger.evictions(),
            corrected_keys: self.ledger.per_key_corrections().len(),
            calibration: self.calibration.as_ref().map(|c| CalibrationStatus {
                age_secs: c.age_secs + now,
                ..c.clone()
            }),
            tenants: self.tenants.len(),
            trace_sample: self.config.trace_sample,
            queue_wait_ms: ServeWindows::digest(&self.windows.queue_wait_ms, now),
            service_ms: ServeWindows::digest(&self.windows.service_ms, now),
            e2e_ms: ServeWindows::digest(&self.windows.e2e_ms, now),
            tenant_e2e_ms: ServeWindows::digest(&self.windows.tenant_e2e_ms, now),
            tier_ran: self.tier_ran.clone(),
            tier_degraded: self.tier_degraded.clone(),
            tenant_use: self
                .tenants
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        TenantUsage {
                            runs: v.runs,
                            seconds: v.seconds,
                        },
                    )
                })
                .collect(),
            pool_workers: pool.workers,
            pool_sweeps: pool.sweeps,
            pool_jobs: pool.jobs,
            store_healthy: self.store.as_ref().map(PersistentStore::healthy),
        }
    }

    /// Rewrites `status.json` in the state directory (atomically, via a
    /// temp file + rename) so `yasksite top <state-dir>` can watch the
    /// daemon without a socket. A no-op when serving from memory only.
    fn refresh_status_file(&mut self) {
        if self.store.is_none() {
            return;
        }
        let Some(dir) = self.config.state_dir.clone() else {
            return;
        };
        let body = self.status_snapshot().to_json_response("daemon");
        let tmp = dir.join("status.json.tmp");
        let path = dir.join("status.json");
        let wrote =
            std::fs::write(&tmp, body.as_bytes()).and_then(|()| std::fs::rename(&tmp, &path));
        if wrote.is_err() {
            self.stats.persist_errors += 1;
        }
    }

    /// Graceful teardown: snapshot-compact the journals and emit the
    /// final telemetry. Called once after the serve loop drains.
    pub fn finish(&mut self) {
        if let Some(store) = &mut self.store {
            if store.compact().is_err() {
                self.stats.persist_errors += 1;
            }
        }
        self.refresh_status_file();
        let tel = &self.config.telemetry;
        tel.event(
            Level::Info,
            "serve_shutdown",
            0,
            &[
                ("received", self.stats.received.into()),
                ("completed", self.stats.completed.into()),
                ("rejected_overload", self.stats.rejected_overload.into()),
                ("degraded", self.stats.degraded.into()),
            ],
        );
    }
}

/// Shared response writer: the worker writes answers and the reader
/// thread writes overload rejections, each as one flushed line.
#[derive(Clone)]
struct SharedWriter(Arc<Mutex<Box<dyn Write + Send>>>);

impl SharedWriter {
    fn send(&self, line: &str) {
        let mut w = self.0.lock().expect("writer poisoned");
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// Runs the daemon over an arbitrary line source and sink until EOF, a
/// `shutdown` request, or `shutdown_when` becomes true (the SIGTERM
/// path). Queued requests are drained before teardown; state is
/// compacted on the way out.
///
/// # Errors
/// Currently infallible (all I/O degradation is absorbed into
/// [`ServeStats`]); the `Result` keeps room for fatal setup errors.
pub fn serve<R>(
    config: ServeConfig,
    input: R,
    output: Box<dyn Write + Send>,
    shutdown_when: &AtomicBool,
) -> io::Result<ServeStats>
where
    R: BufRead + Send + 'static,
{
    let queue = config.queue_capacity.max(1);
    let tel = config.telemetry.clone();
    let writer = SharedWriter(Arc::new(Mutex::new(output)));
    let mut state = ServeState::new(config);
    // Each queued line carries its enqueue time so the worker can charge
    // the true queue wait to the request's latency windows.
    let (tx, rx) = mpsc::sync_channel::<(String, Instant)>(queue);
    let overloads = Arc::new(AtomicUsize::new(0));
    let depth = Arc::new(AtomicUsize::new(0));
    state.attach_queue_gauges(Arc::clone(&depth), Arc::clone(&overloads));

    // Reader thread: accept lines, enqueue them, and reject immediately
    // (never block, never buffer unboundedly) when the queue is full. It
    // is detached — a reader blocked on a quiet pipe must not prevent
    // daemon shutdown, and the process exits when the main loop returns.
    {
        let writer = writer.clone();
        let overloads = Arc::clone(&overloads);
        let depth = Arc::clone(&depth);
        let tel = tel.clone();
        std::thread::spawn(move || {
            for line in input.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                // Increment *before* try_send so a worker that dequeues
                // immediately always observes its matching increment —
                // the gauge can momentarily read one high, never drift.
                let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
                tel.gauge("queue.depth", d as f64);
                match tx.try_send((line, Instant::now())) {
                    Ok(()) => {}
                    Err(TrySendError::Full((line, _))) => {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        overloads.fetch_add(1, Ordering::Relaxed);
                        tel.inc("serve.rejected_overload");
                        writer.send(&overload_response(&line));
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        });
    }

    // Dequeue bookkeeping shared by the main loop and the drain below:
    // update the live depth gauge and surface the measured queue wait.
    let dequeue = |line_at: (String, Instant)| {
        let (line, enqueued) = line_at;
        // The reader increments before try_send, so every dequeued line
        // has a matching increment; saturate anyway for safety.
        let _ = depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
        tel.gauge("queue.depth", depth.load(Ordering::Relaxed) as f64);
        let wait = enqueued.elapsed();
        tel.observe("queue.wait_ms", wait.as_secs_f64() * 1e3);
        (line, wait)
    };

    loop {
        if shutdown_when.load(Ordering::Relaxed) {
            break;
        }
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line_at) => {
                let (line, wait) = dequeue(line_at);
                if let Some(resp) = state.handle_line_at(&line, Some(wait)) {
                    writer.send(&resp);
                }
                if state.shutdown_requested() {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Graceful drain: finish everything already accepted into the queue.
    // A short timeout (not `try_recv`) catches lines the reader is
    // pushing right now; the iteration bound keeps shutdown prompt even
    // against an input that never stops producing.
    for _ in 0..queue {
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(line_at) => {
                let (line, wait) = dequeue(line_at);
                if let Some(resp) = state.handle_line_at(&line, Some(wait)) {
                    writer.send(&resp);
                }
            }
            Err(_) => break,
        }
    }
    state.finish();
    let mut stats = state.stats();
    stats.rejected_overload += overloads.load(Ordering::Relaxed);
    Ok(stats)
}

/// Runs the daemon over stdin/stdout (the `yasksite serve` default).
///
/// # Errors
/// See [`serve`].
pub fn serve_stdin(config: ServeConfig, shutdown_when: &AtomicBool) -> io::Result<ServeStats> {
    serve(
        config,
        io::BufReader::new(io::stdin()),
        Box::new(io::stdout()),
        shutdown_when,
    )
}

/// Runs the daemon on a Unix socket: connections are served one at a
/// time, each as a line-delimited request/response stream. The socket
/// file is created fresh and removed on exit.
///
/// # Errors
/// Propagates socket bind/configuration errors; per-connection I/O
/// errors only end that connection.
#[cfg(unix)]
pub fn serve_unix(
    config: ServeConfig,
    socket: &std::path::Path,
    shutdown_when: &AtomicBool,
) -> io::Result<ServeStats> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    let mut state = ServeState::new(config);

    'daemon: while !shutdown_when.load(Ordering::Relaxed) && !state.shutdown_requested() {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            Err(e) => return Err(e),
        };
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let Ok(peer) = stream.try_clone() else {
            continue;
        };
        let mut reader = io::BufReader::new(peer);
        let mut out = stream;
        let mut buf = String::new();
        loop {
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) => break, // connection closed
                Ok(_) => {
                    if let Some(resp) = state.handle_line(&buf) {
                        let _ = writeln!(out, "{resp}");
                        let _ = out.flush();
                    }
                    if state.shutdown_requested() {
                        break 'daemon;
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if shutdown_when.load(Ordering::Relaxed) {
                        break 'daemon;
                    }
                }
                Err(_) => break,
            }
        }
    }
    state.finish();
    let _ = std::fs::remove_file(socket);
    Ok(state.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "yasksite-serve-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    const NULL: Json = Json::Null;

    fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
        resp.get(key).unwrap_or(&NULL)
    }

    fn handle(state: &mut ServeState, line: &str) -> Json {
        let resp = state.handle_line(line).expect("non-empty line");
        parse(&resp).expect("response is valid JSON")
    }

    const TUNE: &str =
        r#"{"id":"t1","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","cores":2}"#;

    #[test]
    fn malformed_and_unknown_requests_are_rejected_not_fatal() {
        let mut state = ServeState::new(ServeConfig::default());
        let r = handle(&mut state, "{nope");
        assert_eq!(field(&r, "ok"), &Json::Bool(false));
        assert_eq!(field(&r, "kind").as_str(), Some("bad_request"));

        let r = handle(&mut state, r#"{"id":"x","op":"frobnicate"}"#);
        assert_eq!(field(&r, "kind").as_str(), Some("bad_request"));
        assert_eq!(field(&r, "id").as_str(), Some("x"));

        let r = handle(
            &mut state,
            r#"{"id":"y","op":"tune","stencil":"nope","domain":"8x8x8"}"#,
        );
        assert!(field(&r, "error")
            .as_str()
            .unwrap()
            .contains("unknown stencil"));
        assert_eq!(state.stats().rejected_bad, 3);
        assert_eq!(state.stats().completed, 0);
    }

    #[test]
    fn tune_and_predict_answer_and_share_the_cache() {
        let mut state = ServeState::new(ServeConfig::default());
        let r = handle(&mut state, TUNE);
        assert_eq!(field(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert!(field(&r, "best").as_str().unwrap().starts_with("b="));
        assert!(field(&r, "best_mlups").as_f64().unwrap() > 0.0);
        assert_eq!(field(&r, "degraded"), &Json::Bool(false));
        assert!(!state.cache().is_empty(), "tune populated the shared cache");

        // The identical tune again is served from the cache.
        let r2 = handle(&mut state, TUNE);
        assert!(field(&r2, "cache_hits").as_u64().unwrap() > 0);
        assert_eq!(
            field(&r2, "best").as_str(),
            field(&r, "best").as_str(),
            "cached session picks the same winner"
        );

        let p = handle(
            &mut state,
            r#"{"id":"p1","op":"predict","stencil":"heat-2d-r1","domain":"64x64x1","cores":2,"block":"64x8x1"}"#,
        );
        assert_eq!(field(&p, "ok"), &Json::Bool(true));
        assert!(field(&p, "mlups").as_f64().unwrap() > 0.0);
        let p2 = handle(
            &mut state,
            r#"{"id":"p2","op":"predict","stencil":"heat-2d-r1","domain":"64x64x1","cores":2,"block":"64x8x1"}"#,
        );
        assert_eq!(field(&p2, "warm"), &Json::Bool(true), "second predict hits");
    }

    #[test]
    fn tenant_admission_rejects_when_exhausted_and_caps_sessions() {
        let config = ServeConfig {
            tenant_runs: Some(6),
            ..ServeConfig::default()
        };
        let mut state = ServeState::new(config);
        let tune = |id: &str| {
            format!(
                r#"{{"id":"{id}","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","strategy":"empirical","tenant":"ci"}}"#
            )
        };
        let mut total_runs = 0usize;
        let mut rejected = false;
        for i in 0..6 {
            let r = handle(&mut state, &tune(&format!("t{i}")));
            if field(&r, "ok") == &Json::Bool(true) {
                total_runs += field(&r, "runs_used").as_u64().unwrap() as usize;
            } else {
                assert_eq!(
                    field(&r, "kind").as_str(),
                    Some("tenant_budget_exhausted"),
                    "{r:?}"
                );
                rejected = true;
                break;
            }
        }
        assert!(rejected, "the tenant cap must eventually reject");
        assert!(total_runs <= 6, "sessions never exceed the tenant cap");

        // A different tenant still gets service.
        let r = handle(
            &mut state,
            r#"{"id":"o","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","strategy":"empirical","tenant":"other"}"#,
        );
        assert_eq!(field(&r, "ok"), &Json::Bool(true));
    }

    #[test]
    fn panicking_backend_degrades_to_analytic_and_daemon_survives() {
        let mut state = ServeState::new(ServeConfig::default());
        let r = handle(
            &mut state,
            r#"{"id":"boom","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","strategy":"empirical","faults":{"seed":7,"panic_prob":1.0}}"#,
        );
        assert_eq!(field(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert_eq!(field(&r, "degraded"), &Json::Bool(true));
        assert!(field(&r, "best_mlups").as_f64().unwrap() > 0.0);
        assert_eq!(state.stats().degraded, 1);

        // The daemon still serves the next request normally.
        let r = handle(&mut state, TUNE);
        assert_eq!(field(&r, "ok"), &Json::Bool(true));
        assert_eq!(field(&r, "degraded"), &Json::Bool(false));
    }

    #[test]
    fn expired_deadline_cancels_trials_into_fallbacks() {
        let mut state = ServeState::new(ServeConfig::default());
        let r = handle(
            &mut state,
            r#"{"id":"d","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","strategy":"empirical","deadline_ms":0}"#,
        );
        assert_eq!(field(&r, "ok"), &Json::Bool(true), "{r:?}");
        assert!(
            field(&r, "deadline_fallbacks").as_u64().unwrap() > 0,
            "an already-expired deadline cancels every trial: {r:?}"
        );
        assert_eq!(field(&r, "runs_used").as_u64(), Some(0));
    }

    #[test]
    fn status_snapshot_reports_queue_latency_tiers_and_drift() {
        let mut state = ServeState::new(ServeConfig::default());
        let _ = handle(&mut state, TUNE);
        let r = handle(&mut state, r#"{"id":"st","op":"status"}"#);
        assert_eq!(field(&r, "op").as_str(), Some("status"));
        let check = crate::status::validate_status_json(&r).expect("snapshot validates");
        assert!(
            check.latency_samples >= 1,
            "the tune request left latency samples in the window: {r:?}"
        );
        assert_eq!(field(&r, "schema").as_u64(), Some(1));
        assert_eq!(field(&r, "queue_capacity").as_u64(), Some(16));
        let Json::Obj(tiers) = field(&r, "tier_ran") else {
            panic!("tier_ran must be an object: {r:?}");
        };
        assert_eq!(
            tiers.iter().map(|(_, n)| n.as_u64().unwrap()).sum::<u64>(),
            1,
            "one tuning session → one tier_ran entry: {tiers:?}"
        );

        let p = handle(&mut state, r#"{"id":"pm","op":"status","format":"prom"}"#);
        assert_eq!(field(&p, "ok"), &Json::Bool(true));
        assert!(field(&p, "content_type")
            .as_str()
            .unwrap()
            .starts_with("text/plain"));
        let body = field(&p, "body").as_str().expect("prom body is a string");
        let samples = crate::status::validate_prometheus_text(body).expect("exposition validates");
        assert!(samples > 10, "exposition has real content: {samples}");
        assert!(body.contains("yasksite_queue_depth"));
        assert!(body.contains("yasksite_drift_suspects"));
        assert!(body.contains("yasksite_request_latency_ms{kind=\"tune\""));
        assert!(body.contains("yasksite_tier_ran_total{tier="));
    }

    #[test]
    fn tune_response_names_the_winning_tier() {
        let mut state = ServeState::new(ServeConfig::default());
        let r = handle(&mut state, TUNE);
        let tier = field(&r, "tier").as_str().expect("tier field present");
        assert!(
            ["folded", "scalar", "tape", "generic"].contains(&tier),
            "{r:?}"
        );
        assert!(!field(&r, "tier_reason").as_str().unwrap().is_empty());
        assert!(matches!(field(&r, "tier_degraded"), Json::Bool(_)));
    }

    #[test]
    fn head_sampling_bounds_the_trace_but_never_changes_responses() {
        let run = |trace_sample: Option<u64>| {
            let (tel, sink) = Telemetry::recording(Level::Debug);
            let mut state = ServeState::new(ServeConfig {
                trace_sample,
                telemetry: tel.clone(),
                ..ServeConfig::default()
            });
            let mut responses = Vec::new();
            for i in 0..3 {
                let line = format!(
                    r#"{{"id":"t{i}","op":"tune","stencil":"heat-2d-r1","domain":"64x64x1","cores":2}}"#
                );
                responses.push(state.handle_line(&line).unwrap());
            }
            tel.finish();
            let starts = sink
                .lines()
                .iter()
                .filter(|l| l.contains("\"ev\":\"request_start\""))
                .count();
            (responses, starts)
        };
        let (full, full_starts) = run(None);
        let (sampled, sampled_starts) = run(Some(1));
        assert_eq!(full, sampled, "sampling must never change responses");
        assert_eq!(full_starts, 3);
        assert_eq!(
            sampled_starts, 1,
            "only the first request is inside the head-sampling budget"
        );
    }

    #[test]
    fn status_file_lands_in_the_state_dir() {
        let dir = tmp_dir("statusfile");
        let mut state = ServeState::new(ServeConfig {
            state_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let _ = handle(&mut state, TUNE);
        let text = std::fs::read_to_string(dir.join("status.json"))
            .expect("daemon rewrote status.json after the request");
        let j = parse(&text).expect("status.json is valid JSON");
        crate::status::validate_status_json(&j).expect("status.json validates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn daemon_surfaces_calibration_from_the_state_dir() {
        let dir = tmp_dir("calibrated");
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = crate::calibrate::CalibrateConfig {
            synthetic: true,
            quick: true,
            ..crate::calibrate::CalibrateConfig::new(7)
        };
        let outcome = crate::calibrate::calibrate(&cfg, &Telemetry::disabled())
            .expect("synthetic calibration is total");
        std::fs::write(
            dir.join(CALIBRATED_MACHINE_FILE),
            yasksite_arch::format_machine(&outcome.machine),
        )
        .unwrap();
        let mut state = ServeState::new(ServeConfig {
            state_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let r = handle(&mut state, r#"{"id":"c","op":"status"}"#);
        let cal = field(&r, "calibration");
        assert_eq!(cal.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(
            cal.get("probes").and_then(Json::as_u64),
            Some(crate::calibrate::PROBE_NAMES.len() as u64)
        );
        assert!(cal.get("age_secs").and_then(Json::as_f64).unwrap() >= 0.0);
        assert_eq!(field(&r, "corrected_keys").as_u64(), Some(0));
        crate::status::validate_status_json(&r).expect("calibrated status validates");

        // A garbage machine file degrades to "no calibration", not a crash.
        std::fs::write(dir.join(CALIBRATED_MACHINE_FILE), "not a machine file").unwrap();
        let mut state = ServeState::new(ServeConfig {
            state_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let r = handle(&mut state, r#"{"id":"c2","op":"status"}"#);
        assert!(r.get("calibration").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_and_shutdown_round_trip() {
        let mut state = ServeState::new(ServeConfig::default());
        let _ = handle(&mut state, TUNE);
        let r = handle(&mut state, r#"{"id":"r","op":"report"}"#);
        assert_eq!(field(&r, "ok"), &Json::Bool(true));
        assert_eq!(field(&r, "completed").as_u64(), Some(1));
        assert!(field(&r, "cache_entries").as_u64().unwrap() > 0);

        assert!(!state.shutdown_requested());
        let r = handle(&mut state, r#"{"id":"s","op":"shutdown"}"#);
        assert_eq!(field(&r, "draining"), &Json::Bool(true));
        assert!(state.shutdown_requested());
    }

    #[test]
    fn overload_response_carries_the_request_id() {
        let r = parse(&overload_response(r#"{"id":"q9","op":"tune"}"#)).unwrap();
        assert_eq!(field(&r, "ok"), &Json::Bool(false));
        assert_eq!(field(&r, "kind").as_str(), Some("overloaded"));
        assert_eq!(field(&r, "id").as_str(), Some("q9"));
        // Garbage lines still get a well-formed rejection.
        let r = parse(&overload_response("{oops")).unwrap();
        assert_eq!(field(&r, "kind").as_str(), Some("overloaded"));
    }

    /// An output sink tests can read back after the daemon exits.
    #[derive(Clone, Default)]
    struct VecOut(Arc<Mutex<Vec<u8>>>);

    impl Write for VecOut {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run_serve(config: ServeConfig, script: &str) -> (ServeStats, Vec<Json>) {
        let out = VecOut::default();
        let shutdown = AtomicBool::new(false);
        let stats = serve(
            config,
            io::Cursor::new(script.to_string()),
            Box::new(out.clone()),
            &shutdown,
        )
        .expect("serve runs");
        let bytes = out.0.lock().unwrap().clone();
        let lines = String::from_utf8(bytes).unwrap();
        let responses = lines
            .lines()
            .map(|l| parse(l).expect("every response line is JSON"))
            .collect();
        (stats, responses)
    }

    #[test]
    fn serve_loop_processes_to_eof_and_persists_for_warm_restart() {
        let dir = tmp_dir("loop");
        let config = ServeConfig {
            state_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let script = format!("{TUNE}\n{}\n", r#"{"id":"r","op":"report"}"#);
        let (stats, responses) = run_serve(config.clone(), &script);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected_overload, 0);
        assert_eq!(responses.len(), 2);
        assert_eq!(field(&responses[0], "warm_loaded").as_u64(), Some(0));
        assert!(field(&responses[1], "store_predictions").as_u64().unwrap() > 0);

        // Restart against the same state dir: the first tune warm-loads.
        let (stats2, responses2) = run_serve(config, &script);
        assert_eq!(stats2.completed, 2);
        assert!(
            field(&responses2[0], "warm_loaded").as_u64().unwrap() > 0,
            "restart warm-starts from the journals: {:?}",
            responses2[0]
        );
        assert!(field(&responses2[0], "cache_hits").as_u64().unwrap() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_request_drains_queued_work_before_exit() {
        // The shutdown line arrives before the last tune is processed;
        // the drain still answers everything already accepted.
        let script = format!(
            "{}\n{}\n{}\n",
            r#"{"id":"s","op":"shutdown"}"#, TUNE, r#"{"id":"r","op":"report"}"#
        );
        let (stats, responses) = run_serve(ServeConfig::default(), &script);
        assert_eq!(stats.received, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(responses.len(), 3);
        assert_eq!(field(&responses[0], "draining"), &Json::Bool(true));
        assert_eq!(field(&responses[1], "ok"), &Json::Bool(true));
    }
}
