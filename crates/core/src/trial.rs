//! Robust measurement trials: the fault-tolerant layer between tuners and
//! the (real or simulated) measurement backend.
//!
//! Empirical tuning on shared, noisy machines sees spurious slow samples
//! (OS jitter, frequency transitions), outright failed runs and —
//! through buggy timers or broken counters — non-finite readings. A
//! tuner that feeds any single raw sample into its search can be derailed
//! by one bad run. This module wraps every measurement in a *trial*:
//!
//! 1. `warmup` untimed runs, then up to `samples` timed runs;
//! 2. failed or non-finite samples are retried (bounded by
//!    `max_retries`) with exponential backoff charged to the budget;
//! 3. surviving samples pass through MAD-based outlier rejection and the
//!    median of the kept set becomes the estimate;
//! 4. when everything fails or the session budget is exhausted, the trial
//!    *degrades gracefully* to the caller-provided analytic (ECM)
//!    prediction instead of erroring out.
//!
//! Every [`TrialResult`] carries [`Provenance`] so downstream consumers —
//! rankings, reports, the CLI — can tell a measured winner from one that
//! rests on a model prediction.
//!
//! Determinism: the fault-injection harness ([`FaultPlan`] /
//! [`FaultyBackend`]) drives all randomness from a seeded splitmix64
//! stream and draws a fixed number of values per sample, so a given seed
//! reproduces the exact same fault pattern regardless of how results are
//! consumed.

use std::fmt;
use std::time::Instant;

use yasksite_engine::TuningParams;
use yasksite_telemetry::{Level, SpanGuard, Telemetry, Value};

use crate::solution::{Solution, ToolError};

/// Scale factor that makes the median absolute deviation a consistent
/// estimator of the standard deviation under normality.
const MAD_SIGMA_SCALE: f64 = 1.4826;

/// Seedable splitmix64 stream — deterministic fault injection without an
/// external RNG dependency.
#[derive(Debug, Clone)]
pub struct TrialRng {
    state: u64,
}

impl TrialRng {
    /// Stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TrialRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a trial fell back to the analytic prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Every sample (including retries) failed or was non-finite.
    AllSamplesFailed,
    /// The tuning-session budget ran out before the trial could finish.
    BudgetExhausted,
    /// The request's deadline passed before the trial could finish (the
    /// daemon's watchdog cancelling a stuck trial).
    DeadlineExceeded,
}

/// Where a trial's estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// All requested samples landed on the first attempt.
    Measured,
    /// Measured, but one or more samples needed retrying.
    Retried {
        /// Number of retry attempts consumed.
        retries: usize,
    },
    /// Measurement failed; the estimate is the analytic ECM prediction.
    PredictedFallback {
        /// Why measurement was abandoned.
        reason: FallbackReason,
    },
}

impl Provenance {
    /// Whether the estimate rests on the analytic model, not a run.
    #[must_use]
    pub fn is_fallback(&self) -> bool {
        matches!(self, Provenance::PredictedFallback { .. })
    }

    /// Short machine-readable tag used in telemetry events.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Provenance::Measured => "measured",
            Provenance::Retried { .. } => "retried",
            Provenance::PredictedFallback { .. } => "predicted_fallback",
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provenance::Measured => write!(f, "measured"),
            Provenance::Retried { retries } => write!(f, "measured ({retries} retries)"),
            Provenance::PredictedFallback { reason } => match reason {
                FallbackReason::AllSamplesFailed => {
                    write!(f, "predicted fallback (all samples failed)")
                }
                FallbackReason::BudgetExhausted => {
                    write!(f, "predicted fallback (budget exhausted)")
                }
                FallbackReason::DeadlineExceeded => {
                    write!(f, "predicted fallback (deadline exceeded)")
                }
            },
        }
    }
}

/// The measurement protocol of one trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Untimed runs before the first sample.
    pub warmup: usize,
    /// Timed samples requested.
    pub samples: usize,
    /// Extra attempts allowed to replace failed/non-finite samples.
    pub max_retries: usize,
    /// MAD outlier threshold: keep samples within `mad_k` scaled MADs of
    /// the median.
    pub mad_k: f64,
    /// Budget seconds charged for the first retry; doubles per retry.
    pub backoff_base: f64,
    /// Wall-clock deadline: no backend run starts at or after this
    /// instant, and a trial cut short by it degrades to the analytic
    /// fallback with [`FallbackReason::DeadlineExceeded`]. `None` (the
    /// default) never cancels.
    pub deadline: Option<Instant>,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            warmup: 1,
            samples: 5,
            max_retries: 3,
            mad_k: 3.5,
            backoff_base: 1e-3,
            deadline: None,
        }
    }
}

impl TrialConfig {
    /// Legacy protocol: no warmup, one sample, no retries. Gives classic
    /// one-run-per-candidate cost accounting.
    #[must_use]
    pub fn single_shot() -> Self {
        TrialConfig {
            warmup: 0,
            samples: 1,
            max_retries: 0,
            ..TrialConfig::default()
        }
    }

    /// This protocol with a wall-clock deadline (see
    /// [`TrialConfig::deadline`]).
    #[must_use]
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }
}

/// A per-tuning-session budget shared by all trials of the session.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrialBudget {
    /// Cap on backend invocations (warmups, samples and retries all
    /// count); `None` is unlimited.
    pub max_runs: Option<usize>,
    /// Cap on accumulated target seconds (sample times plus backoff
    /// charges); `None` is unlimited.
    pub max_seconds: Option<f64>,
    /// Backend invocations consumed so far.
    pub runs_used: usize,
    /// Target seconds consumed so far.
    pub seconds_used: f64,
}

impl TrialBudget {
    /// A budget that never exhausts.
    #[must_use]
    pub fn unlimited() -> Self {
        TrialBudget::default()
    }

    /// A budget capped on backend invocations.
    #[must_use]
    pub fn runs(max_runs: usize) -> Self {
        TrialBudget {
            max_runs: Some(max_runs),
            ..TrialBudget::default()
        }
    }

    /// A budget capped on accumulated target seconds.
    #[must_use]
    pub fn seconds(max_seconds: f64) -> Self {
        TrialBudget {
            max_seconds: Some(max_seconds),
            ..TrialBudget::default()
        }
    }

    /// Whether no further backend run may start.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        if let Some(max) = self.max_runs {
            if self.runs_used >= max {
                return true;
            }
        }
        if let Some(max) = self.max_seconds {
            if self.seconds_used >= max {
                return true;
            }
        }
        false
    }

    /// Charges one backend invocation costing `seconds`.
    pub fn charge(&mut self, seconds: f64) {
        self.runs_used += 1;
        if seconds.is_finite() && seconds > 0.0 {
            self.seconds_used += seconds;
        }
    }
}

/// The thing a trial runs: one timed sample per call. `Solution` measure
/// paths implement this, and the fault-injection harness wraps any
/// backend to perturb it.
pub trait MeasureBackend {
    /// One timed run of `params`, returning seconds per sweep.
    ///
    /// # Errors
    /// Whatever the underlying engine reports for a failed run.
    fn run_sample(&mut self, params: &TuningParams) -> Result<f64, ToolError>;
}

/// The production backend: samples via [`Solution::measure`].
pub struct SolutionBackend<'a> {
    solution: &'a Solution,
}

impl<'a> SolutionBackend<'a> {
    /// Backend measuring `solution`.
    #[must_use]
    pub fn new(solution: &'a Solution) -> Self {
        SolutionBackend { solution }
    }
}

impl MeasureBackend for SolutionBackend<'_> {
    fn run_sample(&mut self, params: &TuningParams) -> Result<f64, ToolError> {
        Ok(self.solution.measure(params)?.seconds_per_sweep)
    }
}

/// A deterministic, seeded description of the faults to inject into a
/// backend: transient failures, NaN timings and noise spikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Probability a sample fails with a transient error.
    pub fail_prob: f64,
    /// Probability a sample returns a NaN timing.
    pub nan_prob: f64,
    /// Probability a surviving sample is multiplied by `spike_factor`.
    pub spike_prob: f64,
    /// Multiplier applied to spiked samples (> 1 slows them down).
    pub spike_factor: f64,
    /// Probability a sample panics outright (a poisoned worker). Only a
    /// supervisor with panic isolation — the serve daemon — survives
    /// this; plain tuning propagates it, which is the point of testing
    /// with it.
    pub panic_prob: f64,
    /// Probability a journal append writes only a prefix of the record
    /// and then errors (a torn write). Consumed by
    /// [`crate::FaultyMedium`], not by measurement backends.
    pub io_short_prob: f64,
    /// Probability a journal append silently flips a bit in the record
    /// (detected later by the checksum). See [`crate::FaultyMedium`].
    pub io_corrupt_prob: f64,
    /// Probability a journal append fails cleanly writing nothing, as a
    /// full disk would. See [`crate::FaultyMedium`].
    pub io_enospc_prob: f64,
}

impl FaultPlan {
    /// No faults at all (useful as a neutral wrapper).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            fail_prob: 0.0,
            nan_prob: 0.0,
            spike_prob: 0.0,
            spike_factor: 1.0,
            panic_prob: 0.0,
            io_short_prob: 0.0,
            io_corrupt_prob: 0.0,
            io_enospc_prob: 0.0,
        }
    }

    /// Every sample panics — exercises the daemon's panic isolation.
    #[must_use]
    pub fn always_panic(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_prob: 1.0,
            ..FaultPlan::none()
        }
    }

    /// I/O faults only: seeded torn writes, silent corruption and
    /// out-of-space errors for the persistence layer, no measurement
    /// faults.
    #[must_use]
    pub fn io_faults(seed: u64, short: f64, corrupt: f64, enospc: f64) -> Self {
        FaultPlan {
            seed,
            io_short_prob: short,
            io_corrupt_prob: corrupt,
            io_enospc_prob: enospc,
            ..FaultPlan::none()
        }
    }

    /// Every sample fails — exercises the fallback path end to end.
    #[must_use]
    pub fn always_fail(seed: u64) -> Self {
        FaultPlan {
            seed,
            fail_prob: 1.0,
            ..FaultPlan::none()
        }
    }

    /// A moderately hostile machine: occasional failures, rare NaNs,
    /// occasional 10x noise spikes.
    #[must_use]
    pub fn noisy(seed: u64) -> Self {
        FaultPlan {
            seed,
            fail_prob: 0.1,
            nan_prob: 0.02,
            spike_prob: 0.15,
            spike_factor: 10.0,
            ..FaultPlan::none()
        }
    }

    /// Derives a decorrelated plan for sub-stream `i` (e.g. one per
    /// candidate) keeping the probabilities.
    #[must_use]
    pub fn stream(&self, i: u64) -> Self {
        FaultPlan {
            seed: self
                .seed
                .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9)),
            ..*self
        }
    }
}

/// Wraps a backend and perturbs its samples according to a [`FaultPlan`].
///
/// Exactly two RNG draws are consumed per sample (one for the fault
/// category, one for the spike decision), so the fault pattern depends
/// only on the seed and the sample index — not on what the inner backend
/// returns.
pub struct FaultyBackend<B> {
    inner: B,
    plan: FaultPlan,
    rng: TrialRng,
}

impl<B> FaultyBackend<B> {
    /// Wraps `inner` under `plan`.
    #[must_use]
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultyBackend {
            inner,
            plan,
            rng: TrialRng::new(plan.seed),
        }
    }
}

impl<B: MeasureBackend> MeasureBackend for FaultyBackend<B> {
    fn run_sample(&mut self, params: &TuningParams) -> Result<f64, ToolError> {
        let category = self.rng.next_f64();
        let spike = self.rng.next_f64();
        if category < self.plan.fail_prob {
            return Err(ToolError::Measurement("injected transient failure".into()));
        }
        if category < self.plan.fail_prob + self.plan.nan_prob {
            return Ok(f64::NAN);
        }
        if category < self.plan.fail_prob + self.plan.nan_prob + self.plan.panic_prob {
            panic!("injected backend panic");
        }
        let mut seconds = self.inner.run_sample(params)?;
        if spike < self.plan.spike_prob {
            seconds *= self.plan.spike_factor;
        }
        Ok(seconds)
    }
}

/// The outcome of one robust trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The estimate: median of kept samples, or the analytic fallback.
    pub seconds_per_sweep: f64,
    /// Where the estimate came from.
    pub provenance: Provenance,
    /// Samples that survived outlier rejection.
    pub kept: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
    /// Retry attempts consumed.
    pub retries: usize,
    /// Total backend invocations (warmups + samples + retries).
    pub attempts: usize,
    /// The raw valid samples, in collection order.
    pub samples: Vec<f64>,
    /// Whether a *measured* estimate rests on fewer samples than the
    /// protocol requested (the budget ran out or retries were exhausted
    /// mid-collection). Previously this truncation was silent; fallbacks
    /// report `false` here because their provenance already says so.
    pub truncated: bool,
}

/// Aggregate trial statistics over a tuning session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialSummary {
    /// Trials run.
    pub trials: usize,
    /// Valid samples collected.
    pub samples: usize,
    /// Samples rejected as outliers.
    pub rejected: usize,
    /// Retry attempts consumed.
    pub retries: usize,
    /// Trials that fell back to the analytic prediction.
    pub fallbacks: usize,
    /// Measured trials that were truncated (fewer samples than the
    /// protocol requested) — see [`TrialResult::truncated`].
    pub truncated: usize,
}

impl TrialSummary {
    /// Folds one trial into the summary.
    pub fn absorb(&mut self, r: &TrialResult) {
        self.trials += 1;
        self.samples += r.samples.len();
        self.rejected += r.rejected;
        self.retries += r.retries;
        if r.provenance.is_fallback() {
            self.fallbacks += 1;
        }
        if r.truncated {
            self.truncated += 1;
        }
    }
}

impl std::ops::AddAssign for TrialSummary {
    fn add_assign(&mut self, rhs: Self) {
        self.trials += rhs.trials;
        self.samples += rhs.samples;
        self.rejected += rhs.rejected;
        self.retries += rhs.retries;
        self.fallbacks += rhs.fallbacks;
        self.truncated += rhs.truncated;
    }
}

impl fmt::Display for TrialSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trials, {} samples ({} rejected, {} retries, {} fallbacks, {} truncated)",
            self.trials, self.samples, self.rejected, self.retries, self.fallbacks, self.truncated
        )
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// MAD-filters `samples`: returns (kept values, rejected count). With a
/// zero MAD (identical samples) everything is kept.
fn mad_filter(samples: &[f64], k: f64) -> (Vec<f64>, usize) {
    if samples.len() < 3 {
        return (samples.to_vec(), 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let m = median(&sorted);
    let mut deviations: Vec<f64> = sorted.iter().map(|x| (x - m).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    let scaled_mad = MAD_SIGMA_SCALE * median(&deviations);
    if scaled_mad == 0.0 {
        return (samples.to_vec(), 0);
    }
    let kept: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|x| (x - m).abs() <= k * scaled_mad)
        .collect();
    let rejected = samples.len() - kept.len();
    (kept, rejected)
}

/// Runs one robust trial of `params` against `backend`.
///
/// `fallback_seconds` is the analytic prediction used when measurement
/// fails entirely or `budget` runs out; the result then carries
/// [`Provenance::PredictedFallback`]. This function never fails — fault
/// tolerance is the point — and never returns a non-finite estimate as
/// long as `fallback_seconds` is finite.
pub fn run_trial(
    backend: &mut dyn MeasureBackend,
    params: &TuningParams,
    fallback_seconds: f64,
    cfg: &TrialConfig,
    budget: &mut TrialBudget,
) -> TrialResult {
    run_trial_observed(
        backend,
        params,
        fallback_seconds,
        cfg,
        budget,
        &Telemetry::disabled(),
        None,
    )
}

/// Emits the `budget_exhausted` event exactly when the budget flips from
/// live to exhausted, with what remains of each configured cap.
fn emit_budget_exhausted(tel: &Telemetry, span_id: u64, budget: &TrialBudget) {
    tel.inc("budget.exhausted");
    let mut fields: Vec<(&str, Value)> = vec![
        ("runs_used", budget.runs_used.into()),
        ("seconds_used", budget.seconds_used.into()),
    ];
    if let Some(max) = budget.max_runs {
        fields.push(("max_runs", max.into()));
        fields.push((
            "runs_remaining",
            max.saturating_sub(budget.runs_used).into(),
        ));
    }
    if let Some(max) = budget.max_seconds {
        fields.push(("max_seconds", max.into()));
        fields.push((
            "seconds_remaining",
            (max - budget.seconds_used).max(0.0).into(),
        ));
    }
    tel.event(Level::Info, "budget_exhausted", span_id, &fields);
}

/// [`run_trial`] with telemetry: opens a `measure` span (as a child of
/// `parent` when given), emits one event per warmup, sample, retry and
/// fallback, reports `budget_exhausted` at the moment the budget flips,
/// and flags truncated collections. Identical measurement semantics —
/// the disabled-telemetry wrapper is the proof, since it *is* this
/// function.
#[allow(clippy::too_many_arguments)]
pub fn run_trial_observed(
    backend: &mut dyn MeasureBackend,
    params: &TuningParams,
    fallback_seconds: f64,
    cfg: &TrialConfig,
    budget: &mut TrialBudget,
    tel: &Telemetry,
    parent: Option<&SpanGuard>,
) -> TrialResult {
    let span = match parent {
        Some(p) => p.child("measure"),
        None => tel.span("measure"),
    };
    let sid = span.id();
    tel.inc("trial.count");
    let mut was_exhausted = budget.exhausted();
    let fallback = |reason: FallbackReason, retries, attempts, samples: Vec<f64>| {
        tel.inc("trial.fallbacks");
        let why = match reason {
            FallbackReason::AllSamplesFailed => "all_samples_failed",
            FallbackReason::BudgetExhausted => "budget_exhausted",
            FallbackReason::DeadlineExceeded => "deadline_exceeded",
        };
        tel.event(
            Level::Info,
            "fallback",
            sid,
            &[
                ("reason", why.into()),
                ("provenance", "predicted_fallback".into()),
                ("seconds", fallback_seconds.into()),
            ],
        );
        TrialResult {
            seconds_per_sweep: fallback_seconds,
            provenance: Provenance::PredictedFallback { reason },
            kept: 0,
            rejected: 0,
            retries,
            attempts,
            samples,
            truncated: false,
        }
    };
    if was_exhausted {
        return fallback(FallbackReason::BudgetExhausted, 0, 0, Vec::new());
    }
    let deadline_passed = || cfg.deadline.is_some_and(|d| Instant::now() >= d);
    if deadline_passed() {
        tel.inc("trial.deadline_hits");
        return fallback(FallbackReason::DeadlineExceeded, 0, 0, Vec::new());
    }

    let mut attempts = 0usize;
    let mut retries = 0usize;

    // Warmups: untimed, never retried; failures only cost backoff.
    for _ in 0..cfg.warmup {
        if budget.exhausted() {
            return fallback(
                FallbackReason::BudgetExhausted,
                retries,
                attempts,
                Vec::new(),
            );
        }
        if deadline_passed() {
            tel.inc("trial.deadline_hits");
            return fallback(
                FallbackReason::DeadlineExceeded,
                retries,
                attempts,
                Vec::new(),
            );
        }
        attempts += 1;
        let charged = match backend.run_sample(params) {
            Ok(s) => {
                budget.charge(s);
                s
            }
            Err(_) => {
                budget.charge(cfg.backoff_base);
                cfg.backoff_base
            }
        };
        if !was_exhausted && budget.exhausted() {
            was_exhausted = true;
            emit_budget_exhausted(tel, sid, budget);
        }
        tel.event(
            Level::Debug,
            "warmup",
            sid,
            &[("seconds", charged.into()), ("attempt", attempts.into())],
        );
    }

    // Timed samples with bounded retry: a failed or non-finite sample
    // consumes one retry and charges exponential backoff to the budget.
    let mut collected: Vec<f64> = Vec::with_capacity(cfg.samples);
    let mut budget_hit = false;
    let mut deadline_hit = false;
    while collected.len() < cfg.samples {
        if budget.exhausted() {
            budget_hit = true;
            break;
        }
        if deadline_passed() {
            deadline_hit = true;
            tel.inc("trial.deadline_hits");
            break;
        }
        attempts += 1;
        match backend.run_sample(params) {
            Ok(s) if s.is_finite() && s > 0.0 => {
                budget.charge(s);
                if !was_exhausted && budget.exhausted() {
                    was_exhausted = true;
                    emit_budget_exhausted(tel, sid, budget);
                }
                tel.observe("trial.sample_seconds", s);
                tel.event(
                    Level::Debug,
                    "sample",
                    sid,
                    &[("seconds", s.into()), ("attempt", attempts.into())],
                );
                collected.push(s);
            }
            _ => {
                let backoff = cfg.backoff_base * f64::from(1u32 << retries.min(20));
                budget.charge(backoff);
                if !was_exhausted && budget.exhausted() {
                    was_exhausted = true;
                    emit_budget_exhausted(tel, sid, budget);
                }
                if retries >= cfg.max_retries {
                    // Out of retries: keep whatever was collected.
                    break;
                }
                retries += 1;
                tel.inc("trial.retries");
                tel.event(
                    Level::Debug,
                    "retry",
                    sid,
                    &[
                        ("retry", retries.into()),
                        ("backoff_seconds", backoff.into()),
                    ],
                );
            }
        }
    }

    if collected.is_empty() {
        let reason = if deadline_hit {
            FallbackReason::DeadlineExceeded
        } else if budget_hit {
            FallbackReason::BudgetExhausted
        } else {
            FallbackReason::AllSamplesFailed
        };
        return fallback(reason, retries, attempts, collected);
    }

    // Fewer samples than requested: the estimate is still measured, but
    // callers deserve to know it rests on a truncated collection (this
    // used to pass silently).
    let truncated = collected.len() < cfg.samples;
    if truncated {
        tel.inc("trial.truncated");
        tel.event(
            Level::Info,
            "trial_truncated",
            sid,
            &[
                ("collected", collected.len().into()),
                ("requested", cfg.samples.into()),
                ("budget_hit", budget_hit.into()),
                ("deadline_hit", deadline_hit.into()),
            ],
        );
    }

    let (kept, rejected) = mad_filter(&collected, cfg.mad_k);
    let mut kept_sorted = kept.clone();
    kept_sorted.sort_by(f64::total_cmp);
    let estimate = median(&kept_sorted);
    let provenance = if retries == 0 {
        Provenance::Measured
    } else {
        Provenance::Retried { retries }
    };
    tel.event(
        Level::Debug,
        "trial_result",
        sid,
        &[
            ("provenance", provenance.label().into()),
            ("seconds", estimate.into()),
            ("kept", kept.len().into()),
            ("rejected", rejected.into()),
        ],
    );
    TrialResult {
        seconds_per_sweep: estimate,
        provenance,
        kept: kept.len(),
        rejected,
        retries,
        attempts,
        samples: collected,
        truncated,
    }
}

impl Solution {
    /// The production measurement backend for this solution.
    #[must_use]
    pub fn backend(&self) -> SolutionBackend<'_> {
        SolutionBackend::new(self)
    }

    /// Robustly measures `params` under the trial protocol, degrading to
    /// the analytic prediction when measurement fails or `budget` runs
    /// out. Never fails; check [`TrialResult::provenance`].
    pub fn measure_trial(
        &self,
        params: &TuningParams,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> TrialResult {
        let mut backend = SolutionBackend::new(self);
        self.measure_trial_with(&mut backend, params, cfg, budget)
    }

    /// [`Solution::measure_trial`] against an arbitrary backend (e.g. a
    /// [`FaultyBackend`] in tests).
    pub fn measure_trial_with(
        &self,
        backend: &mut dyn MeasureBackend,
        params: &TuningParams,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> TrialResult {
        let cores = params.threads.max(1);
        let fallback = self.predict(params, cores).seconds_per_sweep;
        run_trial(backend, params, fallback, cfg, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted backend: pops pre-programmed outcomes.
    struct Script {
        outcomes: Vec<Result<f64, ToolError>>,
        calls: usize,
    }

    impl Script {
        fn new(mut outcomes: Vec<Result<f64, ToolError>>) -> Self {
            outcomes.reverse(); // pop() yields in original order
            Script { outcomes, calls: 0 }
        }
    }

    impl MeasureBackend for Script {
        fn run_sample(&mut self, _params: &TuningParams) -> Result<f64, ToolError> {
            self.calls += 1;
            self.outcomes
                .pop()
                .unwrap_or(Err(ToolError::Measurement("script exhausted".into())))
        }
    }

    fn params() -> TuningParams {
        TuningParams::new([32, 8, 8], yasksite_grid::Fold::new(8, 1, 1))
    }

    #[test]
    fn clean_samples_yield_measured_median() {
        let mut b = Script::new(vec![Ok(2.0), Ok(1.0), Ok(3.0)]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 3,
            ..TrialConfig::default()
        };
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
        assert_eq!(r.provenance, Provenance::Measured);
        assert_eq!(r.seconds_per_sweep, 2.0);
        assert_eq!(r.kept, 3);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.attempts, 3);
    }

    #[test]
    fn expired_deadline_falls_back_before_any_run() {
        let mut b = Script::new(vec![Ok(1.0), Ok(1.0), Ok(1.0)]);
        let cfg = TrialConfig {
            warmup: 1,
            samples: 3,
            ..TrialConfig::default()
        }
        .deadline_at(Instant::now() - std::time::Duration::from_millis(1));
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
        assert_eq!(
            r.provenance,
            Provenance::PredictedFallback {
                reason: FallbackReason::DeadlineExceeded
            }
        );
        assert_eq!(r.seconds_per_sweep, 9.9);
        assert_eq!(r.attempts, 0, "no backend run may start past the deadline");
        assert_eq!(b.calls, 0);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let cfg = TrialConfig {
            warmup: 0,
            samples: 3,
            ..TrialConfig::default()
        };
        let run = |cfg: &TrialConfig| {
            let mut b = Script::new(vec![Ok(2.0), Ok(1.0), Ok(3.0)]);
            run_trial(&mut b, &params(), 9.9, cfg, &mut TrialBudget::unlimited())
        };
        let plain = run(&cfg);
        let with_deadline =
            run(&cfg.deadline_at(Instant::now() + std::time::Duration::from_secs(3600)));
        assert_eq!(plain.provenance, with_deadline.provenance);
        assert_eq!(
            plain.seconds_per_sweep.to_bits(),
            with_deadline.seconds_per_sweep.to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "injected backend panic")]
    fn panic_plan_panics_without_a_supervisor() {
        let mut b = FaultyBackend::new(Script::new(vec![Ok(1.0)]), FaultPlan::always_panic(7));
        let _ = b.run_sample(&params());
    }

    #[test]
    fn outlier_is_rejected_by_mad() {
        let mut b = Script::new(vec![Ok(1.0), Ok(1.01), Ok(0.99), Ok(1.02), Ok(50.0)]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 5,
            ..TrialConfig::default()
        };
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
        assert_eq!(r.rejected, 1);
        assert_eq!(r.kept, 4);
        assert!(r.seconds_per_sweep < 1.1, "spike must not drag the median");
    }

    #[test]
    fn transient_failures_are_retried() {
        let mut b = Script::new(vec![
            Err(ToolError::Measurement("boom".into())),
            Ok(f64::NAN),
            Ok(1.0),
            Ok(1.0),
        ]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 2,
            max_retries: 3,
            ..TrialConfig::default()
        };
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
        assert_eq!(r.provenance, Provenance::Retried { retries: 2 });
        assert_eq!(r.seconds_per_sweep, 1.0);
        assert_eq!(r.attempts, 4);
    }

    #[test]
    fn total_failure_falls_back_to_prediction() {
        let mut b = Script::new(vec![]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 3,
            max_retries: 2,
            ..TrialConfig::default()
        };
        let mut budget = TrialBudget::unlimited();
        let r = run_trial(&mut b, &params(), 0.123, &cfg, &mut budget);
        assert_eq!(
            r.provenance,
            Provenance::PredictedFallback {
                reason: FallbackReason::AllSamplesFailed
            }
        );
        assert_eq!(r.seconds_per_sweep, 0.123);
        assert!(r.seconds_per_sweep.is_finite());
    }

    #[test]
    fn exhausted_budget_short_circuits() {
        let mut b = Script::new(vec![Ok(1.0)]);
        let mut budget = TrialBudget::runs(0);
        let r = run_trial(&mut b, &params(), 0.5, &TrialConfig::default(), &mut budget);
        assert_eq!(
            r.provenance,
            Provenance::PredictedFallback {
                reason: FallbackReason::BudgetExhausted
            }
        );
        assert_eq!(b.calls, 0, "no backend run may start on a dead budget");
    }

    #[test]
    fn budget_charges_runs_and_seconds() {
        let mut b = Script::new(vec![Ok(1.0), Ok(1.0), Ok(1.0)]);
        let cfg = TrialConfig {
            warmup: 1,
            samples: 2,
            ..TrialConfig::default()
        };
        let mut budget = TrialBudget::unlimited();
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut budget);
        assert_eq!(r.attempts, 3);
        assert_eq!(budget.runs_used, 3);
        assert!((budget.seconds_used - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let plan = FaultPlan::noisy(42);
        let run = || {
            let mut b = FaultyBackend::new(Script::new((0..40).map(|_| Ok(1.0)).collect()), plan);
            let cfg = TrialConfig {
                warmup: 0,
                samples: 8,
                max_retries: 5,
                ..TrialConfig::default()
            };
            let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
            (r.seconds_per_sweep.to_bits(), r.retries, r.samples.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn always_fail_plan_forces_fallback() {
        let mut b = FaultyBackend::new(
            Script::new((0..40).map(|_| Ok(1.0)).collect()),
            FaultPlan::always_fail(7),
        );
        let r = run_trial(
            &mut b,
            &params(),
            0.77,
            &TrialConfig::default(),
            &mut TrialBudget::unlimited(),
        );
        assert!(r.provenance.is_fallback());
        assert_eq!(r.seconds_per_sweep, 0.77);
    }

    #[test]
    fn mid_collection_budget_exhaustion_is_flagged_as_truncation() {
        // Budget allows two runs, the protocol wants five samples: the
        // estimate is measured from the two collected samples, and the
        // truncation — previously silent — is now reported.
        let mut b = Script::new(vec![Ok(1.0), Ok(2.0), Ok(3.0), Ok(4.0), Ok(5.0)]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 5,
            ..TrialConfig::default()
        };
        let mut budget = TrialBudget::runs(2);
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut budget);
        assert_eq!(r.provenance, Provenance::Measured);
        assert_eq!(r.samples.len(), 2);
        assert!(r.truncated, "short collection must be flagged");
        let mut s = TrialSummary::default();
        s.absorb(&r);
        assert_eq!(s.truncated, 1);
        assert!(s.to_string().contains("1 truncated"));
    }

    #[test]
    fn full_collection_is_not_truncated() {
        let mut b = Script::new(vec![Ok(1.0), Ok(1.0), Ok(1.0)]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 3,
            ..TrialConfig::default()
        };
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
        assert!(!r.truncated);
    }

    #[test]
    fn budget_exhausted_event_fires_once_at_the_flip() {
        use yasksite_telemetry::{Level, Telemetry};
        let (tel, sink) = Telemetry::recording(Level::Debug);
        let mut b = Script::new(vec![Ok(1.0), Ok(1.0), Ok(1.0), Ok(1.0)]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 5,
            ..TrialConfig::default()
        };
        let mut budget = TrialBudget::runs(3);
        let r = run_trial_observed(&mut b, &params(), 9.9, &cfg, &mut budget, &tel, None);
        assert!(r.truncated);
        let lines = sink.lines();
        let exhausted: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"budget_exhausted\""))
            .collect();
        assert_eq!(exhausted.len(), 1, "exactly one flip event: {lines:?}");
        assert!(exhausted[0].contains("\"runs_used\":3"), "{}", exhausted[0]);
        assert!(
            exhausted[0].contains("\"runs_remaining\":0"),
            "{}",
            exhausted[0]
        );
        assert_eq!(tel.counter("budget.exhausted"), 1);
        // Truncation is reported alongside.
        assert!(lines.iter().any(|l| l.contains("\"trial_truncated\"")));
        assert_eq!(tel.counter("trial.truncated"), 1);
    }

    #[test]
    fn observed_trial_emits_sample_retry_and_fallback_events() {
        use yasksite_telemetry::{Level, Telemetry};
        let (tel, sink) = Telemetry::recording(Level::Debug);
        let mut b = Script::new(vec![
            Err(ToolError::Measurement("boom".into())),
            Ok(1.0),
            Ok(1.0),
        ]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 2,
            max_retries: 2,
            ..TrialConfig::default()
        };
        let r = run_trial_observed(
            &mut b,
            &params(),
            9.9,
            &cfg,
            &mut TrialBudget::unlimited(),
            &tel,
            None,
        );
        assert_eq!(r.provenance, Provenance::Retried { retries: 1 });
        let lines = sink.lines().join("\n");
        assert!(lines.contains("\"sample\""));
        assert!(lines.contains("\"retry\""));
        assert!(lines.contains("\"trial_result\""));
        assert_eq!(tel.counter("trial.retries"), 1);

        // A total failure emits a fallback event with its reason.
        let (tel2, sink2) = Telemetry::recording(Level::Debug);
        let mut dead = Script::new(vec![]);
        let r2 = run_trial_observed(
            &mut dead,
            &params(),
            0.5,
            &cfg,
            &mut TrialBudget::unlimited(),
            &tel2,
            None,
        );
        assert!(r2.provenance.is_fallback());
        let lines2 = sink2.lines().join("\n");
        assert!(lines2.contains("\"fallback\""));
        assert!(lines2.contains("all_samples_failed"));
        assert_eq!(tel2.counter("trial.fallbacks"), 1);
        // Spans balanced in both sessions.
        assert_eq!(tel.open_spans(), 0);
        assert_eq!(tel2.open_spans(), 0);
    }

    #[test]
    fn summary_absorbs_trials() {
        let mut s = TrialSummary::default();
        let mut b = Script::new(vec![Ok(1.0), Ok(1.0), Ok(1.0)]);
        let cfg = TrialConfig {
            warmup: 0,
            samples: 3,
            ..TrialConfig::default()
        };
        let r = run_trial(&mut b, &params(), 9.9, &cfg, &mut TrialBudget::unlimited());
        s.absorb(&r);
        assert_eq!(s.trials, 1);
        assert_eq!(s.samples, 3);
        assert_eq!(s.fallbacks, 0);
        assert!(s.to_string().contains("1 trials"));
    }
}
