//! The tuning-parameter search space.

use std::collections::HashSet;

use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::Stencil;

/// Enumerable tuning space of one kernel: the cross product of block
/// shapes, vector folds and wavefront depths that YASK-style kernels
/// expose, pruned to sensible members.
///
/// Enumeration is *canonical*: block extents are clipped to the domain
/// and points that collapse to the same effective configuration (e.g.
/// two oversize blocks that both clip to the full domain) are emitted
/// once, in first-occurrence order. This keeps rankings free of
/// duplicates and makes candidate counts stable for the parallel tuning
/// engine's chunking.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    domain: [usize; 3],
    blocks: Vec<[usize; 3]>,
    folds: Vec<Fold>,
    wavefronts: Vec<usize>,
}

fn pow2_upto(n: usize, lo: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut b = lo;
    while b < n {
        v.push(b);
        b *= 2;
    }
    v.push(n);
    v
}

impl SearchSpace {
    /// Builds the standard space the paper's tool searches:
    ///
    /// * blocks keep x unblocked (full rows for vectorisation, YASK's
    ///   default) and sweep powers of two in y and z;
    /// * folds: the in-line fold plus the 2-D folds matching the machine's
    ///   SIMD width (multi-dim folds only for stencils with extent in y);
    /// * wavefront depths 1/2/4/8 for single-input 3-D stencils.
    #[must_use]
    pub fn standard(stencil: &Stencil, domain: [usize; 3], machine: &Machine) -> Self {
        let info = stencil.info();
        let mut blocks = Vec::new();
        for by in pow2_upto(domain[1], 4) {
            for bz in pow2_upto(domain[2], 4) {
                blocks.push([domain[0], by, bz]);
            }
        }
        blocks.dedup();

        let lanes = machine.lanes();
        let mut folds = vec![Fold::new(lanes, 1, 1)];
        if info.radius[1] > 0 {
            for f in Fold::candidates(lanes) {
                if f.z == 1 && f.y > 1 && f.x > 1 {
                    folds.push(f);
                }
            }
        }

        let mut wavefronts = vec![1];
        if stencil.num_inputs() == 1 && domain[2] > 1 {
            wavefronts.extend([2, 4, 8]);
        }
        SearchSpace {
            domain,
            blocks,
            folds,
            wavefronts,
        }
    }

    /// A space with no candidates at all. Valid stencil/machine inputs
    /// never produce this; it exists so callers can exercise the
    /// empty-space error paths of the tuners.
    #[must_use]
    pub fn empty() -> Self {
        SearchSpace {
            domain: [1, 1, 1],
            blocks: Vec::new(),
            folds: Vec::new(),
            wavefronts: Vec::new(),
        }
    }

    /// A reduced space without temporal blocking (used by experiments that
    /// isolate spatial effects).
    #[must_use]
    pub fn spatial_only(stencil: &Stencil, domain: [usize; 3], machine: &Machine) -> Self {
        let mut s = Self::standard(stencil, domain, machine);
        s.wavefronts = vec![1];
        s
    }

    /// Restricts the space to a single fold (ablation).
    #[must_use]
    pub fn with_folds(mut self, folds: Vec<Fold>) -> Self {
        self.folds = folds;
        self
    }

    /// Replaces the block list with caller-chosen shapes (sweeps,
    /// ablations). Shapes may exceed the domain; enumeration clips them
    /// and drops the duplicates the clipping creates.
    #[must_use]
    pub fn with_blocks(mut self, blocks: Vec<[usize; 3]>) -> Self {
        self.blocks = blocks;
        self
    }

    /// The domain the space was built for.
    #[must_use]
    pub fn domain(&self) -> [usize; 3] {
        self.domain
    }

    /// The block shapes in the space, as provided (not yet clipped to the
    /// domain — [`SearchSpace::candidates`] does that).
    #[must_use]
    pub fn blocks(&self) -> &[[usize; 3]] {
        &self.blocks
    }

    /// Enumerates all candidate parameter sets for `threads` cores, in a
    /// deterministic order: blocks × folds × wavefronts as listed, with
    /// block extents clipped to the domain and configurations that
    /// collapse to the same effective point emitted only once (first
    /// occurrence wins).
    ///
    /// Folds that do not [`Fold::fits`] the domain are rejected here,
    /// mirroring how oversize blocks are clipped: a fold wider than the
    /// grid would force a degenerate layout, so it never becomes a
    /// candidate (unlike blocks, folds cannot be clipped — the layout is
    /// all-or-nothing).
    #[must_use]
    pub fn candidates(&self, threads: usize) -> Vec<TuningParams> {
        let mut seen: HashSet<TuningParams> = HashSet::new();
        let mut out = Vec::new();
        for &b in &self.blocks {
            for &f in &self.folds {
                if !f.fits(self.domain) {
                    continue;
                }
                for &w in &self.wavefronts {
                    let mut p = TuningParams::new(b, f).threads(threads).wavefront(w);
                    p.block = p.clipped_block(self.domain);
                    if seen.insert(p.clone()) {
                        out.push(p);
                    }
                }
            }
        }
        out
    }

    /// Number of distinct candidates per thread count (after clipping and
    /// dedup — always equal to `candidates(t).len()` for any `t`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.candidates(1).len()
    }

    /// Whether the space is empty (never, for valid inputs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
            || self.folds.is_empty()
            || self.wavefronts.is_empty()
            || self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_stencil::builders::{heat2d, heat3d, inverter_chain_rhs, wave2d};

    #[test]
    fn space_covers_blocks_folds_wavefronts() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let sp = SearchSpace::standard(&s, [128, 64, 64], &m);
        // y: 4,8,16,32,64 (5) x z: 5 = 25 blocks.
        assert_eq!(sp.blocks().len(), 25);
        let c = sp.candidates(4);
        assert_eq!(c.len(), sp.len());
        assert!(c.iter().all(|p| p.threads == 4));
        assert!(c.iter().any(|p| p.wavefront == 4));
        assert!(c.iter().any(|p| p.fold == Fold::new(4, 2, 1)));
    }

    #[test]
    fn two_input_stencils_get_no_wavefront() {
        let m = Machine::cascade_lake();
        let sp = SearchSpace::standard(&wave2d(0.3), [128, 128, 1], &m);
        assert!(sp.candidates(1).iter().all(|p| p.wavefront == 1));
    }

    #[test]
    fn one_dim_stencils_get_inline_fold_only() {
        let m = Machine::cascade_lake();
        let sp = SearchSpace::standard(&inverter_chain_rhs(5.0, 1.0, 1.0), [1024, 1, 1], &m);
        assert!(sp
            .candidates(1)
            .iter()
            .all(|p| p.fold == Fold::new(8, 1, 1)));
    }

    #[test]
    fn rome_uses_four_lane_folds() {
        let m = Machine::rome();
        let sp = SearchSpace::standard(&heat2d(1), [256, 256, 1], &m);
        assert!(sp
            .candidates(1)
            .iter()
            .any(|p| p.fold == Fold::new(2, 2, 1)));
        assert!(sp.candidates(1).iter().all(|p| p.fold.elems() == 4));
    }

    #[test]
    fn spatial_only_strips_wavefronts() {
        let m = Machine::cascade_lake();
        let sp = SearchSpace::spatial_only(&heat3d(1), [64, 64, 64], &m);
        assert!(sp.candidates(1).iter().all(|p| p.wavefront == 1));
        assert!(!sp.is_empty());
    }

    #[test]
    fn oversize_blocks_are_clipped_and_deduped() {
        // Regression: blocks exceeding the grid collapse to the same
        // effective configuration and used to be enumerated repeatedly,
        // skewing rankings and the parallel engine's chunk accounting.
        let m = Machine::cascade_lake();
        let sp = SearchSpace::spatial_only(&heat3d(1), [64, 32, 32], &m).with_blocks(vec![
            [64, 32, 32],
            [64, 64, 32],   // y clips to 32 -> duplicate of the first
            [128, 999, 64], // everything clips to the domain -> duplicate
            [64, 16, 32],   // genuinely distinct
        ]);
        let c = sp.candidates(1);
        let folds = sp.folds.len();
        assert_eq!(
            c.len(),
            2 * folds,
            "four raw blocks collapse to two effective ones"
        );
        assert!(c
            .iter()
            .all(|p| { p.block[0] <= 64 && p.block[1] <= 32 && p.block[2] <= 32 }));
        // No two emitted candidates are equal.
        let mut uniq = HashSet::new();
        assert!(c.iter().all(|p| uniq.insert(p.clone())));
        // len() reports the deduped count.
        assert_eq!(sp.len(), c.len());
    }

    #[test]
    fn folds_exceeding_the_domain_are_rejected() {
        // A 16-lane fold cannot tile a 12-point x extent; enumeration
        // must drop it the way it clips oversize blocks, keeping only
        // the folds that fit.
        let m = Machine::cascade_lake();
        let sp = SearchSpace::spatial_only(&heat3d(1), [12, 8, 8], &m)
            .with_folds(vec![Fold::new(16, 1, 1), Fold::new(8, 1, 1)]);
        let c = sp.candidates(1);
        assert!(!c.is_empty());
        assert!(c.iter().all(|p| p.fold == Fold::new(8, 1, 1)));

        // When nothing fits, the space is honestly empty.
        let none = SearchSpace::spatial_only(&heat3d(1), [12, 8, 8], &m)
            .with_folds(vec![Fold::new(16, 1, 1)]);
        assert!(none.is_empty());
        assert!(none.candidates(1).is_empty());
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let m = Machine::cascade_lake();
        let sp = SearchSpace::spatial_only(&heat3d(1), [64, 32, 32], &m)
            .with_blocks(vec![[64, 16, 32], [64, 64, 64], [64, 32, 32]])
            .with_folds(vec![Fold::new(8, 1, 1)]);
        let c = sp.candidates(1);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].block, [64, 16, 32], "enumeration order is preserved");
        assert_eq!(c[1].block, [64, 32, 32]);
    }
}
