//! Crash-safe persistence for the tuning daemon: append-only journals
//! with length+checksum framing, torn-write recovery and atomic snapshot
//! compaction.
//!
//! # Journal format
//!
//! A journal file is an 8-byte header followed by zero or more frames:
//!
//! ```text
//! header: b"YSKJ" | version u8 | kind u8 | reserved u8 ×2
//! frame:  len u32 LE | crc32 u32 LE | payload (len bytes)
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload. A reader accepts the
//! longest clean prefix: the first frame whose length is implausible,
//! whose checksum mismatches, or which extends past end-of-file ends the
//! parse, and everything after it is dropped (`torn-write recovery`).
//! Appends never rewrite existing bytes, so a crash mid-append can only
//! damage the tail — exactly what prefix recovery repairs.
//!
//! # What is persisted
//!
//! Two journals per state directory:
//!
//! * `predictions.journal` — compact [`PredictionRecord`]s: the full
//!   [`PredictKey`] (solution signature, tuning point, cores, resident
//!   override) plus the bit patterns of the predicted MLUP/s and
//!   seconds-per-sweep. On restart the daemon *re-derives* each persisted
//!   key through the live analytic model and verifies the bits match the
//!   record ([`PersistentStore::warm_solution`]); a mismatch marks the
//!   record stale and distrusts it. The disk is an index plus an
//!   integrity check — the model stays the authority, which is what makes
//!   persistence on/off bitwise-identical by construction (and doubles as
//!   model-drift detection across versions).
//! * `drift.journal` — the daemon's long-lived [`DriftRecord`] history,
//!   the genuinely irreplaceable asset (measurements cannot be
//!   recomputed).
//!
//! # Recovery and degradation
//!
//! [`PersistentStore::open`] loads both journals, truncates each at its
//! first corrupt record, rewrites the clean prefix atomically
//! (tmp+rename) and emits a `persist.recovered` telemetry event per
//! damaged file. A journal whose append fails (torn write, out of space)
//! poisons itself — later appends are refused so a readable prefix is
//! never buried under unreadable bytes — and the daemon keeps serving
//! from memory; [`PersistentStore::compact`] heals poisoned journals by
//! snapshotting the in-memory state.
//!
//! Injectable I/O faults ([`FaultyMedium`], driven by the
//! [`FaultPlan`] `io_*` probabilities) make all of this property-testable
//! without touching a real disk.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use yasksite_grid::Fold;
use yasksite_telemetry::{Level, Telemetry};

use crate::cache::{PredictKey, PredictionCache};
use crate::drift::DriftRecord;
use crate::solution::Solution;
use crate::trial::{FaultPlan, TrialRng};

use yasksite_engine::TuningParams;

/// Version byte of the journal header. Readers reject other versions
/// (dropping the whole file to an empty clean prefix).
pub const JOURNAL_VERSION: u8 = 1;

/// Magic prefix of every journal file.
const MAGIC: [u8; 4] = *b"YSKJ";

/// Upper bound on a single record's payload; a length field beyond this
/// is treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 1 << 20;

/// Which journal a file holds; encoded in the header so a predictions
/// file pointed at the drift loader (or vice versa) is rejected instead
/// of misparsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalKind {
    /// Persisted prediction-cache records.
    Predictions,
    /// Persisted drift-ledger records.
    Drift,
}

impl JournalKind {
    fn byte(self) -> u8 {
        match self {
            JournalKind::Predictions => 1,
            JournalKind::Drift => 2,
        }
    }

    /// Canonical file name inside a state directory.
    #[must_use]
    pub fn file_name(self) -> &'static str {
        match self {
            JournalKind::Predictions => "predictions.journal",
            JournalKind::Drift => "drift.journal",
        }
    }
}

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum in every journal frame).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The 8-byte header opening every journal of `kind`.
#[must_use]
pub fn journal_header(kind: JournalKind) -> [u8; 8] {
    [
        MAGIC[0],
        MAGIC[1],
        MAGIC[2],
        MAGIC[3],
        JOURNAL_VERSION,
        kind.byte(),
        0,
        0,
    ]
}

/// Frames `payload` as `[len u32 LE][crc32 u32 LE][payload]`.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a journal load found: how many records survived and what, if
/// anything, was dropped from the tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frames in the clean prefix.
    pub records: usize,
    /// Bytes after the clean prefix that were discarded.
    pub dropped_bytes: usize,
    /// Why the parse stopped early, when it did.
    pub reason: Option<String>,
}

impl RecoveryReport {
    /// Whether the whole file parsed (nothing was dropped).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.dropped_bytes == 0 && self.reason.is_none()
    }
}

/// Parses `bytes` as a journal of `kind`, returning the longest clean
/// prefix of frame payloads plus a [`RecoveryReport`] describing anything
/// dropped. Never fails: arbitrary garbage decodes to zero records with
/// every byte reported dropped. An empty byte string (a journal that was
/// never created) is clean and empty.
#[must_use]
pub fn decode_journal(bytes: &[u8], kind: JournalKind) -> (Vec<Vec<u8>>, RecoveryReport) {
    let mut report = RecoveryReport::default();
    if bytes.is_empty() {
        return (Vec::new(), report);
    }
    if bytes.len() < 8 {
        report.dropped_bytes = bytes.len();
        report.reason = Some("truncated header".into());
        return (Vec::new(), report);
    }
    if bytes[0..4] != MAGIC || bytes[4] != JOURNAL_VERSION || bytes[5] != kind.byte() {
        report.dropped_bytes = bytes.len();
        report.reason = Some("bad header".into());
        return (Vec::new(), report);
    }
    let mut frames = Vec::new();
    let mut pos = 8usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            report.reason = Some(format!("torn frame header at byte {pos}"));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_BYTES {
            report.reason = Some(format!("implausible record length {len} at byte {pos}"));
            break;
        }
        if remaining < 8 + len {
            report.reason = Some(format!("torn record at byte {pos}"));
            break;
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            report.reason = Some(format!("checksum mismatch at byte {pos}"));
            break;
        }
        frames.push(payload.to_vec());
        pos += 8 + len;
    }
    report.records = frames.len();
    report.dropped_bytes = bytes.len() - pos;
    (frames, report)
}

/// Where journal appends go. The production medium is a file opened in
/// append mode; tests use an in-memory buffer, optionally wrapped in
/// [`FaultyMedium`] to inject I/O faults.
pub trait JournalMedium: Send {
    /// Appends `bytes` at the end of the medium. Partial writes followed
    /// by an error model a torn write.
    ///
    /// # Errors
    /// Whatever the underlying storage reports.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Flushes buffered bytes to the medium.
    ///
    /// # Errors
    /// Whatever the underlying storage reports.
    fn flush(&mut self) -> io::Result<()>;
}

/// A file opened in append mode.
pub struct FileMedium {
    file: fs::File,
}

impl FileMedium {
    /// Opens (creating if missing) `path` for appending.
    ///
    /// # Errors
    /// Propagates the open error.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileMedium { file })
    }
}

impl JournalMedium for FileMedium {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

/// An in-memory medium whose contents tests can inspect; cloning shares
/// the buffer, so keep a clone and hand the other to the journal.
#[derive(Debug, Clone, Default)]
pub struct MemMedium {
    data: Arc<Mutex<Vec<u8>>>,
}

impl MemMedium {
    /// An empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        MemMedium::default()
    }

    /// A copy of everything appended so far.
    #[must_use]
    pub fn contents(&self) -> Vec<u8> {
        self.data.lock().expect("medium poisoned").clone()
    }
}

impl JournalMedium for MemMedium {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.data
            .lock()
            .expect("medium poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Wraps a medium and injects seeded I/O faults per append, driven by the
/// `io_*` probabilities of a [`FaultPlan`]: a *short write* appends only
/// a prefix and errors, *corruption* silently flips one bit (caught later
/// by the checksum), *ENOSPC* errors writing nothing. Exactly two RNG
/// draws are consumed per append, so the fault pattern depends only on
/// the seed and the append index.
pub struct FaultyMedium<M> {
    inner: M,
    plan: FaultPlan,
    rng: TrialRng,
}

impl<M> FaultyMedium<M> {
    /// Wraps `inner` under `plan`.
    #[must_use]
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        FaultyMedium {
            inner,
            plan,
            rng: TrialRng::new(plan.seed),
        }
    }
}

impl<M: JournalMedium> JournalMedium for FaultyMedium<M> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let category = self.rng.next_f64();
        let detail = self.rng.next_u64();
        let p = &self.plan;
        if bytes.is_empty() {
            return self.inner.append(bytes);
        }
        if category < p.io_short_prob {
            let cut = (detail as usize) % bytes.len();
            self.inner.append(&bytes[..cut])?;
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        if category < p.io_short_prob + p.io_corrupt_prob {
            let mut copy = bytes.to_vec();
            let at = (detail as usize) % copy.len();
            copy[at] ^= 0x40;
            return self.inner.append(&copy);
        }
        if category < p.io_short_prob + p.io_corrupt_prob + p.io_enospc_prob {
            return Err(io::Error::other("injected ENOSPC: no space left on device"));
        }
        self.inner.append(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// An append-only journal writer over any [`JournalMedium`]. After the
/// first failed append the journal is *poisoned*: further appends are
/// refused, because bytes after a torn tail would be unreadable anyway.
/// [`PersistentStore::compact`] heals a poisoned journal by rewriting it
/// from memory.
pub struct Journal {
    medium: Box<dyn JournalMedium>,
    failed: Option<String>,
}

impl Journal {
    /// A journal whose header is already on the medium (resuming an
    /// existing file).
    #[must_use]
    pub fn resume(medium: Box<dyn JournalMedium>) -> Self {
        Journal {
            medium,
            failed: None,
        }
    }

    /// A journal on a fresh medium: appends the `kind` header first. If
    /// even the header fails to write the journal starts poisoned.
    #[must_use]
    pub fn create(mut medium: Box<dyn JournalMedium>, kind: JournalKind) -> Self {
        let failed = match medium
            .append(&journal_header(kind))
            .and_then(|()| medium.flush())
        {
            Ok(()) => None,
            Err(e) => Some(e.to_string()),
        };
        Journal { medium, failed }
    }

    /// Whether appends are still accepted.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.failed.is_none()
    }

    /// Frames and appends `payload`, flushing the medium.
    ///
    /// # Errors
    /// The append error; the journal is poisoned from the first one.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if let Some(why) = &self.failed {
            return Err(io::Error::other(format!(
                "journal poisoned by earlier failure: {why}"
            )));
        }
        let res = self
            .medium
            .append(&frame(payload))
            .and_then(|()| self.medium.flush());
        if let Err(e) = &res {
            self.failed = Some(e.to_string());
        }
        res
    }
}

/// One persisted prediction: the full cache key plus the bit patterns of
/// the model's answer. See the module docs for why values are verified
/// against the live model rather than trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictionRecord {
    /// The cache key (solution signature, tuning point, cores, resident
    /// override).
    pub key: PredictKey,
    /// `f64::to_bits` of the predicted MLUP/s.
    pub mlups_bits: u64,
    /// `f64::to_bits` of the predicted seconds per sweep.
    pub seconds_bits: u64,
    /// Whether the wavefront adjustment was in effect.
    pub wavefront_effective: bool,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Cursor-style reader for record payloads.
struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| "record too short".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "record too short".to_string())?;
        self.pos = end;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "value exceeds usize".to_string())
    }

    fn str(&mut self) -> Result<String, String> {
        let len = u32::from_le_bytes(
            self.bytes
                .get(self.pos..self.pos + 4)
                .ok_or_else(|| "record too short".to_string())?
                .try_into()
                .expect("4 bytes"),
        ) as usize;
        self.pos += 4;
        let end = self.pos + len;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "record too short".to_string())?;
        self.pos = end;
        String::from_utf8(slice.to_vec()).map_err(|_| "invalid utf-8 in record".to_string())
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err("trailing bytes in record".to_string())
        }
    }
}

/// Encodes a [`PredictionRecord`] payload (before framing).
#[must_use]
pub fn encode_prediction(rec: &PredictionRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    let p = &rec.key.params;
    put_u64(&mut out, rec.key.solution);
    for b in p.block {
        put_u64(&mut out, b as u64);
    }
    match p.sub_block {
        Some(sb) => {
            out.push(1);
            for b in sb {
                put_u64(&mut out, b as u64);
            }
        }
        None => out.push(0),
    }
    put_u64(&mut out, p.fold.x as u64);
    put_u64(&mut out, p.fold.y as u64);
    put_u64(&mut out, p.fold.z as u64);
    put_u64(&mut out, p.threads as u64);
    put_u64(&mut out, p.wavefront as u64);
    out.push(u8::from(p.streaming_stores));
    put_u64(&mut out, rec.key.cores as u64);
    match rec.key.resident_bits {
        Some(bits) => {
            out.push(1);
            put_u64(&mut out, bits);
        }
        None => out.push(0),
    }
    put_u64(&mut out, rec.mlups_bits);
    put_u64(&mut out, rec.seconds_bits);
    out.push(u8::from(rec.wavefront_effective));
    out
}

/// Decodes a [`PredictionRecord`] payload.
///
/// # Errors
/// A message when the payload is short, overlong, or semantically invalid
/// (e.g. a zero fold lane). Checksummed frames make this unreachable in
/// practice, but the loader treats it as corruption all the same.
pub fn decode_prediction(payload: &[u8]) -> Result<PredictionRecord, String> {
    let mut d = Dec::new(payload);
    let solution = d.u64()?;
    let block = [d.usize()?, d.usize()?, d.usize()?];
    let sub_block = if d.u8()? != 0 {
        Some([d.usize()?, d.usize()?, d.usize()?])
    } else {
        None
    };
    let (fx, fy, fz) = (d.usize()?, d.usize()?, d.usize()?);
    if fx == 0 || fy == 0 || fz == 0 {
        return Err("zero fold lane".into());
    }
    let threads = d.usize()?;
    let wavefront = d.usize()?;
    let streaming_stores = d.u8()? != 0;
    let cores = d.usize()?;
    let resident_bits = if d.u8()? != 0 { Some(d.u64()?) } else { None };
    let mlups_bits = d.u64()?;
    let seconds_bits = d.u64()?;
    let wavefront_effective = d.u8()? != 0;
    d.finish()?;
    Ok(PredictionRecord {
        key: PredictKey {
            solution,
            params: TuningParams {
                block,
                sub_block,
                fold: Fold::new(fx, fy, fz),
                threads,
                wavefront,
                streaming_stores,
            },
            cores,
            resident_bits,
        },
        mlups_bits,
        seconds_bits,
        wavefront_effective,
    })
}

/// Encodes a [`DriftRecord`] payload (before framing).
#[must_use]
pub fn encode_drift(rec: &DriftRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + rec.stencil.len() + rec.params.len());
    put_str(&mut out, &rec.stencil);
    put_str(&mut out, &rec.params);
    put_u64(&mut out, rec.cores as u64);
    put_u64(&mut out, rec.predicted_mlups.to_bits());
    put_u64(&mut out, rec.measured_mlups.to_bits());
    put_str(&mut out, &rec.tier);
    out
}

/// Decodes a [`DriftRecord`] payload.
///
/// The tier string is a trailing, optional field: journals written
/// before tier attribution end after the measured bits and decode with
/// tier `"?"`.
///
/// # Errors
/// A message when the payload is malformed (see [`decode_prediction`]).
pub fn decode_drift(payload: &[u8]) -> Result<DriftRecord, String> {
    let mut d = Dec::new(payload);
    let stencil = d.str()?;
    let params = d.str()?;
    let cores = d.usize()?;
    let predicted_mlups = f64::from_bits(d.u64()?);
    let measured_mlups = f64::from_bits(d.u64()?);
    let tier = if d.at_end() {
        "?".to_string()
    } else {
        d.str()?
    };
    d.finish()?;
    Ok(DriftRecord {
        stencil,
        params,
        cores,
        tier,
        predicted_mlups,
        measured_mlups,
    })
}

/// One damaged-file repair performed by [`PersistentStore::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// File name inside the state directory.
    pub file: String,
    /// Records in the clean prefix that was kept.
    pub kept_records: usize,
    /// Bytes dropped after the clean prefix.
    pub dropped_bytes: usize,
    /// Why the parse stopped.
    pub reason: String,
}

/// Warm-start outcome of [`PersistentStore::warm_solution`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Persisted records the live model reproduced bit-for-bit (now hot
    /// in the cache).
    pub loaded: usize,
    /// Persisted records the live model disagreed with (distrusted —
    /// the model's answer is cached, the record is ignored).
    pub stale: usize,
}

/// Outcome of [`PersistentStore::absorb_cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbsorbStats {
    /// New records journaled.
    pub persisted: usize,
    /// Appends that failed (the journal is poisoned after the first).
    pub errors: usize,
}

/// Disk-backed store for the prediction cache and the drift ledger. See
/// the module docs for the format and the recovery rules.
pub struct PersistentStore {
    dir: Option<PathBuf>,
    predictions: HashMap<PredictKey, PredictionRecord>,
    pred_order: Vec<PredictKey>,
    drift: Vec<DriftRecord>,
    pred_journal: Journal,
    drift_journal: Journal,
    recoveries: Vec<RecoveryEvent>,
}

/// Loads one journal file: clean-prefix decode, semantic parse, atomic
/// rewrite when anything was dropped. Returns the parsed payloads and an
/// optional recovery event.
fn load_journal_file(
    dir: &Path,
    kind: JournalKind,
    mut accept: impl FnMut(&[u8]) -> Result<(), String>,
) -> io::Result<(Journal, Option<RecoveryEvent>)> {
    let path = dir.join(kind.file_name());
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let (frames, mut report) = decode_journal(&bytes, kind);
    let mut clean: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
    for f in frames {
        match accept(&f) {
            Ok(()) => clean.push(f),
            Err(e) => {
                report.reason.get_or_insert(e);
                report.dropped_bytes += 8 + f.len();
                break;
            }
        }
    }
    report.records = clean.len();
    let event = if report.is_clean() && !bytes.is_empty() {
        None
    } else {
        // Missing or damaged: rewrite the clean prefix atomically. A
        // fresh file (no damage) gets just its header and no event.
        let mut rebuilt = Vec::with_capacity(8 + clean.iter().map(|f| 8 + f.len()).sum::<usize>());
        rebuilt.extend_from_slice(&journal_header(kind));
        for f in &clean {
            rebuilt.extend_from_slice(&frame(f));
        }
        write_atomic(&path, &rebuilt)?;
        report.reason.as_ref().map(|reason| RecoveryEvent {
            file: kind.file_name().to_string(),
            kept_records: report.records,
            dropped_bytes: report.dropped_bytes,
            reason: reason.clone(),
        })
    };
    let journal = Journal::resume(Box::new(FileMedium::append_to(&path)?));
    Ok((journal, event))
}

/// Writes `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, rename over the target.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

impl PersistentStore {
    /// Opens (creating as needed) the store under `dir`, recovering each
    /// journal to its longest clean prefix. Every repaired file emits a
    /// `persist.recovered` telemetry event and bumps the
    /// `persist.recovered` counter.
    ///
    /// # Errors
    /// Propagates directory-creation and file I/O errors (not corruption,
    /// which is recovered, and not missing files, which are created).
    pub fn open(dir: &Path, tel: &Telemetry) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let mut predictions = HashMap::new();
        let mut pred_order = Vec::new();
        let (pred_journal, pred_event) =
            load_journal_file(dir, JournalKind::Predictions, |payload| {
                let rec = decode_prediction(payload)?;
                if predictions.insert(rec.key.clone(), rec.clone()).is_none() {
                    pred_order.push(rec.key);
                }
                Ok(())
            })?;
        let mut drift = Vec::new();
        let (drift_journal, drift_event) = load_journal_file(dir, JournalKind::Drift, |payload| {
            drift.push(decode_drift(payload)?);
            Ok(())
        })?;
        let recoveries: Vec<RecoveryEvent> =
            [pred_event, drift_event].into_iter().flatten().collect();
        for r in &recoveries {
            tel.inc("persist.recovered");
            tel.event(
                Level::Info,
                "persist.recovered",
                0,
                &[
                    ("file", r.file.as_str().into()),
                    ("kept_records", r.kept_records.into()),
                    ("dropped_bytes", r.dropped_bytes.into()),
                    ("reason", r.reason.as_str().into()),
                ],
            );
        }
        Ok(PersistentStore {
            dir: Some(dir.to_path_buf()),
            predictions,
            pred_order,
            drift,
            pred_journal,
            drift_journal,
            recoveries,
        })
    }

    /// A store with no backing directory, journaling into the given
    /// media — the fault-injection entry point for tests.
    /// [`PersistentStore::compact`] is a no-op without a directory.
    #[must_use]
    pub fn with_media(pred: Box<dyn JournalMedium>, drift_medium: Box<dyn JournalMedium>) -> Self {
        PersistentStore {
            dir: None,
            predictions: HashMap::new(),
            pred_order: Vec::new(),
            drift: Vec::new(),
            pred_journal: Journal::create(pred, JournalKind::Predictions),
            drift_journal: Journal::create(drift_medium, JournalKind::Drift),
            recoveries: Vec::new(),
        }
    }

    /// Repairs performed when this store was opened.
    #[must_use]
    pub fn recoveries(&self) -> &[RecoveryEvent] {
        &self.recoveries
    }

    /// Persisted prediction records.
    #[must_use]
    pub fn prediction_count(&self) -> usize {
        self.predictions.len()
    }

    /// Persisted drift records.
    #[must_use]
    pub fn drift_count(&self) -> usize {
        self.drift.len()
    }

    /// The persisted drift history, in journal order.
    #[must_use]
    pub fn drift_records(&self) -> &[DriftRecord] {
        &self.drift
    }

    /// Whether both journals still accept appends.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.pred_journal.healthy() && self.drift_journal.healthy()
    }

    /// Whether `key` is already persisted.
    #[must_use]
    pub fn has_prediction(&self, key: &PredictKey) -> bool {
        self.predictions.contains_key(key)
    }

    /// Journals one prediction. Returns `Ok(false)` when an identical
    /// record is already persisted (nothing written). The in-memory copy
    /// is kept even when the journal append fails, so the daemon keeps
    /// its knowledge and [`PersistentStore::compact`] can heal the file.
    ///
    /// # Errors
    /// The journal append error.
    pub fn record_prediction(&mut self, rec: PredictionRecord) -> io::Result<bool> {
        if self.predictions.get(&rec.key) == Some(&rec) {
            return Ok(false);
        }
        if self
            .predictions
            .insert(rec.key.clone(), rec.clone())
            .is_none()
        {
            self.pred_order.push(rec.key.clone());
        }
        self.pred_journal.append(&encode_prediction(&rec))?;
        Ok(true)
    }

    /// Journals one drift record (kept in memory regardless of the
    /// append outcome, like [`PersistentStore::record_prediction`]).
    ///
    /// # Errors
    /// The journal append error.
    pub fn record_drift(&mut self, rec: &DriftRecord) -> io::Result<()> {
        self.drift.push(rec.clone());
        self.drift_journal.append(&encode_drift(rec))
    }

    /// Journals every cache entry not yet persisted, in a stable sorted
    /// order (the cache iterates in hash order). Append errors are
    /// counted, not propagated — persistence degrades, serving does not.
    pub fn absorb_cache(&mut self, cache: &PredictionCache) -> AbsorbStats {
        let mut fresh: Vec<PredictionRecord> = Vec::new();
        cache.for_each(|key, perf| {
            let rec = PredictionRecord {
                key: key.clone(),
                mlups_bits: perf.mlups.to_bits(),
                seconds_bits: perf.seconds_per_sweep.to_bits(),
                wavefront_effective: perf.wavefront_effective,
            };
            if self.predictions.get(key) != Some(&rec) {
                fresh.push(rec);
            }
        });
        fresh.sort_by(|a, b| {
            (a.key.solution, a.key.cores, a.key.resident_bits)
                .cmp(&(b.key.solution, b.key.cores, b.key.resident_bits))
                .then_with(|| a.key.params.to_string().cmp(&b.key.params.to_string()))
        });
        let mut stats = AbsorbStats::default();
        for rec in fresh {
            match self.record_prediction(rec) {
                Ok(true) => stats.persisted += 1,
                Ok(false) => {}
                Err(_) => stats.errors += 1,
            }
        }
        stats
    }

    /// Verified warm start: for every persisted record of `sol`,
    /// recomputes the prediction through `cache` with the *live* model
    /// (so the authentic full prediction enters the cache) and checks the
    /// persisted bits match. Matching records count as `loaded`;
    /// mismatches (a changed model, a hash collision) count as `stale`
    /// and are distrusted — the model's answer wins.
    pub fn warm_solution(&self, sol: &Solution, cache: &PredictionCache) -> WarmStats {
        let signature = sol.signature();
        let mut stats = WarmStats::default();
        for key in &self.pred_order {
            if key.solution != signature {
                continue;
            }
            let Some(rec) = self.predictions.get(key) else {
                continue;
            };
            let (perf, _hit) = cache.predict_keyed(key.clone(), || match key.resident_bits {
                Some(bits) => {
                    sol.predict_with_resident(&key.params, key.cores, f64::from_bits(bits))
                }
                None => sol.predict(&key.params, key.cores),
            });
            if perf.mlups.to_bits() == rec.mlups_bits
                && perf.seconds_per_sweep.to_bits() == rec.seconds_bits
                && perf.wavefront_effective == rec.wavefront_effective
            {
                stats.loaded += 1;
            } else {
                stats.stale += 1;
            }
        }
        stats
    }

    /// Snapshot compaction: atomically rewrites both journals from the
    /// in-memory state (tmp + fsync + rename), deduplicated and in a
    /// stable order, then resumes appending to the new files. Heals
    /// poisoned journals. A media-backed store (no directory) is a no-op.
    ///
    /// # Errors
    /// Propagates snapshot-write errors; the existing files are untouched
    /// when the snapshot fails.
    pub fn compact(&mut self) -> io::Result<()> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        let mut pred_bytes = Vec::new();
        pred_bytes.extend_from_slice(&journal_header(JournalKind::Predictions));
        for key in &self.pred_order {
            if let Some(rec) = self.predictions.get(key) {
                pred_bytes.extend_from_slice(&frame(&encode_prediction(rec)));
            }
        }
        let mut drift_bytes = Vec::new();
        drift_bytes.extend_from_slice(&journal_header(JournalKind::Drift));
        for rec in &self.drift {
            drift_bytes.extend_from_slice(&frame(&encode_drift(rec)));
        }
        let pred_path = dir.join(JournalKind::Predictions.file_name());
        let drift_path = dir.join(JournalKind::Drift.file_name());
        write_atomic(&pred_path, &pred_bytes)?;
        write_atomic(&drift_path, &drift_bytes)?;
        self.pred_journal = Journal::resume(Box::new(FileMedium::append_to(&pred_path)?));
        self.drift_journal = Journal::resume(Box::new(FileMedium::append_to(&drift_path)?));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use yasksite_arch::Machine;
    use yasksite_stencil::builders::heat3d;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "yasksite-persist-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_pred(i: u64) -> PredictionRecord {
        let params = TuningParams::new([32 + i as usize, 8, 8], Fold::new(8, 1, 1))
            .threads(2)
            .wavefront(1 + (i as usize % 3));
        PredictionRecord {
            key: PredictKey::new(0xABCD_0000 + i, &params, 4),
            mlups_bits: ((1000 + i) as f64).to_bits(),
            seconds_bits: (0.5 + i as f64).to_bits(),
            wavefront_effective: i.is_multiple_of(2),
        }
    }

    fn sample_drift(i: u64) -> DriftRecord {
        DriftRecord {
            stencil: format!("heat-3d-r{i}"),
            params: "b=32x8x8 fold=8x1x1 t=2 wf=1".to_string(),
            cores: 4,
            tier: "folded".to_string(),
            predicted_mlups: 1000.0 + i as f64,
            measured_mlups: 990.0 + i as f64,
        }
    }

    #[test]
    fn drift_records_without_tier_bytes_decode_with_unknown_tier() {
        // A pre-tier-attribution journal payload ends after the measured
        // bits; it must decode (tier "?"), not be dropped as corrupt.
        let rec = sample_drift(3);
        let mut legacy = Vec::new();
        put_str(&mut legacy, &rec.stencil);
        put_str(&mut legacy, &rec.params);
        put_u64(&mut legacy, rec.cores as u64);
        put_u64(&mut legacy, rec.predicted_mlups.to_bits());
        put_u64(&mut legacy, rec.measured_mlups.to_bits());
        let decoded = decode_drift(&legacy).expect("legacy payload decodes");
        assert_eq!(decoded.tier, "?");
        assert_eq!(decoded.stencil, rec.stencil);
        assert_eq!(
            decoded.measured_mlups.to_bits(),
            rec.measured_mlups.to_bits()
        );
        // And the modern round trip preserves the tier exactly.
        let modern = decode_drift(&encode_drift(&rec)).unwrap();
        assert_eq!(modern, rec);
    }

    #[test]
    fn frames_round_trip() {
        let mut bytes = journal_header(JournalKind::Drift).to_vec();
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| encode_drift(&sample_drift(i))).collect();
        for p in &payloads {
            bytes.extend_from_slice(&frame(p));
        }
        let (frames, report) = decode_journal(&bytes, JournalKind::Drift);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(frames, payloads);
    }

    #[test]
    fn torn_tail_truncates_to_prefix() {
        let mut bytes = journal_header(JournalKind::Drift).to_vec();
        for i in 0..4 {
            bytes.extend_from_slice(&frame(&encode_drift(&sample_drift(i))));
        }
        let full = bytes.len();
        bytes.truncate(full - 5); // tear the last frame
        let (frames, report) = decode_journal(&bytes, JournalKind::Drift);
        assert_eq!(frames.len(), 3);
        assert!(!report.is_clean());
        assert!(report.reason.as_deref().unwrap().contains("torn"));
    }

    #[test]
    fn checksum_mismatch_truncates() {
        let mut bytes = journal_header(JournalKind::Drift).to_vec();
        let first_end;
        {
            let f = frame(&encode_drift(&sample_drift(0)));
            bytes.extend_from_slice(&f);
            first_end = bytes.len();
            bytes.extend_from_slice(&frame(&encode_drift(&sample_drift(1))));
            bytes.extend_from_slice(&frame(&encode_drift(&sample_drift(2))));
        }
        bytes[first_end + 12] ^= 0x40; // flip a payload byte of record 2
        let (frames, report) = decode_journal(&bytes, JournalKind::Drift);
        assert_eq!(frames.len(), 1, "only the record before the flip survives");
        assert!(report.reason.as_deref().unwrap().contains("checksum"));
    }

    #[test]
    fn wrong_kind_or_garbage_drops_everything() {
        let mut bytes = journal_header(JournalKind::Predictions).to_vec();
        bytes.extend_from_slice(&frame(b"x"));
        let (frames, report) = decode_journal(&bytes, JournalKind::Drift);
        assert!(frames.is_empty());
        assert_eq!(report.reason.as_deref(), Some("bad header"));
        let (frames, report) = decode_journal(b"not a journal at all", JournalKind::Drift);
        assert!(frames.is_empty());
        assert!(!report.is_clean());
        let (frames, report) = decode_journal(b"", JournalKind::Drift);
        assert!(frames.is_empty());
        assert!(report.is_clean(), "a never-created journal is clean");
    }

    #[test]
    fn prediction_codec_round_trips() {
        for i in 0..6 {
            let mut rec = sample_pred(i);
            if i % 2 == 0 {
                rec.key.resident_bits = Some(123_456 + i);
            }
            if i % 3 == 0 {
                rec.key.params.sub_block = Some([16, 4, 4]);
            }
            let decoded = decode_prediction(&encode_prediction(&rec)).unwrap();
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn drift_codec_round_trips() {
        let rec = sample_drift(3);
        assert_eq!(decode_drift(&encode_drift(&rec)).unwrap(), rec);
    }

    #[test]
    fn decoder_rejects_malformed_payloads() {
        assert!(decode_prediction(b"").is_err());
        assert!(decode_drift(&[0xFF; 4]).is_err());
        let mut good = encode_prediction(&sample_pred(0));
        good.push(0); // trailing byte
        assert!(decode_prediction(&good).is_err());
    }

    #[test]
    fn store_persists_and_reloads() {
        let dir = tmp_dir("roundtrip");
        let tel = Telemetry::disabled();
        {
            let mut store = PersistentStore::open(&dir, &tel).unwrap();
            assert!(store.recoveries().is_empty());
            for i in 0..3 {
                assert!(store.record_prediction(sample_pred(i)).unwrap());
            }
            assert!(
                !store.record_prediction(sample_pred(1)).unwrap(),
                "identical record is deduplicated"
            );
            store.record_drift(&sample_drift(0)).unwrap();
        }
        let store = PersistentStore::open(&dir, &tel).unwrap();
        assert!(store.recoveries().is_empty());
        assert_eq!(store.prediction_count(), 3);
        assert_eq!(store.drift_count(), 1);
        assert!(store.has_prediction(&sample_pred(2).key));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_file_recovers_with_event_and_appends_continue() {
        let dir = tmp_dir("recover");
        let (tel, sink) = Telemetry::recording(Level::Info);
        {
            let mut store = PersistentStore::open(&dir, &tel).unwrap();
            for i in 0..3 {
                store.record_drift(&sample_drift(i)).unwrap();
            }
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let path = dir.join(JournalKind::Drift.file_name());
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();

        let mut store = PersistentStore::open(&dir, &tel).unwrap();
        assert_eq!(store.drift_count(), 2, "clean prefix only");
        assert_eq!(store.recoveries().len(), 1);
        assert_eq!(tel.counter("persist.recovered"), 1);
        assert!(
            sink.lines().iter().any(|l| l.contains("persist.recovered")),
            "recovery event is on the trace"
        );
        // The rewritten file is clean and appendable.
        store.record_drift(&sample_drift(9)).unwrap();
        drop(store);
        let store = PersistentStore::open(&dir, &tel).unwrap();
        assert_eq!(store.drift_count(), 3);
        assert_eq!(store.recoveries().len(), 0, "no damage on the second load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_heals_and_preserves_state() {
        let dir = tmp_dir("compact");
        let tel = Telemetry::disabled();
        let mut store = PersistentStore::open(&dir, &tel).unwrap();
        for i in 0..4 {
            store.record_prediction(sample_pred(i)).unwrap();
            store.record_drift(&sample_drift(i)).unwrap();
        }
        store.compact().unwrap();
        assert!(store.healthy());
        store.record_prediction(sample_pred(9)).unwrap();
        drop(store);
        let store = PersistentStore::open(&dir, &tel).unwrap();
        assert!(store.recoveries().is_empty(), "compacted files are clean");
        assert_eq!(store.prediction_count(), 5);
        assert_eq!(store.drift_count(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_medium_is_deterministic_and_poisons_journals() {
        let plan = FaultPlan::io_faults(42, 0.0, 0.0, 1.0); // always ENOSPC
        let mem = MemMedium::new();
        let mut store = PersistentStore::with_media(
            Box::new(FaultyMedium::new(mem.clone(), plan)),
            Box::new(MemMedium::new()),
        );
        assert!(!store.healthy(), "even the header append failed");
        assert!(store.record_prediction(sample_pred(0)).is_err());
        assert_eq!(
            store.prediction_count(),
            1,
            "memory keeps serving although the journal is poisoned"
        );
        assert!(mem.contents().is_empty(), "ENOSPC writes nothing");

        // Deterministic: the same plan reproduces the same byte stream.
        let run = |seed: u64| {
            let mem = MemMedium::new();
            let mut j = Journal::create(
                Box::new(FaultyMedium::new(
                    mem.clone(),
                    FaultPlan::io_faults(seed, 0.3, 0.3, 0.1),
                )),
                JournalKind::Drift,
            );
            for i in 0..10 {
                let _ = j.append(&encode_drift(&sample_drift(i)));
            }
            mem.contents()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn warm_solution_verifies_against_the_live_model() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let params = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)).threads(2);
        let perf = sol.predict(&params, 2);
        let good = PredictionRecord {
            key: PredictKey::new(sol.signature(), &params, 2),
            mlups_bits: perf.mlups.to_bits(),
            seconds_bits: perf.seconds_per_sweep.to_bits(),
            wavefront_effective: perf.wavefront_effective,
        };
        let mut stale = good.clone();
        stale.key.params = params.clone().wavefront(2);
        stale.mlups_bits ^= 1; // a record the model no longer agrees with
        let mut store =
            PersistentStore::with_media(Box::new(MemMedium::new()), Box::new(MemMedium::new()));
        store.record_prediction(good.clone()).unwrap();
        store.record_prediction(stale).unwrap();

        let cache = PredictionCache::new();
        let stats = store.warm_solution(&sol, &cache);
        assert_eq!(
            stats,
            WarmStats {
                loaded: 1,
                stale: 1
            }
        );
        assert_eq!(cache.len(), 2, "both keys are now hot with model answers");
        // The warmed entry serves hits that are bitwise the model's.
        let (cached, hit) = cache.predict(&sol, &params, 2);
        assert!(hit);
        assert_eq!(cached.mlups.to_bits(), good.mlups_bits);
    }

    #[test]
    fn absorb_cache_persists_new_entries_once() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let cache = PredictionCache::new();
        for wf in 1..=3 {
            let p = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)).wavefront(wf);
            let _ = cache.predict(&sol, &p, 1);
        }
        let mut store =
            PersistentStore::with_media(Box::new(MemMedium::new()), Box::new(MemMedium::new()));
        let first = store.absorb_cache(&cache);
        assert_eq!(
            first,
            AbsorbStats {
                persisted: 3,
                errors: 0
            }
        );
        let second = store.absorb_cache(&cache);
        assert_eq!(
            second,
            AbsorbStats {
                persisted: 0,
                errors: 0
            }
        );
        assert_eq!(store.prediction_count(), 3);
    }
}
