//! The unified tuning request: one builder-style object carrying every
//! knob of a tuning session.
//!
//! Earlier revisions spread the session configuration across parallel
//! argument lists — strategy, core count, [`TrialConfig`],
//! [`TrialBudget`], an optional [`FaultPlan`] — and every new knob grew
//! every signature. [`TuneRequest`] consolidates them (plus the parallel
//! engine's `jobs` and the [`PredictionCache`] choice) behind one type,
//! with [`crate::Solution::tune_with`] as the canonical entry point:
//!
//! ```
//! use yasksite::{Solution, TuneRequest, TuneStrategy};
//! use yasksite_arch::Machine;
//! use yasksite_stencil::builders::heat3d;
//!
//! let sol = Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake());
//! let req = TuneRequest::new(TuneStrategy::Analytic).cores(4).jobs(2);
//! let result = sol.tune_with(&req).unwrap();
//! assert!(result.best_score > 0.0);
//! ```
//!
//! The legacy entry points (`tune`, `tune_space`, `tune_space_trials`,
//! `tune_space_with_backend`) remain as thin wrappers that build the
//! equivalent request internally.

use std::sync::Arc;

use yasksite_telemetry::Telemetry;

use crate::cache::PredictionCache;
use crate::trial::{FaultPlan, TrialBudget, TrialConfig};
use crate::tuner::TuneStrategy;

/// Environment variable overriding the default worker count; `0` or an
/// unparsable value falls through to the detected parallelism.
pub const JOBS_ENV: &str = "YASKSITE_JOBS";

/// Full configuration of one tuning session. Build with
/// [`TuneRequest::new`] and the chaining setters; consume with
/// [`crate::Solution::tune_with`] / [`crate::Solution::tune_space_with`].
#[derive(Debug, Clone)]
pub struct TuneRequest {
    /// How to pick the best point (see [`TuneStrategy`]).
    pub strategy: TuneStrategy,
    /// Active cores the tuned kernel will run on.
    pub cores: usize,
    /// Worker threads for the analytic ranking phase; `None` resolves via
    /// [`TuneRequest::default_jobs`]. Results are identical for every
    /// value — see the determinism guarantee on
    /// [`crate::Solution::tune_space_with`].
    pub jobs: Option<usize>,
    /// Measurement protocol for empirical/hybrid candidates.
    pub trial: TrialConfig,
    /// Session-wide measurement budget (the final state is returned in
    /// [`crate::TuneResult::budget`]).
    pub budget: TrialBudget,
    /// Fault injection applied to the measurement backend (testing and
    /// resilience experiments); `None` measures the backend as-is.
    pub faults: Option<FaultPlan>,
    /// Prediction cache to consult; `None` uses the process-wide
    /// [`PredictionCache::global`].
    pub cache: Option<Arc<PredictionCache>>,
    /// Telemetry handle the session records spans, events and metrics
    /// into; disabled by default. Telemetry is purely observational: it
    /// never changes winners, rankings or deterministic cost fields (the
    /// determinism suite asserts this).
    pub telemetry: Telemetry,
    /// Profile the winning configuration after tuning: one extra native
    /// host execution of the winner through the engine's
    /// [`yasksite_engine::SweepProfiler`], recorded into the telemetry
    /// trace as `profile` / `profile_pool` events. Off by default.
    /// Profiling is observational — it never changes the winner, the
    /// ranking or any deterministic cost field.
    pub profile: bool,
    /// Cap on [`crate::DriftLedger`] records per `(stencil, params,
    /// cores)` key for this session; `None` (the default) keeps every
    /// record. Evictions surface in [`crate::TuneCost::drift_evictions`].
    pub drift_cap: Option<usize>,
}

impl Default for TuneRequest {
    fn default() -> Self {
        TuneRequest::new(TuneStrategy::Analytic)
    }
}

impl TuneRequest {
    /// A request for `strategy` with defaults everywhere else: one core,
    /// automatic job count, the robust [`TrialConfig::default`] protocol,
    /// an unlimited budget, no fault injection and the global cache.
    #[must_use]
    pub fn new(strategy: TuneStrategy) -> Self {
        TuneRequest {
            strategy,
            cores: 1,
            jobs: None,
            trial: TrialConfig::default(),
            budget: TrialBudget::unlimited(),
            faults: None,
            cache: None,
            telemetry: Telemetry::disabled(),
            profile: false,
            drift_cap: None,
        }
    }

    /// Sets the active core count.
    #[must_use]
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Pins the analytic worker count (clamped to at least 1 at use).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Sets the measurement protocol.
    #[must_use]
    pub fn trial(mut self, trial: TrialConfig) -> Self {
        self.trial = trial;
        self
    }

    /// Sets the session budget.
    #[must_use]
    pub fn budget(mut self, budget: TrialBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Injects faults into the measurement backend.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Uses a private prediction cache instead of the global one (e.g. to
    /// observe cold-cache behaviour or isolate sessions in tests).
    #[must_use]
    pub fn cache(mut self, cache: Arc<PredictionCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Records the session into `telemetry` (spans, events, metrics).
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Profiles the winner after tuning (see [`TuneRequest::profile`]).
    #[must_use]
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Bounds the session's drift ledger per key (see
    /// [`TuneRequest::drift_cap`]).
    #[must_use]
    pub fn drift_cap(mut self, cap: usize) -> Self {
        self.drift_cap = Some(cap);
        self
    }

    /// The worker count this request resolves to: the pinned value, else
    /// [`TuneRequest::default_jobs`]; never 0.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(Self::default_jobs).max(1)
    }

    /// The automatic worker count: `YASKSITE_JOBS` when set to a positive
    /// integer, else the detected available parallelism, else 1.
    #[must_use]
    pub fn default_jobs() -> usize {
        if let Ok(v) = std::env::var(JOBS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The cache this request resolves to.
    #[must_use]
    pub fn cache_ref(&self) -> &PredictionCache {
        self.cache
            .as_deref()
            .unwrap_or_else(|| PredictionCache::global())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_defaults() {
        let req = TuneRequest::new(TuneStrategy::Hybrid { shortlist: 3 })
            .cores(8)
            .jobs(4)
            .trial(TrialConfig::single_shot())
            .budget(TrialBudget::runs(100))
            .faults(FaultPlan::noisy(7));
        assert_eq!(req.cores, 8);
        assert_eq!(req.effective_jobs(), 4);
        assert_eq!(req.trial.samples, 1);
        assert_eq!(req.budget.max_runs, Some(100));
        assert!(req.faults.is_some());
        assert!(req.cache.is_none(), "defaults to the global cache");
        assert!(!req.profile, "profiling is opt-in");
        assert!(req.clone().profile().profile);
        assert_eq!(req.drift_cap, None, "ledger is unbounded by default");
        assert_eq!(req.clone().drift_cap(16).drift_cap, Some(16));

        let d = TuneRequest::default();
        assert_eq!(d.strategy, TuneStrategy::Analytic);
        assert_eq!(d.cores, 1);
        assert!(d.effective_jobs() >= 1);
    }

    #[test]
    fn telemetry_defaults_disabled_and_chains() {
        assert!(!TuneRequest::default().telemetry.is_enabled());
        let req =
            TuneRequest::default().telemetry(Telemetry::null(yasksite_telemetry::Level::Info));
        assert!(req.telemetry.is_enabled());
    }

    #[test]
    fn jobs_zero_clamps_to_one() {
        assert_eq!(TuneRequest::default().jobs(0).effective_jobs(), 1);
    }

    #[test]
    fn private_cache_is_used() {
        let cache = Arc::new(PredictionCache::new());
        let req = TuneRequest::default().cache(cache.clone());
        assert!(std::ptr::eq(req.cache_ref(), cache.as_ref()));
        let global = TuneRequest::default();
        assert!(std::ptr::eq(global.cache_ref(), PredictionCache::global()));
    }
}
