//! Analytic prediction of a full tuning configuration, including the
//! wavefront adjustment the plain ECM model does not know about.

use yasksite_arch::Machine;
use yasksite_ecm::{EcmModel, EcmPrediction, KernelDesc, OverlapPolicy};
use yasksite_engine::{plan_tier, Tier, TuningParams};
use yasksite_stencil::Stencil;

/// An analytic performance prediction for one `(params, cores)` point.
#[derive(Debug, Clone)]
pub struct PredictedPerf {
    /// Predicted MLUP/s at the requested core count.
    pub mlups: f64,
    /// Predicted seconds for one sweep over the domain.
    pub seconds_per_sweep: f64,
    /// The underlying (wavefront-adjusted) ECM prediction.
    pub ecm: EcmPrediction,
    /// Whether the wavefront adjustment was applied (depth > 1 and the
    /// skewed working set fits the last-level cache).
    pub wavefront_effective: bool,
}

/// Predicts the performance of `stencil` on `domain`/`machine` under
/// `params` with `cores` active cores — the heart of YaskSite's
/// "no need to run the code" claim.
///
/// Temporal blocking is modelled on top of the spatial ECM prediction:
/// a wavefront of depth `w` divides the memory-boundary traffic by `w`
/// provided the skewed working set (`w·shift + 2r` xy-planes of both
/// buffers) fits the effective last-level-cache share; cache-boundary
/// traffic is unchanged.
#[must_use]
pub fn predict_params(
    stencil: &Stencil,
    domain: [usize; 3],
    machine: &Machine,
    params: &TuningParams,
    cores: usize,
) -> PredictedPerf {
    predict_params_resident(stencil, domain, machine, params, cores, None)
}

/// Like [`predict_params`], with an explicit steady-state resident-set
/// size (e.g. the whole grid pool of an ODE step plan). `None` keeps the
/// kernel's own grids as the resident set.
#[must_use]
pub fn predict_params_resident(
    stencil: &Stencil,
    domain: [usize; 3],
    machine: &Machine,
    params: &TuningParams,
    cores: usize,
    resident_bytes: Option<f64>,
) -> PredictedPerf {
    // Tier-aware in-core issue: when the engine's planner would run this
    // configuration on the generic per-point tier (no vectorised kernel
    // is eligible), the model must not credit it with SIMD throughput.
    // Linear row-major configurations plan onto the folded/scalar tiers,
    // so their predictions are unchanged; the tape tier keeps the
    // vectorised model because its threaded interpreter still streams
    // whole rows.
    let (tier, _) = plan_tier(stencil, params);
    let mut desc = KernelDesc::new(stencil, domain)
        .tile(params.clipped_block(domain))
        .fold(params.fold)
        .streaming_stores(params.streaming_stores)
        .scalar_issue(tier == Tier::Generic);
    if let Some(r) = resident_bytes {
        desc = desc.resident_bytes(r);
    }
    let model = EcmModel::new(machine);
    let mut p = model.predict_at(&desc, cores);

    let info = stencil.info();
    let mut wavefront_effective = false;
    if params.wavefront > 1 && stencil.num_inputs() == 1 {
        let shift = info.radius[2].max(1);
        let planes = params.wavefront * shift + 2 * info.radius[2];
        let plane_bytes =
            (domain[0] + 2 * info.radius[0]) as f64 * (domain[1] + 2 * info.radius[1]) as f64 * 8.0;
        let ws = planes as f64 * plane_bytes * 2.0; // both ping-pong buffers
        let llc = machine.caches.last().expect("machine has caches");
        let users = llc
            .scope
            .sharers(machine.cores_per_socket)
            .min(cores)
            .max(1);
        let eff = llc.size_bytes as f64 * yasksite_ecm::layer::CAPACITY_SAFETY / users as f64;
        if ws <= eff {
            wavefront_effective = true;
            let w = params.wavefront as f64;
            let nlev = p.t_data.len();
            let t_mem_new = p.t_data[nlev - 1] / w;
            p.t_data[nlev - 1] = t_mem_new;
            let cache_sum: f64 = p.t_data[..nlev - 1].iter().sum();
            p.t_ecm = match p.policy {
                OverlapPolicy::Serial => p.t_ol.max(p.t_nol + cache_sum + t_mem_new),
                OverlapPolicy::MemOverlap => p.t_ol.max(p.t_nol + cache_sum).max(t_mem_new),
            };
            p.mlups_single =
                yasksite_ecm::incore::UPDATES_PER_UNIT / p.t_ecm * machine.freq_ghz * 1e3;
            p.bytes_per_lup_mem /= w;
            p.mlups_sat = machine.mem_bw_gbs * 1e3 / p.bytes_per_lup_mem;
            // The ceiling cannot exceed what the cores can execute.
            let core_bound = machine.cores_per_socket as f64 * p.mlups_single;
            p.mlups_sat = p.mlups_sat.min(core_bound);
            p.sat_cores =
                ((p.mlups_sat / p.mlups_single).ceil() as usize).clamp(1, machine.cores_per_socket);
        }
    }

    // Thread-granularity load balance: with `nb` blocks statically
    // scheduled on `cores` threads, the critical path is
    // `ceil(nb / cores)` block rounds; blocks that do not decompose
    // finely enough waste cores.
    let block = params.clipped_block(domain);
    let nb: usize = (0..3).map(|d| domain[d].div_ceil(block[d])).product();
    let rounds = nb.div_ceil(cores.max(1));
    let efficiency = nb as f64 / (cores as f64 * rounds as f64);

    let mlups = p.mlups(cores) * efficiency.min(1.0);
    let updates = (domain[0] * domain[1] * domain[2]) as f64;
    PredictedPerf {
        mlups,
        seconds_per_sweep: updates / (mlups * 1e6),
        ecm: p,
        wavefront_effective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::heat3d;

    fn clx() -> Machine {
        Machine::cascade_lake()
    }

    #[test]
    fn wavefront_raises_the_ceiling_when_it_fits() {
        let s = heat3d(1);
        let domain = [256, 256, 256]; // plane 0.5 MB; wf=4 ws ~ 6.3 MB < 14 MB
        let base = TuningParams::new([256, 16, 16], Fold::new(8, 1, 1));
        let wf = base.clone().wavefront(4);
        let p0 = predict_params(&s, domain, &clx(), &base, 1);
        let p1 = predict_params(&s, domain, &clx(), &wf, 1);
        assert!(p1.wavefront_effective);
        assert!(p1.ecm.mlups_sat > p0.ecm.mlups_sat * 2.0);
        assert!(p1.mlups >= p0.mlups);
    }

    #[test]
    fn wavefront_ignored_when_working_set_too_big() {
        let s = heat3d(1);
        let domain = [2048, 2048, 64]; // plane 33 MB: can never fit
        let wf = TuningParams::new([2048, 16, 16], Fold::new(8, 1, 1)).wavefront(4);
        let p = predict_params(&s, domain, &clx(), &wf, 1);
        assert!(!p.wavefront_effective);
    }

    #[test]
    fn scaling_stays_sane() {
        // Strict monotonicity in cores is not an invariant (the shared-L3
        // share shrinks and can break a layer condition), but the full
        // socket must comfortably beat one core, and mid-counts must not
        // collapse.
        let s = heat3d(1);
        let domain = [256, 128, 128];
        let params = TuningParams::new([256, 8, 8], Fold::new(8, 1, 1));
        let single = predict_params(&s, domain, &clx(), &params, 1).mlups;
        for cores in [2, 4, 8, 16, 20] {
            let p = predict_params(&s, domain, &clx(), &params, cores);
            assert!(
                p.mlups.is_finite() && p.mlups > 0.9 * single,
                "cores={cores}"
            );
        }
        let full = predict_params(&s, domain, &clx(), &params, 20).mlups;
        assert!(full > 3.0 * single);
    }

    #[test]
    fn generic_tier_configurations_lose_simd_credit() {
        // A fold with an unsupported element count plans onto the generic
        // per-point tier, so the predictor must charge scalar issue; the
        // folded-tier configuration keeps its vectorised in-core model.
        let s = heat3d(1);
        let domain = [128, 64, 64];
        let folded = TuningParams::new([128, 8, 8], Fold::new(8, 1, 1));
        let generic = TuningParams::new([128, 8, 8], Fold::new(3, 2, 1));
        let pf = predict_params(&s, domain, &clx(), &folded, 1);
        let pg = predict_params(&s, domain, &clx(), &generic, 1);
        assert!(!pf.ecm.incore.t_ol.is_nan());
        assert!(pg.ecm.t_ecm > pf.ecm.t_ecm);
        assert!(pg.mlups < pf.mlups);
    }

    #[test]
    fn seconds_scale_with_domain() {
        let s = heat3d(1);
        let params = TuningParams::new([128, 8, 8], Fold::new(8, 1, 1));
        let small = predict_params(&s, [128, 64, 64], &clx(), &params, 1);
        let large = predict_params(&s, [128, 64, 128], &clx(), &params, 1);
        assert!(large.seconds_per_sweep > small.seconds_per_sweep * 1.5);
    }
}
