//! `yasksite report`: renders a recorded JSONL telemetry trace as a
//! human-readable performance report.
//!
//! The report reads the trace the tuner wrote via `--trace-out` (with
//! `--profile` for the profiler sections) and renders five views:
//!
//! 1. **Phase breakdown** — the winner's `profile` events (compile /
//!    sweep / wavefront plus the chunk and plane aggregates); when the
//!    trace carries no profiler events, the span tree's per-name totals
//!    stand in so unprofiled traces still report something useful.
//! 2. **Winner** — the tuner's `winner` event: the chosen parameters and
//!    the execution tier they compile to, with the tier's reason and a
//!    `[degraded]` marker when the kernel fell off the fast path.
//! 3. **Pool utilization** — the `profile_pool` event: worker count,
//!    sweeps, jobs, occupancy and chunk imbalance.
//! 4. **Drift table** — every `drift` event rebuilt into a
//!    [`DriftLedger`] and rendered with per-stencil percentiles and
//!    model-suspect flags.
//! 5. **Calibration** — `calibrate_start` / `probe` events from a
//!    `yasksite calibrate --trace-out` recording: the per-probe evidence
//!    table (value, sample counts, rejected outliers, provenance).
//! 6. **Model corrections** — `model_suspect` events from the online
//!    tuner's drift feedback loop: which keys crossed the SUSPECT
//!    threshold and the correction coefficient fitted for each.
//! 7. **Regressions vs a baseline** — when a second trace is supplied,
//!    phases that got slower, worst first.
//!
//! Pure text-in/text-out (the CLI owns the file I/O), which keeps it
//! testable without touching the filesystem.

use std::fmt::Write as _;

use yasksite_telemetry::json::{self, Json};

use crate::drift::{DriftLedger, DriftRecord};

/// Everything the report extracts from one trace.
#[derive(Debug, Default)]
struct TraceDigest {
    /// `(phase, seconds, count)` from `profile` events, first-seen order.
    phases: Vec<(String, f64, u64)>,
    /// `(workers, sweeps, jobs, occupancy, chunk_imbalance)` from the
    /// last `profile_pool` event.
    pool: Option<(u64, u64, u64, f64, f64)>,
    /// `(params, mlups, tier, tier_reason, degraded)` from the last
    /// `winner` event.
    winner: Option<(String, f64, String, String, bool)>,
    /// Rebuilt drift ledger from `drift` events.
    drift: DriftLedger,
    /// `(name, value)` gauges from the final metrics flush.
    gauges: Vec<(String, f64)>,
    /// `(span name, total seconds, count)` aggregated from `span_close`.
    spans: Vec<(String, f64, u64)>,
    /// `(seed, mode)` from the last `calibrate_start` event.
    calibrate_run: Option<(u64, String)>,
    /// `(name, unit, value, samples, rejected, provenance)` from `probe`
    /// events, in trace order.
    probes: Vec<(String, String, f64, u64, u64, String)>,
    /// `(block_y, block_z, p95, coeff, count)` from `model_suspect`
    /// events, in trace order.
    suspects: Vec<(u64, u64, f64, f64, u64)>,
    /// Lines that were not valid JSON (truncated tail of a crashed run,
    /// torn concurrent write) — skipped rather than failing the report.
    skipped: usize,
}

fn field_f64(j: &Json, key: &str) -> Option<f64> {
    j.get(key).and_then(Json::as_f64)
}

fn field_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key).and_then(Json::as_u64)
}

fn field_str<'a>(j: &'a Json, key: &str) -> Option<&'a str> {
    j.get(key).and_then(Json::as_str)
}

fn digest(trace: &str) -> Result<TraceDigest, String> {
    let mut d = TraceDigest::default();
    for (idx, line) in trace.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        // A crash (or a kill signal mid-write) can leave a truncated
        // final line; a report over the surviving prefix is far more
        // useful than an error, so unparsable lines are skipped and
        // counted. Lines that *do* parse but carry the wrong schema
        // version still fail hard below — that is a real mismatch, not
        // damage.
        let Ok(j) = json::parse(line) else {
            d.skipped += 1;
            continue;
        };
        match j.get("v").and_then(Json::as_u64) {
            Some(1) => {}
            Some(v) => {
                return Err(format!(
                    "trace schema mismatch: line {lineno} has version {v}, expected 1"
                ));
            }
            None => {
                return Err(format!(
                    "trace schema mismatch: line {lineno} missing \"v\""
                ));
            }
        }
        let Some(ev) = j.get("ev").and_then(Json::as_str) else {
            return Err(format!("line {lineno}: missing \"ev\""));
        };
        match ev {
            "profile" => {
                let phase = field_str(&j, "phase").unwrap_or("?").to_string();
                let seconds = field_f64(&j, "seconds").unwrap_or(0.0);
                let count = field_u64(&j, "count").unwrap_or(0);
                match d.phases.iter_mut().find(|(n, _, _)| *n == phase) {
                    Some((_, s, c)) => {
                        *s += seconds;
                        *c += count;
                    }
                    None => d.phases.push((phase, seconds, count)),
                }
            }
            "profile_pool" => {
                d.pool = Some((
                    field_u64(&j, "workers").unwrap_or(0),
                    field_u64(&j, "sweeps").unwrap_or(0),
                    field_u64(&j, "jobs").unwrap_or(0),
                    field_f64(&j, "occupancy").unwrap_or(0.0),
                    field_f64(&j, "chunk_imbalance").unwrap_or(0.0),
                ));
            }
            "winner" => {
                d.winner = Some((
                    field_str(&j, "params").unwrap_or("?").to_string(),
                    field_f64(&j, "best_score_mlups").unwrap_or(0.0),
                    field_str(&j, "tier").unwrap_or("?").to_string(),
                    field_str(&j, "tier_reason").unwrap_or("?").to_string(),
                    matches!(j.get("degraded"), Some(Json::Bool(true))),
                ));
            }
            "drift" => {
                d.drift.push(DriftRecord {
                    stencil: field_str(&j, "stencil").unwrap_or("?").to_string(),
                    params: field_str(&j, "params").unwrap_or("?").to_string(),
                    cores: field_u64(&j, "cores").unwrap_or(0) as usize,
                    // Traces recorded before tier attribution carry no
                    // tier field; "?" keeps their rows renderable.
                    tier: field_str(&j, "tier").unwrap_or("?").to_string(),
                    predicted_mlups: field_f64(&j, "predicted_mlups").unwrap_or(0.0),
                    measured_mlups: field_f64(&j, "measured_mlups").unwrap_or(0.0),
                });
            }
            "calibrate_start" => {
                d.calibrate_run = Some((
                    field_u64(&j, "seed").unwrap_or(0),
                    field_str(&j, "mode").unwrap_or("?").to_string(),
                ));
            }
            "probe" => {
                d.probes.push((
                    field_str(&j, "name").unwrap_or("?").to_string(),
                    field_str(&j, "unit").unwrap_or("?").to_string(),
                    field_f64(&j, "value").unwrap_or(0.0),
                    field_u64(&j, "samples").unwrap_or(0),
                    field_u64(&j, "rejected").unwrap_or(0),
                    field_str(&j, "provenance").unwrap_or("?").to_string(),
                ));
            }
            "model_suspect" => {
                d.suspects.push((
                    field_u64(&j, "block_y").unwrap_or(0),
                    field_u64(&j, "block_z").unwrap_or(0),
                    field_f64(&j, "p95").unwrap_or(0.0),
                    field_f64(&j, "coeff").unwrap_or(0.0),
                    field_u64(&j, "count").unwrap_or(0),
                ));
            }
            "metric" if field_str(&j, "kind") == Some("gauge") => {
                if let (Some(name), Some(value)) = (field_str(&j, "name"), field_f64(&j, "value")) {
                    d.gauges.push((name.to_string(), value));
                }
            }
            "span_close" => {
                let name = field_str(&j, "name").unwrap_or("?").to_string();
                let seconds = field_f64(&j, "dur_us").unwrap_or(0.0) / 1e6;
                match d.spans.iter_mut().find(|(n, _, _)| *n == name) {
                    Some((_, s, c)) => {
                        *s += seconds;
                        *c += 1;
                    }
                    None => d.spans.push((name, seconds, 1)),
                }
            }
            _ => {}
        }
    }
    Ok(d)
}

fn render_phase_table(out: &mut String, rows: &[(String, f64, u64)]) {
    let total: f64 = rows.iter().map(|(_, s, _)| s).sum();
    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>8} {:>7}",
        "phase", "seconds", "count", "share"
    );
    for (name, seconds, count) in rows {
        let share = if total > 0.0 {
            seconds / total * 100.0
        } else {
            0.0
        };
        let _ = writeln!(out, "  {name:<12} {seconds:>12.6} {count:>8} {share:>6.1}%");
    }
}

/// Renders `trace` (a JSONL telemetry trace) as the performance report;
/// with `baseline` (a second trace), appends the top phase regressions.
///
/// Lines that are not valid JSON — the truncated tail a crash or kill
/// signal leaves behind — are skipped and surfaced as a counted warning
/// in the report rather than failing it.
///
/// # Errors
/// Returns a message naming the offending line for a parsable line with
/// an unsupported schema version ("trace schema mismatch: ...").
pub fn render_report(trace: &str, baseline: Option<&str>) -> Result<String, String> {
    let d = digest(trace)?;
    let base = baseline.map(digest).transpose()?;
    let mut out = String::from("yasksite report\n===============\n\n");

    if d.skipped > 0 {
        let _ = writeln!(
            out,
            "warning: skipped {} unparsable line(s) in the trace (truncated by a crash?)\n",
            d.skipped
        );
    }
    if let Some(b) = &base {
        if b.skipped > 0 {
            let _ = writeln!(
                out,
                "warning: skipped {} unparsable line(s) in the baseline trace\n",
                b.skipped
            );
        }
    }

    out.push_str("phase breakdown:\n");
    if d.phases.is_empty() {
        if d.spans.is_empty() {
            out.push_str("  (no profile events and no spans in this trace — run the tune with --profile and --trace-out)\n");
        } else {
            out.push_str("  (no profile events; falling back to span totals)\n");
            render_phase_table(&mut out, &d.spans);
        }
    } else {
        render_phase_table(&mut out, &d.phases);
    }

    if let Some((params, mlups, tier, reason, degraded)) = &d.winner {
        out.push_str("\nwinner:\n");
        let _ = writeln!(out, "  {params}  ({mlups:.0} MLUP/s)");
        let _ = writeln!(
            out,
            "  tier: {tier} — {reason}{}",
            if *degraded { "  [degraded]" } else { "" }
        );
    }

    out.push_str("\npool utilization:\n");
    match d.pool {
        Some((workers, sweeps, jobs, occupancy, imbalance)) => {
            let _ = writeln!(
                out,
                "  {workers} workers, {sweeps} sweeps, {jobs} jobs, occupancy {occupancy:.3}, chunk imbalance {imbalance:.3}"
            );
        }
        None => out.push_str("  (no profile_pool event in this trace)\n"),
    }

    out.push_str("\ndrift:\n");
    for line in d.drift.render_table().lines() {
        let _ = writeln!(out, "  {line}");
    }

    if d.calibrate_run.is_some() || !d.probes.is_empty() {
        out.push_str("\ncalibration:\n");
        if let Some((seed, mode)) = &d.calibrate_run {
            let _ = writeln!(out, "  {mode} run, seed {seed}");
        }
        if d.probes.is_empty() {
            out.push_str("  (no probe events in this trace)\n");
        } else {
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>14} {:>8} {:>9}  provenance",
                "probe", "unit", "value", "samples", "rejected"
            );
            for (name, unit, value, samples, rejected, prov) in &d.probes {
                let _ = writeln!(
                    out,
                    "  {name:<18} {unit:>8} {value:>14.3} {samples:>8} {rejected:>9}  {prov}"
                );
            }
        }
    }

    if !d.suspects.is_empty() {
        out.push_str("\nmodel corrections:\n");
        for (by, bz, p95, coeff, count) in &d.suspects {
            let _ = writeln!(
                out,
                "  block {by}x{bz}: p95 drift {p95:.3} SUSPECT, fitted coeff {coeff:.3} ({count} samples)"
            );
        }
    }

    let wanted = ["profile.mlups", "profile.bytes_per_lup"];
    let shown: Vec<&(String, f64)> = d
        .gauges
        .iter()
        .filter(|(n, _)| wanted.contains(&n.as_str()))
        .collect();
    if !shown.is_empty() {
        out.push_str("\nwinner throughput:\n");
        for (name, value) in shown {
            let _ = writeln!(out, "  {name} = {value:.3}");
        }
    }

    if let Some(b) = base {
        out.push_str("\nregressions vs baseline:\n");
        let base_rows = if b.phases.is_empty() {
            &b.spans
        } else {
            &b.phases
        };
        let cur_rows = if d.phases.is_empty() {
            &d.spans
        } else {
            &d.phases
        };
        let mut regressions: Vec<(String, f64, f64, f64)> = Vec::new();
        for (name, seconds, _) in cur_rows {
            if let Some((_, base_seconds, _)) = base_rows.iter().find(|(n, _, _)| n == name) {
                if *base_seconds > 0.0 && *seconds > *base_seconds {
                    regressions.push((
                        name.clone(),
                        seconds / base_seconds,
                        *base_seconds,
                        *seconds,
                    ));
                }
            }
        }
        regressions.sort_by(|a, b| b.1.total_cmp(&a.1));
        if regressions.is_empty() {
            out.push_str("  none — no phase is slower than the baseline\n");
        } else {
            for (name, ratio, was, now) in regressions.iter().take(10) {
                let _ = writeln!(out, "  {name}: {ratio:.2}x slower ({was:.6}s -> {now:.6}s)");
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(s: &str) -> String {
        format!("{s}\n")
    }

    fn profiled_trace() -> String {
        let mut t = String::new();
        t += &line(r#"{"v":1,"ev":"span_open","t_us":0,"id":1,"parent":0,"name":"tune_session"}"#);
        t += &line(
            r#"{"v":1,"ev":"profile","t_us":10,"span":1,"level":"info","phase":"compile","seconds":0.001,"count":1}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"profile","t_us":11,"span":1,"level":"info","phase":"sweep","seconds":0.009,"count":1}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"profile_pool","t_us":12,"span":1,"level":"info","workers":4,"sweeps":2,"jobs":8,"occupancy":1.0,"chunk_imbalance":0.25}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"drift","t_us":13,"span":1,"level":"info","stencil":"heat-3d","params":"b=8x8x8 t=1","cores":1,"tier":"folded","predicted_mlups":100.0,"measured_mlups":90.0,"drift":-0.1}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"metric","t_us":14,"span":0,"level":"error","kind":"gauge","name":"profile.mlups","value":90.0}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"winner","t_us":15,"span":1,"level":"info","params":"b=8x8x8 t=1","best_score_mlups":90.0,"tier":"folded","tier_reason":"fold matches machine lanes","degraded":false}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"span_close","t_us":20,"id":1,"dur_us":20,"name":"tune_session"}"#,
        );
        t
    }

    #[test]
    fn report_renders_all_sections() {
        let r = render_report(&profiled_trace(), None).unwrap();
        assert!(r.contains("phase breakdown:"), "{r}");
        assert!(r.contains("compile"), "{r}");
        assert!(r.contains("sweep"), "{r}");
        assert!(r.contains("90.0%"), "sweep is 9/10 of phase time: {r}");
        assert!(r.contains("4 workers, 2 sweeps, 8 jobs"), "{r}");
        assert!(r.contains("occupancy 1.000"), "{r}");
        assert!(r.contains("heat-3d"), "{r}");
        assert!(r.contains("profile.mlups = 90.000"), "{r}");
    }

    #[test]
    fn winner_section_names_the_tier() {
        let r = render_report(&profiled_trace(), None).unwrap();
        assert!(r.contains("winner:"), "{r}");
        assert!(r.contains("b=8x8x8 t=1  (90 MLUP/s)"), "{r}");
        assert!(
            r.contains("tier: folded — fold matches machine lanes"),
            "{r}"
        );
        assert!(!r.contains("[degraded]"), "{r}");

        let degraded = profiled_trace()
            .replace(r#""tier":"folded""#, r#""tier":"scalar""#)
            .replace(r#""degraded":false"#, r#""degraded":true"#);
        let r = render_report(&degraded, None).unwrap();
        assert!(r.contains("tier: scalar"), "{r}");
        assert!(r.contains("[degraded]"), "{r}");

        // Traces without a winner event (old recordings) skip the
        // section rather than inventing one.
        let r = render_report(
            r#"{"v":1,"ev":"span_open","t_us":0,"id":1,"parent":0,"name":"s"}"#,
            None,
        )
        .unwrap();
        assert!(!r.contains("winner:"), "{r}");
    }

    #[test]
    fn drift_rows_name_the_executing_tier() {
        let r = render_report(&profiled_trace(), None).unwrap();
        let row = r
            .lines()
            .find(|l| l.contains("heat-3d"))
            .expect("drift row present");
        assert!(row.contains("folded"), "tier column in the drift row: {r}");

        // Traces recorded before tier attribution still render, with the
        // tier column showing "?".
        let legacy = profiled_trace().replace(
            r#""tier":"folded","predicted_mlups""#,
            r#""predicted_mlups""#,
        );
        let r = render_report(&legacy, None).unwrap();
        let row = r
            .lines()
            .find(|l| l.contains("heat-3d"))
            .expect("drift row present");
        assert!(row.contains('?'), "unknown tier renders as ?: {r}");
    }

    #[test]
    fn calibration_section_renders_the_probe_evidence() {
        let mut t = String::new();
        t += &line(r#"{"v":1,"ev":"span_open","t_us":0,"id":1,"parent":0,"name":"calibrate"}"#);
        t += &line(
            r#"{"v":1,"ev":"calibrate_start","t_us":1,"span":1,"level":"info","seed":7,"probes":7,"mode":"synthetic","quick":1}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"probe","t_us":2,"span":2,"level":"info","name":"fma_gflops","unit":"gflops","value":43.2,"samples":5,"rejected":1,"ci_low":42.0,"ci_high":44.0,"provenance":"measured"}"#,
        );
        t += &line(
            r#"{"v":1,"ev":"probe","t_us":3,"span":3,"level":"info","name":"mem_gbs","unit":"gbs","value":20.0,"samples":0,"rejected":0,"ci_low":20.0,"ci_high":20.0,"provenance":"fallback:all samples failed"}"#,
        );
        t += &line(r#"{"v":1,"ev":"span_close","t_us":9,"id":1,"dur_us":9,"name":"calibrate"}"#);
        let r = render_report(&t, None).unwrap();
        assert!(r.contains("calibration:"), "{r}");
        assert!(r.contains("synthetic run, seed 7"), "{r}");
        assert!(r.contains("fma_gflops"), "{r}");
        assert!(r.contains("43.200"), "{r}");
        assert!(r.contains("fallback:all samples failed"), "{r}");

        // A tune trace without calibrate events skips the section.
        let r = render_report(&profiled_trace(), None).unwrap();
        assert!(!r.contains("calibration:"), "{r}");
    }

    #[test]
    fn model_corrections_section_lists_suspect_keys() {
        let mut t = profiled_trace();
        t += &line(
            r#"{"v":1,"ev":"model_suspect","t_us":16,"span":1,"level":"info","block_y":8,"block_z":8,"p95":3.1,"coeff":0.25,"count":5}"#,
        );
        let r = render_report(&t, None).unwrap();
        assert!(r.contains("model corrections:"), "{r}");
        assert!(
            r.contains("block 8x8: p95 drift 3.100 SUSPECT, fitted coeff 0.250 (5 samples)"),
            "{r}"
        );

        // No suspects, no section.
        let r = render_report(&profiled_trace(), None).unwrap();
        assert!(!r.contains("model corrections:"), "{r}");
    }

    #[test]
    fn unprofiled_trace_falls_back_to_spans() {
        let mut t = String::new();
        t += &line(r#"{"v":1,"ev":"span_open","t_us":0,"id":1,"parent":0,"name":"tune_session"}"#);
        t += &line(
            r#"{"v":1,"ev":"span_close","t_us":500,"id":1,"dur_us":500,"name":"tune_session"}"#,
        );
        let r = render_report(&t, None).unwrap();
        assert!(r.contains("falling back to span totals"), "{r}");
        assert!(r.contains("tune_session"), "{r}");
        assert!(r.contains("no profile_pool event"), "{r}");
        assert!(r.contains("no measured trials"), "{r}");
    }

    #[test]
    fn baseline_comparison_lists_regressions_worst_first() {
        let cur = profiled_trace();
        let base = cur
            .replace(
                r#""phase":"sweep","seconds":0.009"#,
                r#""phase":"sweep","seconds":0.003"#,
            )
            .replace(
                r#""phase":"compile","seconds":0.001"#,
                r#""phase":"compile","seconds":0.0005"#,
            );
        let r = render_report(&cur, Some(&base)).unwrap();
        assert!(r.contains("regressions vs baseline:"), "{r}");
        let sweep_pos = r.find("sweep: 3.00x slower").expect(&r);
        let compile_pos = r.find("compile: 2.00x slower").expect(&r);
        assert!(sweep_pos < compile_pos, "worst regression first: {r}");
    }

    #[test]
    fn baseline_with_no_regressions_says_so() {
        let t = profiled_trace();
        let r = render_report(&t, Some(&t)).unwrap();
        assert!(r.contains("none — no phase is slower"), "{r}");
    }

    #[test]
    fn schema_mismatch_is_reported() {
        let bad = r#"{"v":2,"ev":"x","t_us":0}"#;
        let e = render_report(bad, None).unwrap_err();
        assert!(e.contains("trace schema mismatch"), "{e}");
        assert!(e.contains("version 2"), "{e}");
        let missing = r#"{"ev":"x","t_us":0}"#;
        let e = render_report(missing, None).unwrap_err();
        assert!(e.contains("missing \"v\""), "{e}");
    }

    #[test]
    fn truncated_lines_are_skipped_with_a_counted_warning() {
        // A crash mid-write leaves a torn final line; the report covers
        // the surviving prefix and says what it dropped.
        let mut t = profiled_trace();
        t += r#"{"v":1,"ev":"profile","t_us":30,"span":1,"level":"info","phase":"swe"#;
        let r = render_report(&t, None).unwrap();
        assert!(r.contains("skipped 1 unparsable line(s)"), "{r}");
        assert!(r.contains("compile"), "prefix still reported: {r}");
        assert!(r.contains("4 workers"), "{r}");

        // Pure garbage is all skipped, never an error.
        let r = render_report("not json\nalso not json", None).unwrap();
        assert!(r.contains("skipped 2 unparsable line(s)"), "{r}");

        // The baseline trace gets the same tolerance, reported
        // separately.
        let cur = profiled_trace();
        let base = format!("{cur}garbage tail");
        let r = render_report(&cur, Some(&base)).unwrap();
        assert!(
            r.contains("skipped 1 unparsable line(s) in the baseline"),
            "{r}"
        );
    }
}
