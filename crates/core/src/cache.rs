//! Thread-safe memoized ECM prediction cache.
//!
//! Analytic tuning evaluates the same `(stencil, machine, tuning point)`
//! predictions over and over: every `SearchSpace` sweep, every Offsite
//! step-plan composition and every empirical fallback estimate asks the
//! model for points it has already answered. Since
//! [`Solution::predict`] is a pure function of its inputs, those answers
//! can be memoized. This module provides [`PredictionCache`], a sharded,
//! `Mutex`-protected map from a [`PredictKey`] — the stencil/domain/
//! machine *signature* plus the full tuning point — to the
//! [`PredictedPerf`] the model produced for it.
//!
//! Properties:
//!
//! * **Correctness**: a cached prediction is bit-identical to a freshly
//!   computed one (the model is deterministic and the key captures every
//!   input that influences it, including the optional resident-set
//!   override). There is nothing to invalidate — a different stencil,
//!   domain or machine hashes to a different signature and therefore a
//!   different key.
//! * **Thread safety**: lookups from the parallel tuning engine's worker
//!   pool contend only on one of [`SHARDS`] independent shards, selected
//!   by the key's hash.
//! * **Observability**: global hit/miss counters, surfaced per tuning
//!   session through [`crate::TuneCost::cache_hits`] /
//!   [`crate::TuneCost::cache_misses`].
//!
//! Most callers never construct a cache: [`PredictionCache::global`] is
//! the process-wide instance every default [`crate::TuneRequest`] uses,
//! so repeated tuning sessions over the same solution share their work.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use yasksite_engine::TuningParams;

use crate::predict::PredictedPerf;
use crate::solution::Solution;

/// Number of independently locked shards. A small power of two keeps the
/// footprint negligible while making contention from the worker pool
/// (bounded by the machine's core count) unlikely.
const SHARDS: usize = 16;

/// The full identity of one prediction: which solution (stencil × domain
/// × machine, collapsed into a signature hash) was asked about which
/// tuning point at which core count, with which resident-set override.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PredictKey {
    /// [`Solution::signature`] of the solution asked about.
    pub solution: u64,
    /// The tuning point.
    pub params: TuningParams,
    /// Active cores the prediction was scaled to.
    pub cores: usize,
    /// Bit pattern of the explicit resident-set size, if one was given
    /// (`f64::to_bits` keeps the key hashable and exact).
    pub resident_bits: Option<u64>,
}

impl PredictKey {
    /// Builds the key for a plain prediction (kernel-resident working
    /// set).
    #[must_use]
    pub fn new(solution: u64, params: &TuningParams, cores: usize) -> Self {
        PredictKey {
            solution,
            params: params.clone(),
            cores,
            resident_bits: None,
        }
    }

    /// Builds the key for a prediction with an explicit resident-set
    /// size.
    #[must_use]
    pub fn with_resident(solution: u64, params: &TuningParams, cores: usize, bytes: f64) -> Self {
        PredictKey {
            solution,
            params: params.clone(),
            cores,
            resident_bits: Some(bytes.to_bits()),
        }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// A sharded, thread-safe memoization cache for analytic (ECM)
/// predictions. See the module-level documentation for the design.
#[derive(Debug)]
pub struct PredictionCache {
    shards: Vec<Mutex<HashMap<PredictKey, PredictedPerf>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PredictionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PredictionCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        PredictionCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide shared cache used by default by every
    /// [`crate::TuneRequest`]; repeated tuning sessions over the same
    /// solution reuse each other's predictions through it.
    #[must_use]
    pub fn global() -> &'static PredictionCache {
        static GLOBAL: OnceLock<PredictionCache> = OnceLock::new();
        GLOBAL.get_or_init(PredictionCache::new)
    }

    /// The cached prediction for `sol` at `(params, cores)`, computing
    /// and memoizing it on a miss. The second component reports whether
    /// this call was a cache hit.
    #[must_use]
    pub fn predict(
        &self,
        sol: &Solution,
        params: &TuningParams,
        cores: usize,
    ) -> (PredictedPerf, bool) {
        self.predict_keyed(PredictKey::new(sol.signature(), params, cores), || {
            sol.predict(params, cores)
        })
    }

    /// Like [`PredictionCache::predict`] with an explicit steady-state
    /// resident-set size (see [`Solution::predict_with_resident`]).
    #[must_use]
    pub fn predict_resident(
        &self,
        sol: &Solution,
        params: &TuningParams,
        cores: usize,
        resident_bytes: f64,
    ) -> (PredictedPerf, bool) {
        self.predict_keyed(
            PredictKey::with_resident(sol.signature(), params, cores, resident_bytes),
            || sol.predict_with_resident(params, cores, resident_bytes),
        )
    }

    /// Looks up `key`, computing and inserting via `compute` on a miss.
    /// Returns the prediction and whether it was served from the cache.
    ///
    /// The shard lock is *not* held while `compute` runs, so concurrent
    /// misses on the same key may compute twice; both compute the same
    /// pure value, and the first insert wins.
    pub fn predict_keyed(
        &self,
        key: PredictKey,
        compute: impl FnOnce() -> PredictedPerf,
    ) -> (PredictedPerf, bool) {
        let shard = &self.shards[key.shard()];
        if let Some(hit) = shard.lock().expect("cache shard poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        let value = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        shard
            .lock()
            .expect("cache shard poisoned")
            .entry(key)
            .or_insert_with(|| value.clone());
        (value, false)
    }

    /// Lifetime cache hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses (each one computed and stored a prediction).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized predictions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Whether the cache holds no predictions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every memoized entry, shard by shard. Iteration order is
    /// unspecified (it follows the shard hash layout); callers that need
    /// a stable order must sort what they collect. Each shard lock is
    /// held only while that shard is visited, so `f` must not call back
    /// into the cache.
    pub fn for_each(&self, mut f: impl FnMut(&PredictKey, &PredictedPerf)) {
        for s in &self.shards {
            for (key, value) in s.lock().expect("cache shard poisoned").iter() {
                f(key, value);
            }
        }
    }

    /// Drops every memoized prediction and resets the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_arch::Machine;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{heat2d, heat3d};

    fn sol() -> Solution {
        Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake())
    }

    #[test]
    fn hit_returns_identical_prediction() {
        let cache = PredictionCache::new();
        let s = sol();
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let (a, hit_a) = cache.predict(&s, &p, 2);
        let (b, hit_b) = cache.predict(&s, &p, 2);
        assert!(!hit_a && hit_b);
        assert_eq!(a.mlups.to_bits(), b.mlups.to_bits());
        assert_eq!(
            a.seconds_per_sweep.to_bits(),
            s.predict(&p, 2).seconds_per_sweep.to_bits()
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_do_not_collide() {
        let cache = PredictionCache::new();
        let s = sol();
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let (_, h1) = cache.predict(&s, &p, 1);
        let (_, h2) = cache.predict(&s, &p, 2); // different cores
        let (_, h3) = cache.predict(&s, &p.clone().wavefront(2), 1); // different point
        let (_, h4) = cache.predict_resident(&s, &p, 1, 1e6); // resident override
        assert!(!h1 && !h2 && !h3 && !h4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn distinct_solutions_do_not_collide() {
        let cache = PredictionCache::new();
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let a = sol();
        let b = Solution::new(heat3d(1), [64, 32, 32], Machine::rome()); // other machine
        let c = Solution::new(heat2d(1), [64, 32, 1], Machine::cascade_lake()); // other stencil
        let d = Solution::new(heat3d(1), [128, 32, 32], Machine::cascade_lake()); // other domain
        for s in [&a, &b, &c, &d] {
            let (_, hit) = cache.predict(s, &p, 1);
            assert!(!hit);
        }
        assert_eq!(cache.len(), 4);
        // Same identity, fresh object: still a hit.
        let a2 = Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake());
        let (_, hit) = cache.predict(&a2, &p, 1);
        assert!(hit);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = PredictionCache::new();
        let s = sol();
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let _ = cache.predict(&s, &p, 1);
        let _ = cache.predict(&s, &p, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let cache = PredictionCache::new();
        let s = sol();
        let baseline = s
            .predict(&TuningParams::new([64, 4, 4], Fold::new(8, 1, 1)), 1)
            .mlups
            .to_bits();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        let p = TuningParams::new([64, 4, 4], Fold::new(8, 1, 1));
                        let (pred, _) = cache.predict(&s, &p, 1);
                        assert_eq!(pred.mlups.to_bits(), baseline);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 32);
    }
}
