//! Tuning strategies: analytic (ECM-ranked), empirical (run everything),
//! and the hybrid the paper advocates — executed by a deterministic
//! parallel engine with a memoized prediction cache.
//!
//! The analytic ranking phase (every candidate of a [`SearchSpace`]
//! scored by the ECM model) is embarrassingly parallel and by far the
//! most-executed path in the repo, so the engine chunks it across a
//! scoped worker pool ([`TuneRequest::jobs`]) and serves repeated
//! predictions from a [`PredictionCache`]. Parallelism is *strictly
//! deterministic*: candidates are split into contiguous chunks, each
//! worker returns its chunk's scores in enumeration order, chunks are
//! concatenated back in order, and the final ranking uses a stable sort —
//! so `jobs = N` is bitwise-identical to `jobs = 1` for every strategy.
//! Empirical measurements always run serially on the single backend,
//! which keeps fault-injection streams and budget accounting identical
//! regardless of the job count.
//!
//! All empirical measurement goes through the robust trial layer
//! ([`crate::trial`]): failed or noisy runs are retried and
//! outlier-filtered, and when a candidate cannot be measured at all (or
//! the session budget runs out) its analytic ECM prediction is used
//! instead, flagged by [`Provenance::PredictedFallback`] in
//! [`TuneResult::provenances`]. A tuning session therefore always
//! terminates with a valid configuration — never a panic, and an error
//! only for genuinely unusable input (an empty search space).

use std::time::Instant;

use yasksite_engine::{tier_reason_degraded, ProfileReport, Tier, TuningParams};
use yasksite_telemetry::{Level, SpanGuard, Telemetry};

use crate::cache::PredictionCache;
use crate::cost::TuneCost;
use crate::drift::{DriftLedger, DriftRecord};
use crate::request::TuneRequest;
use crate::solution::{Solution, ToolError};
use crate::space::SearchSpace;
use crate::trial::{
    run_trial_observed, FaultyBackend, MeasureBackend, Provenance, SolutionBackend, TrialBudget,
    TrialConfig, TrialSummary,
};

/// How to pick the best point in the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneStrategy {
    /// Rank every candidate with the ECM model; run nothing. This is the
    /// paper's headline mode: "identifying optimal performance parameters
    /// analytically without the need to run the code".
    Analytic,
    /// Measure every candidate (the expensive baseline an exhaustive
    /// autotuner would use).
    Empirical,
    /// Rank analytically, then measure only the `shortlist` best
    /// candidates to break model ties.
    Hybrid {
        /// Number of model-ranked candidates to verify empirically.
        shortlist: usize,
    },
}

impl TuneStrategy {
    /// Short machine-readable tag used in telemetry events.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TuneStrategy::Analytic => "analytic",
            TuneStrategy::Empirical => "empirical",
            TuneStrategy::Hybrid { .. } => "hybrid",
        }
    }
}

/// Outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The selected parameters.
    pub best: TuningParams,
    /// The selected candidate's score (MLUP/s; predicted for analytic,
    /// measured otherwise).
    pub best_score: f64,
    /// Where the winner's score came from (`None` for purely analytic
    /// sessions, which run nothing).
    pub best_provenance: Option<Provenance>,
    /// All scored candidates, best first.
    pub ranked: Vec<(TuningParams, f64)>,
    /// Provenance per ranked candidate, parallel to `ranked` (empty for
    /// analytic sessions).
    pub provenances: Vec<Provenance>,
    /// Aggregate trial statistics of the session.
    pub trials: TrialSummary,
    /// What the session cost.
    pub cost: TuneCost,
    /// Final state of the session budget (what request-based sessions
    /// return instead of mutating a caller-owned budget).
    pub budget: TrialBudget,
    /// Predicted-vs-measured residual of every genuinely measured trial
    /// (empty for analytic sessions and total-fallback sessions) — the
    /// audit trail behind the model-suspect flag in [`TuneCost`].
    pub drift: DriftLedger,
    /// The winner's profiler report when the request asked for one
    /// ([`TuneRequest::profile`]) and the native profiling run succeeded;
    /// `None` otherwise. Purely observational — carries no weight in the
    /// ranking.
    pub profile: Option<ProfileReport>,
    /// Execution tier the planner selects for the winner under the live
    /// [`yasksite_engine::TierPolicy`] (shared-geometry grids, which is
    /// what the tuner allocates — so this matches what a native run of
    /// the winner executes).
    pub tier: Tier,
    /// The planner's one-line justification for [`TuneResult::tier`];
    /// [`yasksite_engine::tier_reason_degraded`] classifies it.
    pub tier_reason: &'static str,
}

impl TuneResult {
    /// How many ranked candidates rest on an analytic fallback instead of
    /// a measurement.
    #[must_use]
    pub fn fallback_count(&self) -> usize {
        self.provenances.iter().filter(|p| p.is_fallback()).count()
    }

    /// Whether the winner runs on a degraded tier (the planner could not
    /// use the kernel the fold/layout asked for and fell back).
    #[must_use]
    pub fn tier_degraded(&self) -> bool {
        tier_reason_degraded(self.tier_reason)
    }
}

/// Scores every candidate analytically through `cache`, in enumeration
/// order, fanning the work out over `jobs` scoped workers. Returns the
/// scored list plus the session's cache hit/miss counts.
///
/// Determinism: candidates are split into contiguous chunks; worker `i`
/// scores chunk `i` and chunks are re-concatenated in index order, so the
/// output is independent of `jobs` and of thread scheduling (predictions
/// are pure, and cache hits return bit-identical values by construction).
/// One ranking chunk's output: `(params, predicted MLUP/s, cache hit)`
/// per candidate, plus the chunk's wall time for the imbalance gauge.
type RankChunk = (Vec<(TuningParams, f64, bool)>, f64);

fn rank_analytic(
    sol: &Solution,
    candidates: &[TuningParams],
    cores: usize,
    jobs: usize,
    cache: &PredictionCache,
    tel: &Telemetry,
    session: &SpanGuard,
) -> (Vec<(TuningParams, f64)>, usize, usize) {
    let jobs = jobs.max(1).min(candidates.len().max(1));
    // Each chunk runs under its own `rank` span (a child of the session
    // span, so worker-thread spans still hang off the right parent) and
    // reports its wall time for the imbalance metric.
    let score_chunk = |chunk: &[TuningParams]| -> RankChunk {
        let _span = session.child("rank");
        let start = Instant::now();
        let scored = chunk
            .iter()
            .map(|p| {
                let (pred, hit) = cache.predict(sol, p, cores);
                (p.clone(), pred.mlups, hit)
            })
            .collect();
        let chunk_seconds = start.elapsed().as_secs_f64();
        tel.inc("rank.chunks");
        tel.add("rank.candidates", chunk.len() as u64);
        tel.observe("rank.chunk_seconds", chunk_seconds);
        (scored, chunk_seconds)
    };
    let chunks: Vec<RankChunk> = if jobs <= 1 {
        vec![score_chunk(candidates)]
    } else {
        let chunk_len = candidates.len().div_ceil(jobs);
        std::thread::scope(|s| {
            let handles: Vec<_> = candidates
                .chunks(chunk_len)
                .map(|chunk| s.spawn(move || score_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        })
    };
    if chunks.len() > 1 {
        let max = chunks.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
        let min = chunks.iter().map(|(_, d)| *d).fold(f64::INFINITY, f64::min);
        if max > 0.0 {
            tel.gauge("rank.chunk_imbalance", (max - min) / max);
        }
    }
    let mut hits = 0usize;
    let mut misses = 0usize;
    let scored = chunks
        .into_iter()
        .flat_map(|(chunk, _)| chunk)
        .map(|(p, mlups, hit)| {
            if hit {
                hits += 1;
            } else {
                misses += 1;
            }
            (p, mlups)
        })
        .collect();
    (scored, hits, misses)
}

impl Solution {
    /// Tunes over the standard search space at `cores` active cores.
    ///
    /// Compatibility wrapper kept for existing callers; it is equivalent
    /// to `tune_with(&TuneRequest::new(strategy).cores(cores)
    /// .trial(TrialConfig::single_shot()))`. New code should prefer
    /// [`Solution::tune_with`], which exposes the full knob set (jobs,
    /// trial protocol, budget, fault injection, cache choice); this
    /// wrapper may be removed in a future major revision.
    ///
    /// # Errors
    /// Fails only on an empty search space; measurement failures degrade
    /// to analytic predictions (see [`TuneResult::provenances`]).
    pub fn tune(&self, strategy: TuneStrategy, cores: usize) -> Result<TuneResult, ToolError> {
        let space = SearchSpace::standard(self.stencil(), self.domain(), self.machine());
        self.tune_space(&space, strategy, cores)
    }

    /// Tunes over the standard search space as configured by `req` — the
    /// canonical entry point.
    ///
    /// # Errors
    /// Fails only on an empty search space.
    pub fn tune_with(&self, req: &TuneRequest) -> Result<TuneResult, ToolError> {
        let space = SearchSpace::standard(self.stencil(), self.domain(), self.machine());
        self.tune_space_with(&space, req)
    }

    /// Tunes over an explicit search space as configured by `req`.
    ///
    /// Determinism guarantee: for a fixed request (modulo `jobs`) and
    /// space, the returned winner, scores, ranking, provenances and
    /// [`TuneCost`] — except its cache hit/miss counters, which depend on
    /// cache warmth — are bitwise-identical for every `jobs` value.
    ///
    /// The request's budget is copied in; the final state comes back in
    /// [`TuneResult::budget`].
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space_with(
        &self,
        space: &SearchSpace,
        req: &TuneRequest,
    ) -> Result<TuneResult, ToolError> {
        let mut budget = req.budget;
        match req.faults {
            Some(plan) => {
                let mut backend = FaultyBackend::new(SolutionBackend::new(self), plan);
                self.tune_engine(&mut backend, space, req, &mut budget)
            }
            None => {
                let mut backend = SolutionBackend::new(self);
                self.tune_engine(&mut backend, space, req, &mut budget)
            }
        }
    }

    /// [`Solution::tune_space_with`] against an arbitrary measurement
    /// backend (the seam the fault-injection harness plugs into). The
    /// request's own `faults` field is ignored here — wrap `backend`
    /// yourself if you want both.
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space_with_backend_req(
        &self,
        backend: &mut dyn MeasureBackend,
        space: &SearchSpace,
        req: &TuneRequest,
    ) -> Result<TuneResult, ToolError> {
        let mut budget = req.budget;
        self.tune_engine(backend, space, req, &mut budget)
    }

    /// Tunes over an explicit search space with the legacy single-shot
    /// protocol (one run per measured candidate, no retries, no budget).
    /// Compatibility wrapper over [`Solution::tune_space_with`].
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space(
        &self,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
    ) -> Result<TuneResult, ToolError> {
        self.tune_space_trials(
            space,
            strategy,
            cores,
            &TrialConfig::single_shot(),
            &mut TrialBudget::unlimited(),
        )
    }

    /// Tunes over an explicit search space under the robust trial
    /// protocol `cfg`, drawing on `budget`. Compatibility wrapper; new
    /// code should carry the protocol in a [`TuneRequest`].
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space_trials(
        &self,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> Result<TuneResult, ToolError> {
        let mut backend = SolutionBackend::new(self);
        self.tune_space_with_backend(&mut backend, space, strategy, cores, cfg, budget)
    }

    /// [`Solution::tune_space_trials`] against an arbitrary measurement
    /// backend. Compatibility wrapper that mutates the caller's `budget`
    /// in place.
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space_with_backend(
        &self,
        backend: &mut dyn MeasureBackend,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> Result<TuneResult, ToolError> {
        let req = TuneRequest::new(strategy).cores(cores).trial(*cfg);
        let r = self.tune_engine(backend, space, &req, budget)?;
        Ok(r)
    }

    /// The tuning engine every entry point funnels into. `budget` is
    /// mutated in place (legacy callers hand in their own; request-based
    /// callers hand in a copy and read [`TuneResult::budget`]).
    fn tune_engine(
        &self,
        backend: &mut dyn MeasureBackend,
        space: &SearchSpace,
        req: &TuneRequest,
        budget: &mut TrialBudget,
    ) -> Result<TuneResult, ToolError> {
        let start = Instant::now();
        let cores = req.cores;
        let cfg = &req.trial;
        let cache = req.cache_ref();
        let jobs = req.effective_jobs();
        let tel = &req.telemetry;
        let session = tel.span("tune_session");
        let candidates = space.candidates(cores);
        if candidates.is_empty() {
            tel.error("empty search space");
            return Err(ToolError::InvalidInput("empty search space".into()));
        }
        tel.event(
            Level::Info,
            "session_start",
            session.id(),
            &[
                ("strategy", req.strategy.label().into()),
                ("cores", cores.into()),
                ("jobs", jobs.into()),
                ("candidates", candidates.len().into()),
            ],
        );
        let mut cost = TuneCost::default();
        let mut trials = TrialSummary::default();
        let mut ledger = match req.drift_cap {
            Some(cap) => DriftLedger::bounded(cap),
            None => DriftLedger::new(),
        };
        // (params, score MLUP/s, provenance): provenance is None for
        // analytic scores that ran nothing.
        let mut entries: Vec<(TuningParams, f64, Option<Provenance>)> =
            Vec::with_capacity(candidates.len());
        // Measurements stay serial on the one backend: fault streams and
        // budget draws happen in enumeration order for every job count.
        // The registry counters below are bumped at the exact same sites
        // as their TuneCost twins, so a fresh telemetry session always
        // reconciles with the returned cost, field for field.
        let mut measure = |p: TuningParams,
                           cost: &mut TuneCost,
                           trials: &mut TrialSummary,
                           ledger: &mut DriftLedger,
                           budget: &mut TrialBudget|
         -> (TuningParams, f64, Option<Provenance>) {
            let trial_span = session.child("trial");
            let (pred, hit) = {
                let _predict_span = trial_span.child("predict");
                cache.predict(self, &p, cores)
            };
            if hit {
                cost.cache_hits += 1;
                tel.inc("tune.cache_hits");
            } else {
                cost.cache_misses += 1;
                tel.inc("tune.cache_misses");
            }
            let fallback = pred.seconds_per_sweep;
            let r = run_trial_observed(backend, &p, fallback, cfg, budget, tel, Some(&trial_span));
            cost.engine_runs += r.attempts;
            tel.add("tune.engine_runs", r.attempts as u64);
            if r.provenance.is_fallback() {
                // A fallback executed nothing on the target machine, so
                // it must not charge estimated target time (it used to,
                // silently inflating the empirical-cost ledger).
                cost.fallbacks += 1;
                tel.inc("tune.fallbacks");
            } else {
                cost.target_seconds += 2.0 * r.seconds_per_sweep * p.wavefront as f64;
            }
            trials.absorb(&r);
            let mlups = self.updates_per_sweep() as f64 / r.seconds_per_sweep.max(1e-12) / 1e6;
            if !r.provenance.is_fallback() {
                // Tier mix of trials that really executed. The planner
                // query is pure and policy-aware, and the tuner always
                // allocates shared-geometry grids, so it names the tier
                // the engine ran (or, for simulated backends, would run).
                let (tier, tier_reason) = self.plan_tier(&p);
                tel.inc(&format!("tier.ran.{tier}"));
                if tier_reason_degraded(tier_reason) {
                    tel.inc("tier.degraded");
                }
                tel.event(
                    Level::Debug,
                    "tier",
                    trial_span.id(),
                    &[
                        ("tier", tier.to_string().into()),
                        ("tier_reason", tier_reason.into()),
                        ("degraded", tier_reason_degraded(tier_reason).into()),
                    ],
                );
                // Per-sweep throughput of trials that really executed —
                // the MLUP/s trajectory of the execution layer.
                tel.observe("exec.sweep_mlups", mlups);
                // Measured trials feed the model-drift ledger: how far
                // the ECM prediction sat from what the trial saw. A
                // fallback's "measurement" IS the prediction, so it
                // carries no drift information and is excluded.
                ledger.push(DriftRecord {
                    stencil: self.stencil().name().to_string(),
                    params: p.to_string(),
                    cores,
                    tier: tier.to_string(),
                    predicted_mlups: pred.mlups,
                    measured_mlups: mlups,
                });
            }
            (p, mlups, Some(r.provenance))
        };
        match req.strategy {
            TuneStrategy::Analytic => {
                let (scored, hits, misses) =
                    rank_analytic(self, &candidates, cores, jobs, cache, tel, &session);
                cost.model_evals += scored.len();
                cost.cache_hits += hits;
                cost.cache_misses += misses;
                tel.add("tune.model_evals", scored.len() as u64);
                tel.add("tune.cache_hits", hits as u64);
                tel.add("tune.cache_misses", misses as u64);
                entries.extend(scored.into_iter().map(|(p, mlups)| (p, mlups, None)));
            }
            TuneStrategy::Empirical => {
                for p in candidates {
                    entries.push(measure(p, &mut cost, &mut trials, &mut ledger, budget));
                }
            }
            TuneStrategy::Hybrid { shortlist } => {
                let (mut pre, hits, misses) =
                    rank_analytic(self, &candidates, cores, jobs, cache, tel, &session);
                cost.model_evals += pre.len();
                cost.cache_hits += hits;
                cost.cache_misses += misses;
                tel.add("tune.model_evals", pre.len() as u64);
                tel.add("tune.cache_hits", hits as u64);
                tel.add("tune.cache_misses", misses as u64);
                pre.sort_by(|a, b| b.1.total_cmp(&a.1));
                let k = shortlist.max(1).min(pre.len());
                for (p, _) in pre.drain(..k) {
                    entries.push(measure(p, &mut cost, &mut trials, &mut ledger, budget));
                }
            }
        }
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        let (best, best_score, best_provenance) = entries[0].clone();
        // The winner's execution tier, resolved once through the planner
        // under the live tier policy: surfaced in the result, the trace
        // (a dedicated `winner` event `yasksite report` can digest), and
        // the counter registry.
        let (winner_tier, winner_tier_reason) = self.plan_tier(&best);
        tel.inc(&format!("tier.winner.{winner_tier}"));
        tel.event(
            Level::Info,
            "winner",
            session.id(),
            &[
                ("params", best.to_string().into()),
                ("best_score_mlups", best_score.into()),
                ("tier", winner_tier.to_string().into()),
                ("tier_reason", winner_tier_reason.into()),
                ("degraded", tier_reason_degraded(winner_tier_reason).into()),
            ],
        );
        // Drift bookkeeping: every record and every per-stencil summary
        // goes to the trace, the counts to the cost ledger, so analytic
        // -fallback decisions are auditable after the fact.
        cost.drift_records = ledger.len();
        cost.drift_suspects = ledger.suspect_count();
        cost.drift_evictions = ledger.evictions();
        tel.add("tune.drift_records", cost.drift_records as u64);
        tel.add("tune.drift_suspects", cost.drift_suspects as u64);
        tel.add("tune.drift_evictions", cost.drift_evictions as u64);
        for r in ledger.records() {
            tel.event(
                Level::Info,
                "drift",
                session.id(),
                &[
                    ("stencil", r.stencil.clone().into()),
                    ("params", r.params.clone().into()),
                    ("cores", r.cores.into()),
                    ("tier", r.tier.clone().into()),
                    ("predicted_mlups", r.predicted_mlups.into()),
                    ("measured_mlups", r.measured_mlups.into()),
                    ("drift", r.drift().into()),
                ],
            );
        }
        for (name, s) in ledger.per_stencil() {
            tel.event(
                Level::Info,
                "drift_summary",
                session.id(),
                &[
                    ("stencil", name.into()),
                    ("count", s.count.into()),
                    ("p50", s.p50.into()),
                    ("p95", s.p95.into()),
                    ("p99", s.p99.into()),
                    ("max_abs", s.max_abs.into()),
                    ("suspect", s.suspect.into()),
                ],
            );
        }
        // Generate the winner's kernel source once, under its own span,
        // so the cost ledger's codegen_seconds reflects reality instead
        // of staying at zero.
        {
            let codegen_span = session.child("codegen");
            let generated = self.codegen(&best);
            cost.codegen_seconds = generated.gen_seconds;
            tel.event(
                Level::Info,
                "codegen",
                codegen_span.id(),
                &[
                    ("lines", generated.lines.into()),
                    ("gen_seconds", generated.gen_seconds.into()),
                ],
            );
        }
        let mut profile_report = None;
        if req.profile {
            // Winner profiling always executes natively on this host —
            // the point is to time the real kernel, even when tuning
            // targeted a simulated machine model.
            let profile_span = session.child("profile");
            match self.profile_native(&best) {
                Ok((perf, report)) => {
                    for ph in &report.phases {
                        tel.event(
                            Level::Info,
                            "profile",
                            profile_span.id(),
                            &[
                                ("phase", ph.name.into()),
                                ("seconds", ph.seconds.into()),
                                ("count", ph.count.into()),
                            ],
                        );
                    }
                    for (label, stats) in [("chunks", &report.chunks), ("planes", &report.planes)] {
                        if let Some(c) = stats {
                            tel.event(
                                Level::Info,
                                "profile",
                                profile_span.id(),
                                &[
                                    ("phase", label.into()),
                                    ("seconds", c.total_seconds.into()),
                                    ("count", c.count.into()),
                                    ("min_seconds", c.min_seconds.into()),
                                    ("max_seconds", c.max_seconds.into()),
                                    ("imbalance", c.imbalance.into()),
                                ],
                            );
                        }
                    }
                    if let Some(w) = &report.pool {
                        let imb = report.chunks.map_or(0.0, |c| c.imbalance);
                        tel.event(
                            Level::Info,
                            "profile_pool",
                            profile_span.id(),
                            &[
                                ("workers", w.workers.into()),
                                ("sweeps", w.sweeps.into()),
                                ("jobs", w.jobs.into()),
                                ("occupancy", w.occupancy.into()),
                                ("chunk_imbalance", imb.into()),
                            ],
                        );
                    }
                    // Effective throughput and the model's memory
                    // traffic per update: together they say whether the
                    // winner is doing the bytes-per-LUP the ECM model
                    // thinks it is. `predict` is pure — no cache state
                    // is touched, so profiling stays observational.
                    let bytes_per_lup = self.predict(&best, cores).ecm.bytes_per_lup_mem;
                    tel.gauge("profile.mlups", perf.mlups);
                    tel.gauge("profile.bytes_per_lup", bytes_per_lup);
                    tel.observe("profile.sweep_seconds", perf.seconds_per_sweep);
                    profile_report = Some(report);
                }
                Err(e) => tel.error(&format!("winner profiling failed: {e}")),
            }
        }
        cost.wall_seconds = start.elapsed().as_secs_f64();
        // Pool-utilisation gauges: cumulative process-wide counters of
        // the shared execution pool (zero when every trial was simulated
        // or fell back). Gauges are observability-only and never enter
        // the cost ledger reconciliation.
        let pool = yasksite_engine::ExecPool::global().stats();
        tel.gauge("exec.pool.workers", pool.workers as f64);
        tel.gauge("exec.pool.sweeps", pool.sweeps as f64);
        tel.gauge("exec.pool.jobs", pool.jobs as f64);
        tel.event(
            Level::Info,
            "session_end",
            session.id(),
            &[
                ("best_score_mlups", best_score.into()),
                ("ranked", entries.len().into()),
                ("model_evals", cost.model_evals.into()),
                ("engine_runs", cost.engine_runs.into()),
                ("cache_hits", cost.cache_hits.into()),
                ("cache_misses", cost.cache_misses.into()),
                ("fallbacks", cost.fallbacks.into()),
            ],
        );
        let provenances: Vec<Provenance> = entries.iter().filter_map(|e| e.2).collect();
        let ranked: Vec<(TuningParams, f64)> =
            entries.into_iter().map(|(p, s, _)| (p, s)).collect();
        Ok(TuneResult {
            best,
            best_score,
            best_provenance,
            ranked,
            provenances,
            trials,
            cost,
            budget: *budget,
            drift: ledger,
            profile: profile_report,
            tier: winner_tier,
            tier_reason: winner_tier_reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::{FaultPlan, FaultyBackend};
    use std::sync::Arc;
    use yasksite_arch::Machine;
    use yasksite_stencil::builders::heat3d;

    fn solution() -> Solution {
        Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake())
    }

    #[test]
    fn analytic_runs_nothing() {
        let r = solution().tune(TuneStrategy::Analytic, 2).unwrap();
        assert_eq!(r.cost.engine_runs, 0);
        assert!(r.cost.model_evals > 10);
        assert!(r.best_score > 0.0);
        assert!(r.best_provenance.is_none());
        assert!(r.provenances.is_empty());
        // Ranked is sorted descending.
        for w in r.ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn winner_carries_its_tier() {
        let r = solution().tune(TuneStrategy::Analytic, 2).unwrap();
        assert!(!r.tier_reason.is_empty());
        // The reason string and the degraded classifier must agree with
        // a direct planner query for the same winner.
        let sol = solution();
        let (tier, reason) = sol.plan_tier(&r.best);
        assert_eq!(r.tier, tier);
        assert_eq!(r.tier_reason, reason);
        assert_eq!(r.tier_degraded(), tier_reason_degraded(reason));
    }

    #[test]
    fn empirical_runs_everything() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        assert_eq!(r.cost.engine_runs, space.len());
        assert_eq!(r.cost.model_evals, 0);
        assert!(r.cost.target_seconds > 0.0);
        assert_eq!(r.provenances.len(), space.len());
        assert_eq!(r.fallback_count(), 0);
        assert_eq!(r.best_provenance, Some(Provenance::Measured));
    }

    #[test]
    fn hybrid_measures_only_the_shortlist() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol
            .tune_space(&space, TuneStrategy::Hybrid { shortlist: 3 }, 1)
            .unwrap();
        assert_eq!(r.cost.engine_runs, 3);
        assert_eq!(r.cost.model_evals, space.len());
        assert_eq!(r.ranked.len(), 3);
    }

    #[test]
    fn analytic_choice_is_near_empirical_optimum() {
        // The paper's key claim in miniature: the model-selected block is
        // close to the empirically best one.
        let sol = Solution::new(heat3d(1), [64, 64, 64], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let analytic = sol.tune_space(&space, TuneStrategy::Analytic, 1).unwrap();
        let empirical = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        let chosen_measured = sol.measure(&analytic.best).unwrap().mlups;
        assert!(
            chosen_measured >= 0.7 * empirical.best_score,
            "analytic pick achieves {:.0} of empirical best {:.0}",
            chosen_measured,
            empirical.best_score
        );
    }

    #[test]
    fn total_measurement_failure_degrades_to_analytic_ranking() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let mut backend =
            FaultyBackend::new(SolutionBackend::new(&sol), FaultPlan::always_fail(11));
        let r = sol
            .tune_space_with_backend(
                &mut backend,
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::default(),
                &mut TrialBudget::unlimited(),
            )
            .unwrap();
        // Every candidate fell back to its prediction, the ranking equals
        // the analytic one, and the result says so.
        assert_eq!(r.fallback_count(), space.len());
        assert!(r.best_provenance.unwrap().is_fallback());
        assert_eq!(r.trials.fallbacks, space.len());
        let analytic = sol.tune_space(&space, TuneStrategy::Analytic, 1).unwrap();
        assert_eq!(r.best.block, analytic.best.block);
        assert!(r.best_score > 0.0 && r.best_score.is_finite());
    }

    #[test]
    fn budget_exhaustion_mid_session_still_ranks_everything() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        // Enough budget for roughly half the candidates.
        let mut budget = TrialBudget::runs(space.len() / 2);
        let r = sol
            .tune_space_trials(
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::single_shot(),
                &mut budget,
            )
            .unwrap();
        assert_eq!(r.ranked.len(), space.len(), "every candidate is ranked");
        assert!(
            r.fallback_count() >= space.len() / 2,
            "candidates past the budget must fall back"
        );
        assert!(budget.exhausted());
        assert!(r.budget.exhausted(), "result carries the final budget");
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn noisy_backend_still_finds_a_finite_winner() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let mut backend = FaultyBackend::new(SolutionBackend::new(&sol), FaultPlan::noisy(5));
        let r = sol
            .tune_space_with_backend(
                &mut backend,
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::default(),
                &mut TrialBudget::unlimited(),
            )
            .unwrap();
        assert!(r.best_score.is_finite() && r.best_score > 0.0);
        assert_eq!(r.provenances.len(), space.len());
        assert!(r.trials.samples > 0);
    }

    #[test]
    fn empirical_sessions_populate_the_drift_ledger() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        assert_eq!(r.drift.len(), space.len(), "one record per measured trial");
        assert_eq!(r.cost.drift_records, space.len());
        let per = r.drift.per_stencil();
        assert_eq!(per.len(), 1);
        assert_eq!(per[0].0, sol.stencil().name());
        assert_eq!(
            r.cost.drift_suspects,
            r.drift.suspect_count(),
            "cost mirrors the ledger"
        );
        for rec in r.drift.records() {
            assert!(rec.predicted_mlups > 0.0 && rec.measured_mlups > 0.0);
            assert!(rec.drift().is_finite());
        }
    }

    #[test]
    fn analytic_sessions_have_an_empty_drift_ledger() {
        let r = solution().tune(TuneStrategy::Analytic, 2).unwrap();
        assert!(r.drift.is_empty());
        assert_eq!(r.cost.drift_records, 0);
        assert_eq!(r.cost.drift_suspects, 0);
    }

    #[test]
    fn fallbacks_carry_no_drift_records() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let req = TuneRequest::new(TuneStrategy::Empirical)
            .cores(1)
            .faults(FaultPlan::always_fail(11))
            .cache(Arc::new(PredictionCache::new()));
        let r = sol.tune_space_with(&space, &req).unwrap();
        assert_eq!(r.fallback_count(), space.len());
        assert!(r.drift.is_empty(), "a fallback measured nothing");
        assert_eq!(r.cost.drift_records, 0);
    }

    #[test]
    fn profile_request_does_not_change_the_outcome() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let base = TuneRequest::new(TuneStrategy::Hybrid { shortlist: 2 }).cores(1);
        let plain = sol
            .tune_space_with(
                &space,
                &base.clone().cache(Arc::new(PredictionCache::new())),
            )
            .unwrap();
        let profiled = sol
            .tune_space_with(
                &space,
                &base
                    .clone()
                    .profile()
                    .cache(Arc::new(PredictionCache::new())),
            )
            .unwrap();
        assert_eq!(plain.best, profiled.best);
        assert_eq!(plain.best_score.to_bits(), profiled.best_score.to_bits());
        assert_eq!(
            plain.cost.without_cache_counters().without_wall_clock(),
            profiled.cost.without_cache_counters().without_wall_clock()
        );
    }

    #[test]
    fn parallel_jobs_bitwise_identical_to_serial() {
        let sol = solution();
        let space = SearchSpace::standard(sol.stencil(), sol.domain(), sol.machine());
        let base = TuneRequest::new(TuneStrategy::Analytic).cores(2);
        let serial = sol
            .tune_space_with(
                &space,
                &base.clone().jobs(1).cache(Arc::new(PredictionCache::new())),
            )
            .unwrap();
        for jobs in [2, 4, 7] {
            let par = sol
                .tune_space_with(
                    &space,
                    &base
                        .clone()
                        .jobs(jobs)
                        .cache(Arc::new(PredictionCache::new())),
                )
                .unwrap();
            assert_eq!(par.best, serial.best);
            assert_eq!(par.best_score.to_bits(), serial.best_score.to_bits());
            assert_eq!(par.ranked.len(), serial.ranked.len());
            for (a, b) in par.ranked.iter().zip(serial.ranked.iter()) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            assert_eq!(
                par.cost.without_cache_counters().without_wall_clock(),
                serial.cost.without_cache_counters().without_wall_clock()
            );
        }
    }

    #[test]
    fn repeated_tune_hits_the_cache() {
        let sol = solution();
        let cache = Arc::new(PredictionCache::new());
        let req = TuneRequest::new(TuneStrategy::Analytic)
            .cores(2)
            .jobs(2)
            .cache(cache.clone());
        let cold = sol.tune_with(&req).unwrap();
        assert_eq!(cold.cost.cache_hits, 0, "fresh cache has nothing to hit");
        assert_eq!(cold.cost.cache_misses, cold.cost.model_evals);
        let warm = sol.tune_with(&req).unwrap();
        assert_eq!(warm.cost.cache_hits, warm.cost.model_evals);
        assert_eq!(warm.cost.cache_misses, 0);
        assert_eq!(warm.best, cold.best);
        assert_eq!(warm.best_score.to_bits(), cold.best_score.to_bits());
    }

    #[test]
    fn request_faults_are_injected() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let req = TuneRequest::new(TuneStrategy::Empirical)
            .cores(1)
            .faults(FaultPlan::always_fail(11))
            .cache(Arc::new(PredictionCache::new()));
        let r = sol.tune_space_with(&space, &req).unwrap();
        assert_eq!(r.fallback_count(), space.len());
    }

    #[test]
    fn legacy_tune_matches_request_equivalent() {
        let sol = solution();
        let legacy = sol.tune(TuneStrategy::Analytic, 2).unwrap();
        let req = TuneRequest::new(TuneStrategy::Analytic)
            .cores(2)
            .trial(TrialConfig::single_shot());
        let modern = sol.tune_with(&req).unwrap();
        assert_eq!(legacy.best, modern.best);
        assert_eq!(legacy.best_score.to_bits(), modern.best_score.to_bits());
    }
}
