//! Tuning strategies: analytic (ECM-ranked), empirical (run everything),
//! and the hybrid the paper advocates.

use std::time::Instant;

use yasksite_engine::TuningParams;

use crate::cost::TuneCost;
use crate::solution::{Solution, ToolError};
use crate::space::SearchSpace;

/// How to pick the best point in the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneStrategy {
    /// Rank every candidate with the ECM model; run nothing. This is the
    /// paper's headline mode: "identifying optimal performance parameters
    /// analytically without the need to run the code".
    Analytic,
    /// Measure every candidate (the expensive baseline an exhaustive
    /// autotuner would use).
    Empirical,
    /// Rank analytically, then measure only the `shortlist` best
    /// candidates to break model ties.
    Hybrid {
        /// Number of model-ranked candidates to verify empirically.
        shortlist: usize,
    },
}

/// Outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The selected parameters.
    pub best: TuningParams,
    /// The selected candidate's score (MLUP/s; predicted for analytic,
    /// measured otherwise).
    pub best_score: f64,
    /// All scored candidates, best first.
    pub ranked: Vec<(TuningParams, f64)>,
    /// What the session cost.
    pub cost: TuneCost,
}

impl Solution {
    /// Tunes over the standard search space at `cores` active cores.
    ///
    /// # Errors
    /// Propagates engine errors from empirical runs.
    pub fn tune(&self, strategy: TuneStrategy, cores: usize) -> Result<TuneResult, ToolError> {
        let space = SearchSpace::standard(self.stencil(), self.domain(), self.machine());
        self.tune_space(&space, strategy, cores)
    }

    /// Tunes over an explicit search space.
    ///
    /// # Errors
    /// Propagates engine errors from empirical runs; fails on an empty
    /// space.
    pub fn tune_space(
        &self,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
    ) -> Result<TuneResult, ToolError> {
        let start = Instant::now();
        let candidates = space.candidates(cores);
        if candidates.is_empty() {
            return Err(ToolError::Other("empty search space".into()));
        }
        let mut cost = TuneCost::default();
        let mut ranked: Vec<(TuningParams, f64)> = Vec::with_capacity(candidates.len());
        match strategy {
            TuneStrategy::Analytic => {
                for p in candidates {
                    let pred = self.predict(&p, cores);
                    cost.model_evals += 1;
                    ranked.push((p, pred.mlups));
                }
            }
            TuneStrategy::Empirical => {
                for p in candidates {
                    let m = self.measure(&p)?;
                    cost.engine_runs += 1;
                    cost.target_seconds += 2.0 * m.seconds_per_sweep * p.wavefront as f64;
                    ranked.push((p, m.mlups));
                }
            }
            TuneStrategy::Hybrid { shortlist } => {
                let mut pre: Vec<(TuningParams, f64)> = candidates
                    .into_iter()
                    .map(|p| {
                        let pred = self.predict(&p, cores);
                        cost.model_evals += 1;
                        (p, pred.mlups)
                    })
                    .collect();
                pre.sort_by(|a, b| b.1.total_cmp(&a.1));
                let k = shortlist.max(1).min(pre.len());
                for (p, _) in pre.drain(..k) {
                    let m = self.measure(&p)?;
                    cost.engine_runs += 1;
                    cost.target_seconds += 2.0 * m.seconds_per_sweep * p.wavefront as f64;
                    ranked.push((p, m.mlups));
                }
            }
        }
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        cost.wall_seconds = start.elapsed().as_secs_f64();
        let (best, best_score) = ranked[0].clone();
        Ok(TuneResult {
            best,
            best_score,
            ranked,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_arch::Machine;
    use yasksite_stencil::builders::heat3d;

    fn solution() -> Solution {
        Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake())
    }

    #[test]
    fn analytic_runs_nothing() {
        let r = solution().tune(TuneStrategy::Analytic, 2).unwrap();
        assert_eq!(r.cost.engine_runs, 0);
        assert!(r.cost.model_evals > 10);
        assert!(r.best_score > 0.0);
        // Ranked is sorted descending.
        for w in r.ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empirical_runs_everything() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        assert_eq!(r.cost.engine_runs, space.len());
        assert_eq!(r.cost.model_evals, 0);
        assert!(r.cost.target_seconds > 0.0);
    }

    #[test]
    fn hybrid_measures_only_the_shortlist() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol
            .tune_space(&space, TuneStrategy::Hybrid { shortlist: 3 }, 1)
            .unwrap();
        assert_eq!(r.cost.engine_runs, 3);
        assert_eq!(r.cost.model_evals, space.len());
        assert_eq!(r.ranked.len(), 3);
    }

    #[test]
    fn analytic_choice_is_near_empirical_optimum() {
        // The paper's key claim in miniature: the model-selected block is
        // close to the empirically best one.
        let sol = Solution::new(heat3d(1), [64, 64, 64], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let analytic = sol.tune_space(&space, TuneStrategy::Analytic, 1).unwrap();
        let empirical = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        let chosen_measured = sol.measure(&analytic.best).unwrap().mlups;
        assert!(
            chosen_measured >= 0.7 * empirical.best_score,
            "analytic pick achieves {:.0} of empirical best {:.0}",
            chosen_measured,
            empirical.best_score
        );
    }
}
