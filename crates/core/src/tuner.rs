//! Tuning strategies: analytic (ECM-ranked), empirical (run everything),
//! and the hybrid the paper advocates.
//!
//! All empirical measurement goes through the robust trial layer
//! ([`crate::trial`]): failed or noisy runs are retried and
//! outlier-filtered, and when a candidate cannot be measured at all (or
//! the session budget runs out) its analytic ECM prediction is used
//! instead, flagged by [`Provenance::PredictedFallback`] in
//! [`TuneResult::provenances`]. A tuning session therefore always
//! terminates with a valid configuration — never a panic, and an error
//! only for genuinely unusable input (an empty search space).

use std::time::Instant;

use yasksite_engine::TuningParams;

use crate::cost::TuneCost;
use crate::solution::{Solution, ToolError};
use crate::space::SearchSpace;
use crate::trial::{
    run_trial, MeasureBackend, Provenance, SolutionBackend, TrialBudget, TrialConfig, TrialSummary,
};

/// How to pick the best point in the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneStrategy {
    /// Rank every candidate with the ECM model; run nothing. This is the
    /// paper's headline mode: "identifying optimal performance parameters
    /// analytically without the need to run the code".
    Analytic,
    /// Measure every candidate (the expensive baseline an exhaustive
    /// autotuner would use).
    Empirical,
    /// Rank analytically, then measure only the `shortlist` best
    /// candidates to break model ties.
    Hybrid {
        /// Number of model-ranked candidates to verify empirically.
        shortlist: usize,
    },
}

/// Outcome of a tuning session.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The selected parameters.
    pub best: TuningParams,
    /// The selected candidate's score (MLUP/s; predicted for analytic,
    /// measured otherwise).
    pub best_score: f64,
    /// Where the winner's score came from (`None` for purely analytic
    /// sessions, which run nothing).
    pub best_provenance: Option<Provenance>,
    /// All scored candidates, best first.
    pub ranked: Vec<(TuningParams, f64)>,
    /// Provenance per ranked candidate, parallel to `ranked` (empty for
    /// analytic sessions).
    pub provenances: Vec<Provenance>,
    /// Aggregate trial statistics of the session.
    pub trials: TrialSummary,
    /// What the session cost.
    pub cost: TuneCost,
}

impl TuneResult {
    /// How many ranked candidates rest on an analytic fallback instead of
    /// a measurement.
    #[must_use]
    pub fn fallback_count(&self) -> usize {
        self.provenances.iter().filter(|p| p.is_fallback()).count()
    }
}

impl Solution {
    /// Tunes over the standard search space at `cores` active cores.
    ///
    /// # Errors
    /// Fails only on an empty search space; measurement failures degrade
    /// to analytic predictions (see [`TuneResult::provenances`]).
    pub fn tune(&self, strategy: TuneStrategy, cores: usize) -> Result<TuneResult, ToolError> {
        let space = SearchSpace::standard(self.stencil(), self.domain(), self.machine());
        self.tune_space(&space, strategy, cores)
    }

    /// Tunes over an explicit search space with the legacy single-shot
    /// protocol (one run per measured candidate, no retries, no budget).
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space(
        &self,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
    ) -> Result<TuneResult, ToolError> {
        self.tune_space_trials(
            space,
            strategy,
            cores,
            &TrialConfig::single_shot(),
            &mut TrialBudget::unlimited(),
        )
    }

    /// Tunes over an explicit search space under the robust trial
    /// protocol `cfg`, drawing on `budget`.
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space_trials(
        &self,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> Result<TuneResult, ToolError> {
        let mut backend = SolutionBackend::new(self);
        self.tune_space_with_backend(&mut backend, space, strategy, cores, cfg, budget)
    }

    /// [`Solution::tune_space_trials`] against an arbitrary measurement
    /// backend (the seam the fault-injection harness plugs into).
    ///
    /// # Errors
    /// Fails on an empty space.
    pub fn tune_space_with_backend(
        &self,
        backend: &mut dyn MeasureBackend,
        space: &SearchSpace,
        strategy: TuneStrategy,
        cores: usize,
        cfg: &TrialConfig,
        budget: &mut TrialBudget,
    ) -> Result<TuneResult, ToolError> {
        let start = Instant::now();
        let candidates = space.candidates(cores);
        if candidates.is_empty() {
            return Err(ToolError::InvalidInput("empty search space".into()));
        }
        let mut cost = TuneCost::default();
        let mut trials = TrialSummary::default();
        // (params, score MLUP/s, provenance): provenance is None for
        // analytic scores that ran nothing.
        let mut entries: Vec<(TuningParams, f64, Option<Provenance>)> =
            Vec::with_capacity(candidates.len());
        let mut measure = |p: TuningParams,
                           cost: &mut TuneCost,
                           trials: &mut TrialSummary,
                           budget: &mut TrialBudget|
         -> (TuningParams, f64, Option<Provenance>) {
            let fallback = self.predict(&p, cores).seconds_per_sweep;
            let r = run_trial(backend, &p, fallback, cfg, budget);
            cost.engine_runs += r.attempts;
            cost.target_seconds += 2.0 * r.seconds_per_sweep * p.wavefront as f64;
            trials.absorb(&r);
            let mlups = self.updates_per_sweep() as f64 / r.seconds_per_sweep.max(1e-12) / 1e6;
            (p, mlups, Some(r.provenance))
        };
        match strategy {
            TuneStrategy::Analytic => {
                for p in candidates {
                    let pred = self.predict(&p, cores);
                    cost.model_evals += 1;
                    entries.push((p, pred.mlups, None));
                }
            }
            TuneStrategy::Empirical => {
                for p in candidates {
                    entries.push(measure(p, &mut cost, &mut trials, budget));
                }
            }
            TuneStrategy::Hybrid { shortlist } => {
                let mut pre: Vec<(TuningParams, f64)> = candidates
                    .into_iter()
                    .map(|p| {
                        let pred = self.predict(&p, cores);
                        cost.model_evals += 1;
                        (p, pred.mlups)
                    })
                    .collect();
                pre.sort_by(|a, b| b.1.total_cmp(&a.1));
                let k = shortlist.max(1).min(pre.len());
                for (p, _) in pre.drain(..k) {
                    entries.push(measure(p, &mut cost, &mut trials, budget));
                }
            }
        }
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        cost.wall_seconds = start.elapsed().as_secs_f64();
        let (best, best_score, best_provenance) = entries[0].clone();
        let provenances: Vec<Provenance> = entries.iter().filter_map(|e| e.2).collect();
        let ranked: Vec<(TuningParams, f64)> =
            entries.into_iter().map(|(p, s, _)| (p, s)).collect();
        Ok(TuneResult {
            best,
            best_score,
            best_provenance,
            ranked,
            provenances,
            trials,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::{FaultPlan, FaultyBackend};
    use yasksite_arch::Machine;
    use yasksite_stencil::builders::heat3d;

    fn solution() -> Solution {
        Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake())
    }

    #[test]
    fn analytic_runs_nothing() {
        let r = solution().tune(TuneStrategy::Analytic, 2).unwrap();
        assert_eq!(r.cost.engine_runs, 0);
        assert!(r.cost.model_evals > 10);
        assert!(r.best_score > 0.0);
        assert!(r.best_provenance.is_none());
        assert!(r.provenances.is_empty());
        // Ranked is sorted descending.
        for w in r.ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empirical_runs_everything() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        assert_eq!(r.cost.engine_runs, space.len());
        assert_eq!(r.cost.model_evals, 0);
        assert!(r.cost.target_seconds > 0.0);
        assert_eq!(r.provenances.len(), space.len());
        assert_eq!(r.fallback_count(), 0);
        assert_eq!(r.best_provenance, Some(Provenance::Measured));
    }

    #[test]
    fn hybrid_measures_only_the_shortlist() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let r = sol
            .tune_space(&space, TuneStrategy::Hybrid { shortlist: 3 }, 1)
            .unwrap();
        assert_eq!(r.cost.engine_runs, 3);
        assert_eq!(r.cost.model_evals, space.len());
        assert_eq!(r.ranked.len(), 3);
    }

    #[test]
    fn analytic_choice_is_near_empirical_optimum() {
        // The paper's key claim in miniature: the model-selected block is
        // close to the empirically best one.
        let sol = Solution::new(heat3d(1), [64, 64, 64], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let analytic = sol.tune_space(&space, TuneStrategy::Analytic, 1).unwrap();
        let empirical = sol.tune_space(&space, TuneStrategy::Empirical, 1).unwrap();
        let chosen_measured = sol.measure(&analytic.best).unwrap().mlups;
        assert!(
            chosen_measured >= 0.7 * empirical.best_score,
            "analytic pick achieves {:.0} of empirical best {:.0}",
            chosen_measured,
            empirical.best_score
        );
    }

    #[test]
    fn total_measurement_failure_degrades_to_analytic_ranking() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let mut backend =
            FaultyBackend::new(SolutionBackend::new(&sol), FaultPlan::always_fail(11));
        let r = sol
            .tune_space_with_backend(
                &mut backend,
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::default(),
                &mut TrialBudget::unlimited(),
            )
            .unwrap();
        // Every candidate fell back to its prediction, the ranking equals
        // the analytic one, and the result says so.
        assert_eq!(r.fallback_count(), space.len());
        assert!(r.best_provenance.unwrap().is_fallback());
        assert_eq!(r.trials.fallbacks, space.len());
        let analytic = sol.tune_space(&space, TuneStrategy::Analytic, 1).unwrap();
        assert_eq!(r.best.block, analytic.best.block);
        assert!(r.best_score > 0.0 && r.best_score.is_finite());
    }

    #[test]
    fn budget_exhaustion_mid_session_still_ranks_everything() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        // Enough budget for roughly half the candidates.
        let mut budget = TrialBudget::runs(space.len() / 2);
        let r = sol
            .tune_space_trials(
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::single_shot(),
                &mut budget,
            )
            .unwrap();
        assert_eq!(r.ranked.len(), space.len(), "every candidate is ranked");
        assert!(
            r.fallback_count() >= space.len() / 2,
            "candidates past the budget must fall back"
        );
        assert!(budget.exhausted());
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn noisy_backend_still_finds_a_finite_winner() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let space = SearchSpace::spatial_only(sol.stencil(), sol.domain(), sol.machine());
        let mut backend = FaultyBackend::new(SolutionBackend::new(&sol), FaultPlan::noisy(5));
        let r = sol
            .tune_space_with_backend(
                &mut backend,
                &space,
                TuneStrategy::Empirical,
                1,
                &TrialConfig::default(),
                &mut TrialBudget::unlimited(),
            )
            .unwrap();
        assert!(r.best_score.is_finite() && r.best_score > 0.0);
        assert_eq!(r.provenances.len(), space.len());
        assert!(r.trials.samples > 0);
    }
}
