//! Command-line front end helpers for the `yasksite` binary.
//!
//! The binary mirrors the workflows of the original tool's CLI: inspect
//! the built-in machines and stencils, predict or measure a
//! configuration, run the tuner, or dump generated kernel source. All
//! argument parsing lives here so it can be unit-tested.

use std::collections::HashMap;
use std::path::PathBuf;

use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::{builders, paper_suite, Stencil};

use crate::telemetry::{Level, Telemetry};
use crate::{ServeConfig, ToolError, TrialBudget, TrialConfig, TuneRequest, TuneStrategy};

/// Parses `"512x8x8"`-style extent triples.
///
/// # Errors
/// Returns a message if the string is not three positive integers joined
/// by `x`.
pub fn parse_triple(s: &str) -> Result<[usize; 3], String> {
    let parts: Vec<&str> = s.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("expected AxBxC, got '{s}'"));
    }
    let mut out = [0usize; 3];
    for (d, p) in parts.iter().enumerate() {
        out[d] = p
            .parse::<usize>()
            .map_err(|_| format!("'{p}' is not a number in '{s}'"))?;
        if out[d] == 0 {
            return Err(format!("extent must be positive in '{s}'"));
        }
    }
    Ok(out)
}

/// Flags that take no value (presence alone switches them on).
pub const BOOLEAN_FLAGS: &[&str] = &["metrics", "profile", "once", "check", "quick", "synthetic"];

/// Splits `--key value` pairs into a map; returns positional arguments
/// separately. Flags listed in [`BOOLEAN_FLAGS`] consume no value and
/// map to `"true"`.
///
/// # Errors
/// Returns a message if a value-taking `--key` has no value.
pub fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), val.clone());
        } else {
            pos.push(a.clone());
        }
    }
    Ok((pos, flags))
}

/// Looks up a stencil by its table name (e.g. `"heat-3d-r1"`,
/// `"box-3d-r2"`, `"star-2d-r2"`, `"heat-3d-vc"`).
#[must_use]
pub fn stencil_by_name(name: &str) -> Option<Stencil> {
    if let Some(s) = paper_suite().into_iter().find(|s| s.name() == name) {
        return Some(s);
    }
    // Parametric families not in the fixed suite.
    let parse_r = |prefix: &str| -> Option<usize> { name.strip_prefix(prefix)?.parse().ok() };
    if let Some(r) = parse_r("heat-3d-r") {
        return Some(builders::heat3d(r));
    }
    if let Some(r) = parse_r("heat-2d-r") {
        return Some(builders::heat2d(r));
    }
    if let Some(r) = parse_r("box-3d-r") {
        return Some(builders::box3d(r));
    }
    if let Some(r) = parse_r("star-3d-r") {
        return Some(builders::star3d(r, &vec![0.5; r + 1]));
    }
    None
}

/// Builds [`TuningParams`] from parsed flags, defaulting the block to the
/// domain and the fold to the machine's in-line fold.
///
/// # Errors
/// Returns a message on malformed values.
pub fn params_from_flags(
    flags: &HashMap<String, String>,
    domain: [usize; 3],
    machine: &Machine,
) -> Result<TuningParams, String> {
    let block = match flags.get("block") {
        Some(b) => parse_triple(b)?,
        None => domain,
    };
    let fold = match flags.get("fold") {
        Some(f) => {
            let t = parse_triple(f)?;
            Fold::new(t[0], t[1], t[2])
        }
        None => Fold::new(machine.lanes(), 1, 1),
    };
    let cores: usize = flags.get("cores").map_or(Ok(1), |c| {
        c.parse().map_err(|_| format!("bad --cores '{c}'"))
    })?;
    let wavefront: usize = flags.get("wavefront").map_or(Ok(1), |w| {
        w.parse().map_err(|_| format!("bad --wavefront '{w}'"))
    })?;
    Ok(TuningParams::new(block, fold)
        .threads(cores.max(1))
        .wavefront(wavefront.max(1))
        .streaming_stores(flags.get("nt-stores").is_some_and(|v| v == "true")))
}

/// Resolves the `--machine` flag (default: `clx`), or loads a custom
/// model from `--machine-file <path>` (see
/// [`yasksite_arch::parse_machine`] for the format).
///
/// # Errors
/// Returns [`ToolError::InvalidInput`] for unknown machine names or
/// unreadable files, and [`ToolError::MachineFile`] — carrying the line
/// number and error kind — for malformed or invalid model files.
pub fn machine_from_flags(flags: &HashMap<String, String>) -> Result<Machine, ToolError> {
    if let Some(path) = flags.get("machine-file") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ToolError::InvalidInput(format!("cannot read '{path}': {e}")))?;
        return yasksite_arch::parse_machine(&text).map_err(ToolError::from);
    }
    let name = flags.get("machine").map_or("clx", String::as_str);
    Machine::by_short_name(name)
        .ok_or_else(|| ToolError::InvalidInput(format!("unknown machine '{name}' (clx|rome|host)")))
}

/// Builds the trial protocol and budget from parsed flags:
/// `--samples N`, `--warmup N`, `--retries N`, `--budget-runs N`,
/// `--budget-secs S`. With none of the protocol flags given the legacy
/// single-shot protocol is used (one run per candidate, no retries).
///
/// # Errors
/// Returns a message on malformed values.
pub fn trials_from_flags(
    flags: &HashMap<String, String>,
) -> Result<(TrialConfig, TrialBudget), String> {
    let get = |key: &str| -> Result<Option<usize>, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("bad --{key} '{v}'")))
            .transpose()
    };
    let samples = get("samples")?;
    let warmup = get("warmup")?;
    let retries = get("retries")?;
    let mut cfg = if samples.is_none() && warmup.is_none() && retries.is_none() {
        TrialConfig::single_shot()
    } else {
        TrialConfig::default()
    };
    if let Some(s) = samples {
        cfg.samples = s.max(1);
    }
    if let Some(w) = warmup {
        cfg.warmup = w;
    }
    if let Some(r) = retries {
        cfg.max_retries = r;
    }
    let mut budget = TrialBudget::unlimited();
    budget.max_runs = get("budget-runs")?;
    budget.max_seconds = flags
        .get("budget-secs")
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s > 0.0)
                .ok_or_else(|| format!("bad --budget-secs '{v}'"))
        })
        .transpose()?;
    Ok((cfg, budget))
}

/// Builds the full [`TuneRequest`] for the `tune` command from parsed
/// flags: `--strategy analytic|hybrid|empirical`, `--cores N`,
/// `--jobs N` (default: `YASKSITE_JOBS` or the available parallelism),
/// plus the trial protocol and budget flags of [`trials_from_flags`].
/// This is the single config path the CLI and library share.
///
/// # Errors
/// Returns a message on malformed values or an unknown strategy.
pub fn request_from_flags(flags: &HashMap<String, String>) -> Result<TuneRequest, String> {
    let strategy = match flags.get("strategy").map(String::as_str) {
        None | Some("analytic") => TuneStrategy::Analytic,
        Some("hybrid") => TuneStrategy::Hybrid { shortlist: 3 },
        Some("empirical") => TuneStrategy::Empirical,
        Some(other) => return Err(format!("unknown strategy '{other}'")),
    };
    let cores: usize = flags.get("cores").map_or(Ok(1), |c| {
        c.parse().map_err(|_| format!("bad --cores '{c}'"))
    })?;
    let (cfg, budget) = trials_from_flags(flags)?;
    let mut req = TuneRequest::new(strategy)
        .cores(cores.max(1))
        .trial(cfg)
        .budget(budget);
    if let Some(j) = flags.get("jobs") {
        let jobs: usize = j.parse().map_err(|_| format!("bad --jobs '{j}'"))?;
        req = req.jobs(jobs.max(1));
    }
    if flags.contains_key("profile") {
        req = req.profile();
    }
    if let Some(c) = flags.get("drift-cap") {
        let cap: usize = c.parse().map_err(|_| format!("bad --drift-cap '{c}'"))?;
        req = req.drift_cap(cap);
    }
    Ok(req)
}

/// Builds the daemon configuration for `yasksite serve` from parsed
/// flags — `--state-dir DIR` (crash-safe journals), `--queue N`
/// (bounded request queue, default 16), `--deadline-ms MS` (default
/// per-request watchdog), `--tenant-runs N` / `--tenant-secs S`
/// (per-tenant admission caps), `--drift-cap N` (ledger bound per key,
/// default 64), `--trace-sample N` (trace only the first N requests in
/// full; the rest keep counters but emit no events) — plus the optional
/// `--socket PATH` to serve on a Unix socket instead of stdin. The
/// caller attaches the telemetry handle.
///
/// # Errors
/// Returns a message on malformed values.
pub fn serve_config_from_flags(
    flags: &HashMap<String, String>,
) -> Result<(ServeConfig, Option<PathBuf>), String> {
    let mut config = ServeConfig {
        state_dir: flags.get("state-dir").map(PathBuf::from),
        ..ServeConfig::default()
    };
    let usize_flag = |key: &str| -> Result<Option<usize>, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("bad --{key} '{v}'")))
            .transpose()
    };
    if let Some(q) = usize_flag("queue")? {
        config.queue_capacity = q.max(1);
    }
    config.default_deadline_ms = flags
        .get("deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("bad --deadline-ms '{v}'"))
        })
        .transpose()?;
    config.tenant_runs = usize_flag("tenant-runs")?;
    config.tenant_secs = flags
        .get("tenant-secs")
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s > 0.0)
                .ok_or_else(|| format!("bad --tenant-secs '{v}'"))
        })
        .transpose()?;
    if let Some(cap) = usize_flag("drift-cap")? {
        config.drift_cap = Some(cap);
    }
    config.trace_sample = flags
        .get("trace-sample")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| format!("bad --trace-sample '{v}'"))
        })
        .transpose()?;
    let socket = flags.get("socket").map(PathBuf::from);
    Ok((config, socket))
}

/// Parsed options of the `yasksite top` dashboard command.
#[derive(Debug, Clone, PartialEq)]
pub struct TopOptions {
    /// Render one frame and exit instead of polling.
    pub once: bool,
    /// Validate the snapshot (and Prometheus exposition with
    /// `--format prom`) instead of rendering; exit non-zero on failure.
    pub check: bool,
    /// Seconds between frames when polling (default 2.0).
    pub interval_secs: f64,
    /// `--format prom` requests the Prometheus text exposition.
    pub prometheus: bool,
}

/// Builds the `yasksite top` options from parsed flags: `--once`,
/// `--check`, `--interval SECS` (default 2), `--format json|prom`.
///
/// # Errors
/// Returns a message on a malformed interval or unknown format.
pub fn top_options_from_flags(flags: &HashMap<String, String>) -> Result<TopOptions, String> {
    let interval_secs = flags
        .get("interval")
        .map(|v| {
            v.parse::<f64>()
                .ok()
                .filter(|s| s.is_finite() && *s > 0.0)
                .ok_or_else(|| format!("bad --interval '{v}'"))
        })
        .transpose()?
        .unwrap_or(2.0);
    let prometheus = match flags.get("format").map(String::as_str) {
        None | Some("json") => false,
        Some("prom") => true,
        Some(other) => return Err(format!("bad --format '{other}' (json|prom)")),
    };
    Ok(TopOptions {
        once: flags.contains_key("once"),
        check: flags.contains_key("check"),
        interval_secs,
        prometheus,
    })
}

/// Builds the session [`Telemetry`] from parsed flags:
/// `--trace-out FILE.jsonl` streams JSONL events to a file,
/// `--metrics` collects metrics and spans without an event stream, and
/// `--log-level error|info|debug` filters non-span events (default:
/// `debug`). Without any of these the handle is disabled and tuning runs
/// at zero observability overhead.
///
/// # Errors
/// Returns a message for an unknown `--log-level` or an unwritable
/// `--trace-out` path.
pub fn telemetry_from_flags(flags: &HashMap<String, String>) -> Result<Telemetry, String> {
    let level = match flags.get("log-level") {
        Some(s) => {
            Level::parse(s).ok_or_else(|| format!("bad --log-level '{s}' (error|info|debug)"))?
        }
        None => Level::Debug,
    };
    if let Some(path) = flags.get("trace-out") {
        return Telemetry::to_file(path, level)
            .map_err(|e| format!("cannot open trace file '{path}': {e}"));
    }
    if flags.contains_key("metrics") {
        return Ok(Telemetry::null(level));
    }
    Ok(Telemetry::disabled())
}

/// A classified CLI failure: a stable kind tag for scripts, the original
/// message, and (when the kind implies one) a recovery hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReport {
    /// Stable machine-matchable category: `usage`, `io`, `trace-io`,
    /// `trace-schema`, `status-missing` or `runtime`.
    pub kind: &'static str,
    /// The underlying error message, verbatim.
    pub message: String,
    /// One-line recovery suggestion, when the category implies one.
    pub hint: Option<&'static str>,
}

impl ErrorReport {
    /// Classifies a CLI error message into a kind and hint. The message
    /// itself is preserved verbatim so scripted callers matching on
    /// substrings (e.g. `unknown stencil`) keep working.
    #[must_use]
    pub fn classify(message: &str) -> ErrorReport {
        let (kind, hint): (&'static str, Option<&'static str>) =
            if message.contains("unknown stencil") {
                (
                    "usage",
                    Some("run 'yasksite stencils' to list the known names"),
                )
            } else if message.contains("unknown machine") {
                (
                    "usage",
                    Some("run 'yasksite machines' to list the known models"),
                )
            } else if message.contains("unknown command")
                || message.contains("is required")
                || message.contains("needs a value")
                || message.contains("unknown strategy")
                || message.starts_with("bad --")
                || message.contains("expected AxBxC")
            {
                ("usage", Some("run 'yasksite' without arguments for usage"))
            } else if message.contains("cannot read trace file") {
                (
                    "trace-io",
                    Some("pass the JSONL file a tune wrote via --trace-out"),
                )
            } else if message.contains("trace schema mismatch") {
                (
                    "trace-schema",
                    Some("re-record the trace with this yasksite build (schema v1)"),
                )
            } else if message.contains("no status.json") {
                (
                    "status-missing",
                    Some(
                        "start the daemon with 'yasksite serve --state-dir <dir>' \
                         (state dirs written before the status op have no snapshot)",
                    ),
                )
            } else if message.contains("cannot read") || message.contains("cannot open") {
                ("io", None)
            } else {
                ("runtime", None)
            };
        ErrorReport {
            kind,
            message: message.to_string(),
            hint,
        }
    }

    /// Renders the report for stderr: `error[kind]: message` plus an
    /// optional `hint:` line.
    #[must_use]
    pub fn render(&self) -> String {
        match self.hint {
            Some(h) => format!("error[{}]: {}\nhint: {}", self.kind, self.message, h),
            None => format!("error[{}]: {}", self.kind, self.message),
        }
    }
}

/// The usage text of the binary.
pub const USAGE: &str = "\
yasksite — stencil kernel tuning with the ECM performance model

USAGE:
  yasksite machines
  yasksite stencils
  yasksite predict --stencil <name> --domain AxBxC
                   [--machine clx|rome|host | --machine-file <path>]
                   [--block AxBxC] [--fold AxBxC] [--cores N] [--wavefront W]
  yasksite measure  (same flags; runs on the simulated hierarchy, or
                     natively with --machine host)
  yasksite tune     --stencil <name> --domain AxBxC [--machine ...]
                   [--cores N] [--strategy analytic|hybrid|empirical]
                   [--jobs N]   (analytic ranking workers; default:
                                YASKSITE_JOBS or all cores — results are
                                identical for every value)
                   [--samples N] [--warmup N] [--retries N]
                   [--budget-runs N] [--budget-secs S]
                   [--trace-out FILE.jsonl]  (stream telemetry as JSONL,
                                             schema v1: one event object
                                             per line)
                   [--metrics]               (print the metrics registry
                                             and span tree after tuning)
                   [--log-level error|info|debug]  (event filter for
                                             --trace-out; default debug)
                   [--profile]               (profile the winner natively:
                                             phase timers, pool occupancy,
                                             drift table)
                   [--drift-cap N]           (bound the drift ledger to N
                                             records per key, oldest
                                             evicted first)
  yasksite report   <trace.jsonl> [--baseline <trace.jsonl>]
                    (render a recorded trace: phase breakdown, pool
                     utilization, drift table, regressions vs baseline;
                     truncated lines are skipped with a counted warning)
  yasksite codegen  (same flags as predict; prints the C kernel source)
  yasksite serve    [--state-dir DIR]   (crash-safe journals: prediction
                                        cache + drift history survive
                                        restarts and torn writes)
                   [--socket PATH]      (serve a Unix socket instead of
                                        stdin/stdout)
                   [--queue N]          (bounded request queue; overflow
                                        is rejected, never buffered;
                                        default 16)
                   [--deadline-ms MS]   (default per-request watchdog:
                                        stuck trials are cancelled to
                                        their analytic fallback)
                   [--tenant-runs N] [--tenant-secs S]
                                        (per-tenant admission caps on
                                        measurement runs / seconds)
                   [--drift-cap N]      (drift records kept per key,
                                        oldest evicted; default 64)
                   [--trace-sample N]   (trace only the first N requests
                                        in full; later requests keep
                                        counters but emit no events —
                                        responses are identical either
                                        way)
                    Requests are JSON lines, answers one JSON line each:
                      {\"id\":\"1\",\"op\":\"tune\",\"stencil\":\"heat-3d-r1\",
                       \"domain\":\"32x16x16\",\"cores\":2,\"strategy\":\"hybrid\"}
                    Ops: tune, predict, report, status, shutdown. The
                    status op returns the observability snapshot (queue
                    depth, rolling latency percentiles, tier mix, drift
                    suspects) as schema-v1 JSON, or Prometheus text with
                    \"format\":\"prom\". SIGTERM drains in-flight
                    requests, snapshots state and exits 0.
  yasksite calibrate [--out FILE]      (write the calibrated machine file;
                                        default: stdout)
                   [--seed N]           (seed of the probe streams and the
                                        provenance block; default 42)
                   [--samples N] [--warmup N] [--retries N]
                   [--budget-runs N] [--budget-secs S]
                   [--quick]            (shrink working sets — smoke runs)
                   [--synthetic]        (seeded deterministic samples
                                        around the builtin host model
                                        instead of timed loops; CI mode)
                   [--trace-out FILE.jsonl] [--metrics]
                   [--log-level error|info|debug]
                    Measures the host — FMA throughput, per-cache-level
                    and memory bandwidth, memory latency — through the
                    robust trial protocol and emits a MachineKind::Host
                    machine file with a calibration provenance block
                    (per-probe samples, rejected outliers, confidence
                    intervals, rev/seed/date). Load it anywhere with
                    --machine-file.
  yasksite calibrate --check <machine-file>
                    Validate a calibrated machine file: model invariants,
                    probe completeness, value-inside-CI, bandwidth
                    consistency. Non-zero on violation.
  yasksite top      <socket|state-dir>
                   [--once]             (render one frame and exit)
                   [--interval SECS]    (poll period; default 2)
                   [--format json|prom] (what to fetch; prom needs a
                                        live socket)
                   [--check]            (validate the snapshot — and the
                                        Prometheus exposition with
                                        --format prom — then exit;
                                        non-zero on malformed output)
                    Live daemon dashboard: polls the status op over the
                    Unix socket, or reads <state-dir>/status.json.

Stencil names: heat-3d-r<r>, heat-2d-r<r>, box-3d-r<r>, star-3d-r<r>,
star-2d-r2, wave-2d, heat-3d-vc.";

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn triples() {
        assert_eq!(parse_triple("512x8x8").unwrap(), [512, 8, 8]);
        assert!(parse_triple("512x8").is_err());
        assert!(parse_triple("ax8x8").is_err());
        assert!(parse_triple("0x8x8").is_err());
    }

    #[test]
    fn flags() {
        let args: Vec<String> = ["predict", "--machine", "rome", "--cores", "8"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (pos, flags) = parse_flags(&args).unwrap();
        assert_eq!(pos, vec!["predict"]);
        assert_eq!(flags["machine"], "rome");
        assert_eq!(flags["cores"], "8");
        let bad: Vec<String> = ["--machine".to_string()].to_vec();
        assert!(parse_flags(&bad).is_err());
    }

    #[test]
    fn stencil_lookup() {
        assert!(stencil_by_name("heat-3d-r1").is_some());
        assert!(stencil_by_name("heat-3d-r3").is_some());
        assert!(stencil_by_name("box-3d-r2").is_some());
        assert!(stencil_by_name("wave-2d").is_some());
        assert!(stencil_by_name("heat-3d-vc").is_some());
        assert!(stencil_by_name("nope").is_none());
    }

    #[test]
    fn params_defaults_and_overrides() {
        let m = Machine::rome();
        let mut flags = HashMap::new();
        let p = params_from_flags(&flags, [64, 64, 64], &m).unwrap();
        assert_eq!(p.block, [64, 64, 64]);
        assert_eq!(p.fold, Fold::new(4, 1, 1));
        flags.insert("block".into(), "64x8x8".into());
        flags.insert("cores".into(), "16".into());
        flags.insert("wavefront".into(), "4".into());
        let p = params_from_flags(&flags, [64, 64, 64], &m).unwrap();
        assert_eq!(p.block, [64, 8, 8]);
        assert_eq!(p.threads, 16);
        assert_eq!(p.wavefront, 4);
    }

    #[test]
    fn machines_resolve() {
        let mut flags = HashMap::new();
        assert_eq!(machine_from_flags(&flags).unwrap().tag(), "CLX");
        flags.insert("machine".into(), "rome".into());
        assert_eq!(machine_from_flags(&flags).unwrap().tag(), "ROME");
        flags.insert("machine".into(), "m2".into());
        assert!(matches!(
            machine_from_flags(&flags),
            Err(ToolError::InvalidInput(_))
        ));
    }

    #[test]
    fn machine_file_errors_are_typed() {
        let dir = std::env::temp_dir().join("yasksite-cli-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.machine");
        std::fs::write(&path, "definitely not a machine file\n").unwrap();
        let mut flags = HashMap::new();
        flags.insert("machine-file".into(), path.to_str().unwrap().to_string());
        let err = machine_from_flags(&flags).unwrap_err();
        assert!(matches!(err, ToolError::MachineFile(_)), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
        flags.insert("machine-file".into(), "/no/such/file".into());
        assert!(matches!(
            machine_from_flags(&flags),
            Err(ToolError::InvalidInput(_))
        ));
    }

    #[test]
    fn trial_flags_default_to_single_shot() {
        let flags = HashMap::new();
        let (cfg, budget) = trials_from_flags(&flags).unwrap();
        assert_eq!(cfg.samples, 1);
        assert_eq!(cfg.warmup, 0);
        assert_eq!(cfg.max_retries, 0);
        assert!(budget.max_runs.is_none() && budget.max_seconds.is_none());
    }

    #[test]
    fn request_from_flags_builds_the_full_request() {
        let mut flags = HashMap::new();
        let req = request_from_flags(&flags).unwrap();
        assert_eq!(req.strategy, TuneStrategy::Analytic);
        assert_eq!(req.cores, 1);
        assert!(req.jobs.is_none(), "jobs defaults to auto");
        assert_eq!(req.trial.samples, 1, "no protocol flags -> single shot");

        flags.insert("strategy".into(), "hybrid".into());
        flags.insert("cores".into(), "8".into());
        flags.insert("jobs".into(), "4".into());
        flags.insert("samples".into(), "5".into());
        flags.insert("budget-runs".into(), "50".into());
        let req = request_from_flags(&flags).unwrap();
        assert_eq!(req.strategy, TuneStrategy::Hybrid { shortlist: 3 });
        assert_eq!(req.cores, 8);
        assert_eq!(req.effective_jobs(), 4);
        assert_eq!(req.trial.samples, 5);
        assert_eq!(req.budget.max_runs, Some(50));

        flags.insert("strategy".into(), "nope".into());
        assert!(request_from_flags(&flags).is_err());
        flags.insert("strategy".into(), "empirical".into());
        flags.insert("jobs".into(), "x".into());
        assert!(request_from_flags(&flags).is_err());
    }

    #[test]
    fn drift_cap_flag_wires_the_request() {
        let mut flags = HashMap::new();
        assert_eq!(request_from_flags(&flags).unwrap().drift_cap, None);
        flags.insert("drift-cap".into(), "16".into());
        assert_eq!(request_from_flags(&flags).unwrap().drift_cap, Some(16));
        flags.insert("drift-cap".into(), "many".into());
        assert!(request_from_flags(&flags).is_err());
    }

    #[test]
    fn serve_config_resolves_defaults_and_flags() {
        let mut flags = HashMap::new();
        let (config, socket) = serve_config_from_flags(&flags).unwrap();
        assert!(config.state_dir.is_none());
        assert_eq!(config.queue_capacity, 16);
        assert_eq!(config.drift_cap, Some(64));
        assert!(config.tenant_runs.is_none() && config.tenant_secs.is_none());
        assert!(socket.is_none());

        flags.insert("state-dir".into(), "/tmp/ys-state".into());
        flags.insert("queue".into(), "4".into());
        flags.insert("deadline-ms".into(), "2500".into());
        flags.insert("tenant-runs".into(), "100".into());
        flags.insert("tenant-secs".into(), "1.5".into());
        flags.insert("drift-cap".into(), "8".into());
        flags.insert("socket".into(), "/tmp/ys.sock".into());
        let (config, socket) = serve_config_from_flags(&flags).unwrap();
        assert_eq!(
            config.state_dir.as_deref(),
            Some(Path::new("/tmp/ys-state"))
        );
        assert_eq!(config.queue_capacity, 4);
        assert_eq!(config.default_deadline_ms, Some(2500));
        assert_eq!(config.tenant_runs, Some(100));
        assert_eq!(config.tenant_secs, Some(1.5));
        assert_eq!(config.drift_cap, Some(8));
        assert_eq!(socket.as_deref(), Some(Path::new("/tmp/ys.sock")));

        flags.insert("queue".into(), "0".into());
        let (config, _) = serve_config_from_flags(&flags).unwrap();
        assert_eq!(config.queue_capacity, 1, "queue is clamped to 1");
        flags.insert("tenant-secs".into(), "-3".into());
        assert!(serve_config_from_flags(&flags).is_err());
    }

    #[test]
    fn trace_sample_flag_wires_the_config() {
        let mut flags = HashMap::new();
        let (config, _) = serve_config_from_flags(&flags).unwrap();
        assert!(config.trace_sample.is_none(), "default: trace everything");
        flags.insert("trace-sample".into(), "10".into());
        let (config, _) = serve_config_from_flags(&flags).unwrap();
        assert_eq!(config.trace_sample, Some(10));
        flags.insert("trace-sample".into(), "lots".into());
        assert!(serve_config_from_flags(&flags).is_err());
    }

    #[test]
    fn top_options_resolve_defaults_and_flags() {
        let mut flags = HashMap::new();
        let opts = top_options_from_flags(&flags).unwrap();
        assert!(!opts.once && !opts.check && !opts.prometheus);
        assert!((opts.interval_secs - 2.0).abs() < 1e-12);

        flags.insert("once".into(), "true".into());
        flags.insert("check".into(), "true".into());
        flags.insert("interval".into(), "0.5".into());
        flags.insert("format".into(), "prom".into());
        let opts = top_options_from_flags(&flags).unwrap();
        assert!(opts.once && opts.check && opts.prometheus);
        assert!((opts.interval_secs - 0.5).abs() < 1e-12);

        flags.insert("format".into(), "xml".into());
        assert!(top_options_from_flags(&flags).is_err());
        flags.insert("format".into(), "json".into());
        flags.insert("interval".into(), "-1".into());
        assert!(top_options_from_flags(&flags).is_err());
    }

    #[test]
    fn top_boolean_flags_take_no_value() {
        let args: Vec<String> = ["top", "/tmp/sock", "--once", "--check"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (pos, flags) = parse_flags(&args).unwrap();
        assert_eq!(pos, vec!["top", "/tmp/sock"]);
        assert_eq!(flags["once"], "true");
        assert_eq!(flags["check"], "true");
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let args: Vec<String> = ["tune", "--metrics", "--cores", "4"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (pos, flags) = parse_flags(&args).unwrap();
        assert_eq!(pos, vec!["tune"]);
        assert_eq!(flags["metrics"], "true");
        assert_eq!(flags["cores"], "4", "--metrics must not eat --cores");
    }

    #[test]
    fn telemetry_flags_resolve() {
        let mut flags = HashMap::new();
        assert!(
            !telemetry_from_flags(&flags).unwrap().is_enabled(),
            "no flags -> disabled"
        );
        flags.insert("metrics".into(), "true".into());
        let tel = telemetry_from_flags(&flags).unwrap();
        assert!(tel.is_enabled(), "--metrics -> collecting handle");
        flags.insert("log-level".into(), "info".into());
        assert_eq!(
            telemetry_from_flags(&flags).unwrap().level(),
            Some(Level::Info)
        );
        flags.insert("log-level".into(), "loud".into());
        let err = telemetry_from_flags(&flags).unwrap_err();
        assert!(err.contains("--log-level"), "{err}");
    }

    #[test]
    fn trace_out_writes_a_parseable_stream() {
        let dir = std::env::temp_dir().join("yasksite-cli-telemetry");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let mut flags = HashMap::new();
        flags.insert("trace-out".into(), path.to_str().unwrap().to_string());
        {
            let tel = telemetry_from_flags(&flags).unwrap();
            let span = tel.span("tune_session");
            tel.event(Level::Info, "session_start", span.id(), &[]);
            drop(span);
            tel.finish();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let stats = crate::telemetry::check_trace(&text).expect("valid trace");
        assert_eq!(stats.spans_opened, 1);
        assert_eq!(stats.spans_closed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_reports_classify_and_render() {
        let r = ErrorReport::classify("unknown stencil 'nope'");
        assert_eq!(r.kind, "usage");
        let out = r.render();
        assert!(out.starts_with("error[usage]: unknown stencil"), "{out}");
        assert!(out.contains("hint: run 'yasksite stencils'"), "{out}");

        let r = ErrorReport::classify("unknown command 'frobnicate'");
        assert_eq!(r.kind, "usage");
        assert!(r.render().contains("unknown command"), "substring kept");

        let r = ErrorReport::classify("cannot read '/no/such': gone");
        assert_eq!(r.kind, "io");
        assert!(r.hint.is_none());
        assert_eq!(r.render(), "error[io]: cannot read '/no/such': gone");

        let r = ErrorReport::classify("something exploded");
        assert_eq!(r.kind, "runtime");
    }

    #[test]
    fn trace_errors_classify_before_generic_io() {
        let r = ErrorReport::classify("cannot read trace file 'x.jsonl': gone");
        assert_eq!(r.kind, "trace-io");
        assert!(r.render().contains("--trace-out"), "{}", r.render());

        let r = ErrorReport::classify("trace schema mismatch: line 3 has version 2, expected 1");
        assert_eq!(r.kind, "trace-schema");
        assert!(r.render().contains("schema v1"), "{}", r.render());
    }

    #[test]
    fn missing_status_snapshot_classifies_before_generic_io() {
        let r = ErrorReport::classify("no status.json in state dir '/tmp/ys-state'");
        assert_eq!(r.kind, "status-missing");
        let out = r.render();
        assert!(out.contains("yasksite serve --state-dir"), "{out}");
        // The message must NOT fall through to the bare io branch even
        // though a raw read failure would have said "cannot read".
        let raw = ErrorReport::classify("cannot read '/tmp/ys-state/status.json': gone");
        assert_eq!(raw.kind, "io");
    }

    #[test]
    fn profile_flag_is_boolean_and_wires_the_request() {
        let args: Vec<String> = ["tune", "--profile", "--cores", "2"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (_, flags) = parse_flags(&args).unwrap();
        assert_eq!(flags["profile"], "true");
        assert_eq!(flags["cores"], "2", "--profile must not eat --cores");
        assert!(request_from_flags(&flags).unwrap().profile);
        assert!(!request_from_flags(&HashMap::new()).unwrap().profile);
    }

    #[test]
    fn trial_flags_override_the_protocol() {
        let mut flags = HashMap::new();
        flags.insert("samples".into(), "7".into());
        flags.insert("budget-runs".into(), "100".into());
        let (cfg, budget) = trials_from_flags(&flags).unwrap();
        assert_eq!(cfg.samples, 7);
        // Unspecified knobs fall back to the robust defaults once any
        // protocol flag is present.
        assert_eq!(cfg.warmup, TrialConfig::default().warmup);
        assert_eq!(cfg.max_retries, TrialConfig::default().max_retries);
        assert_eq!(budget.max_runs, Some(100));
        flags.insert("budget-secs".into(), "nope".into());
        assert!(trials_from_flags(&flags).is_err());
        flags.insert("budget-secs".into(), "-1".into());
        assert!(trials_from_flags(&flags).is_err());
    }
}
