//! Command-line front end helpers for the `yasksite` binary.
//!
//! The binary mirrors the workflows of the original tool's CLI: inspect
//! the built-in machines and stencils, predict or measure a
//! configuration, run the tuner, or dump generated kernel source. All
//! argument parsing lives here so it can be unit-tested.

use std::collections::HashMap;

use yasksite_arch::Machine;
use yasksite_engine::TuningParams;
use yasksite_grid::Fold;
use yasksite_stencil::{builders, paper_suite, Stencil};

/// Parses `"512x8x8"`-style extent triples.
///
/// # Errors
/// Returns a message if the string is not three positive integers joined
/// by `x`.
pub fn parse_triple(s: &str) -> Result<[usize; 3], String> {
    let parts: Vec<&str> = s.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("expected AxBxC, got '{s}'"));
    }
    let mut out = [0usize; 3];
    for (d, p) in parts.iter().enumerate() {
        out[d] = p
            .parse::<usize>()
            .map_err(|_| format!("'{p}' is not a number in '{s}'"))?;
        if out[d] == 0 {
            return Err(format!("extent must be positive in '{s}'"));
        }
    }
    Ok(out)
}

/// Splits `--key value` pairs into a map; returns positional arguments
/// separately.
///
/// # Errors
/// Returns a message if a `--key` has no value.
pub fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key.to_string(), val.clone());
        } else {
            pos.push(a.clone());
        }
    }
    Ok((pos, flags))
}

/// Looks up a stencil by its table name (e.g. `"heat-3d-r1"`,
/// `"box-3d-r2"`, `"star-2d-r2"`, `"heat-3d-vc"`).
#[must_use]
pub fn stencil_by_name(name: &str) -> Option<Stencil> {
    if let Some(s) = paper_suite().into_iter().find(|s| s.name() == name) {
        return Some(s);
    }
    // Parametric families not in the fixed suite.
    let parse_r = |prefix: &str| -> Option<usize> {
        name.strip_prefix(prefix)?.parse().ok()
    };
    if let Some(r) = parse_r("heat-3d-r") {
        return Some(builders::heat3d(r));
    }
    if let Some(r) = parse_r("heat-2d-r") {
        return Some(builders::heat2d(r));
    }
    if let Some(r) = parse_r("box-3d-r") {
        return Some(builders::box3d(r));
    }
    if let Some(r) = parse_r("star-3d-r") {
        return Some(builders::star3d(r, &vec![0.5; r + 1]));
    }
    None
}

/// Builds [`TuningParams`] from parsed flags, defaulting the block to the
/// domain and the fold to the machine's in-line fold.
///
/// # Errors
/// Returns a message on malformed values.
pub fn params_from_flags(
    flags: &HashMap<String, String>,
    domain: [usize; 3],
    machine: &Machine,
) -> Result<TuningParams, String> {
    let block = match flags.get("block") {
        Some(b) => parse_triple(b)?,
        None => domain,
    };
    let fold = match flags.get("fold") {
        Some(f) => {
            let t = parse_triple(f)?;
            Fold::new(t[0], t[1], t[2])
        }
        None => Fold::new(machine.lanes(), 1, 1),
    };
    let cores: usize = flags
        .get("cores")
        .map_or(Ok(1), |c| c.parse().map_err(|_| format!("bad --cores '{c}'")))?;
    let wavefront: usize = flags.get("wavefront").map_or(Ok(1), |w| {
        w.parse().map_err(|_| format!("bad --wavefront '{w}'"))
    })?;
    Ok(TuningParams::new(block, fold)
        .threads(cores.max(1))
        .wavefront(wavefront.max(1))
        .streaming_stores(flags.get("nt-stores").is_some_and(|v| v == "true")))
}

/// Resolves the `--machine` flag (default: `clx`), or loads a custom
/// model from `--machine-file <path>` (see
/// [`yasksite_arch::parse_machine`] for the format).
///
/// # Errors
/// Returns a message for unknown machine names, unreadable files or
/// invalid models.
pub fn machine_from_flags(flags: &HashMap<String, String>) -> Result<Machine, String> {
    if let Some(path) = flags.get("machine-file") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read '{path}': {e}"))?;
        return yasksite_arch::parse_machine(&text).map_err(|e| format!("{path}: {e}"));
    }
    let name = flags.get("machine").map_or("clx", String::as_str);
    Machine::by_short_name(name).ok_or_else(|| format!("unknown machine '{name}' (clx|rome|host)"))
}

/// The usage text of the binary.
pub const USAGE: &str = "\
yasksite — stencil kernel tuning with the ECM performance model

USAGE:
  yasksite machines
  yasksite stencils
  yasksite predict --stencil <name> --domain AxBxC
                   [--machine clx|rome|host | --machine-file <path>]
                   [--block AxBxC] [--fold AxBxC] [--cores N] [--wavefront W]
  yasksite measure  (same flags; runs on the simulated hierarchy, or
                     natively with --machine host)
  yasksite tune     --stencil <name> --domain AxBxC [--machine ...]
                   [--cores N] [--strategy analytic|hybrid|empirical]
  yasksite codegen  (same flags as predict; prints the C kernel source)

Stencil names: heat-3d-r<r>, heat-2d-r<r>, box-3d-r<r>, star-3d-r<r>,
star-2d-r2, wave-2d, heat-3d-vc.";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triples() {
        assert_eq!(parse_triple("512x8x8").unwrap(), [512, 8, 8]);
        assert!(parse_triple("512x8").is_err());
        assert!(parse_triple("ax8x8").is_err());
        assert!(parse_triple("0x8x8").is_err());
    }

    #[test]
    fn flags() {
        let args: Vec<String> = ["predict", "--machine", "rome", "--cores", "8"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let (pos, flags) = parse_flags(&args).unwrap();
        assert_eq!(pos, vec!["predict"]);
        assert_eq!(flags["machine"], "rome");
        assert_eq!(flags["cores"], "8");
        let bad: Vec<String> = ["--machine".to_string()].to_vec();
        assert!(parse_flags(&bad).is_err());
    }

    #[test]
    fn stencil_lookup() {
        assert!(stencil_by_name("heat-3d-r1").is_some());
        assert!(stencil_by_name("heat-3d-r3").is_some());
        assert!(stencil_by_name("box-3d-r2").is_some());
        assert!(stencil_by_name("wave-2d").is_some());
        assert!(stencil_by_name("heat-3d-vc").is_some());
        assert!(stencil_by_name("nope").is_none());
    }

    #[test]
    fn params_defaults_and_overrides() {
        let m = Machine::rome();
        let mut flags = HashMap::new();
        let p = params_from_flags(&flags, [64, 64, 64], &m).unwrap();
        assert_eq!(p.block, [64, 64, 64]);
        assert_eq!(p.fold, Fold::new(4, 1, 1));
        flags.insert("block".into(), "64x8x8".into());
        flags.insert("cores".into(), "16".into());
        flags.insert("wavefront".into(), "4".into());
        let p = params_from_flags(&flags, [64, 64, 64], &m).unwrap();
        assert_eq!(p.block, [64, 8, 8]);
        assert_eq!(p.threads, 16);
        assert_eq!(p.wavefront, 4);
    }

    #[test]
    fn machines_resolve() {
        let mut flags = HashMap::new();
        assert_eq!(machine_from_flags(&flags).unwrap().tag(), "CLX");
        flags.insert("machine".into(), "rome".into());
        assert_eq!(machine_from_flags(&flags).unwrap().tag(), "ROME");
        flags.insert("machine".into(), "m2".into());
        assert!(machine_from_flags(&flags).is_err());
    }
}
