//! YaskSite — the paper's tuning tool, reproduced in Rust.
//!
//! YaskSite wraps a stencil kernel framework (our [`yasksite_engine`])
//! and the ECM analytic performance model ([`yasksite_ecm`]) behind one
//! interface that can
//!
//! 1. enumerate the tuning-parameter space of a kernel (spatial blocks,
//!    vector folds, wavefront depth, core counts) — [`SearchSpace`];
//! 2. **predict** the performance of any point in that space analytically,
//!    without running anything — [`Solution::predict`];
//! 3. **measure** any point, natively on the host or on the simulated
//!    Cascade Lake / Rome hierarchies — [`Solution::measure`];
//! 4. select the best configuration by analytic ranking, empirical
//!    search, or the hybrid of both, with full cost accounting, on a
//!    deterministic parallel engine with a memoized prediction cache —
//!    [`Solution::tune_with`]; and
//! 5. emit the corresponding kernel source — [`Solution::codegen`].
//!
//! External tuners (the Offsite reproduction in the `offsite` crate) use
//! exactly this interface, mirroring the paper's YaskSite↔Offsite
//! integration.
//!
//! # Examples
//!
//! The canonical entry point is [`Solution::tune_with`], driven by a
//! builder-style [`TuneRequest`]:
//!
//! ```
//! use yasksite::{Solution, TuneRequest, TuneStrategy};
//! use yasksite_arch::Machine;
//! use yasksite_stencil::builders::heat3d;
//!
//! let sol = Solution::new(heat3d(1), [128, 64, 64], Machine::cascade_lake());
//! let req = TuneRequest::new(TuneStrategy::Analytic).cores(4).jobs(2);
//! let result = sol.tune_with(&req)?;
//! assert!(result.best_score > 0.0);
//! assert!(result.cost.engine_runs == 0); // analytic tuning runs nothing
//! // The same request with any other `jobs` value returns a
//! // bitwise-identical winner and ranking.
//! # Ok::<(), yasksite::ToolError>(())
//! ```
//!
//! The legacy `sol.tune(TuneStrategy::Analytic, 4)` form still works as a
//! thin wrapper over the same engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

mod cache;
mod calibrate;
mod cost;
mod drift;
mod online;
mod persist;
mod predict;
mod report;
mod request;
mod serve;
mod solution;
mod space;
mod status;
mod trial;
mod tuner;

pub use cache::{PredictKey, PredictionCache};
pub use calibrate::{
    calibrate, check_calibration, today_utc, CalibrateConfig, CalibrationCheck, CalibrationOutcome,
    PROBE_NAMES,
};
pub use cost::TuneCost;
pub use drift::{DriftLedger, DriftRecord};
pub use online::{KeyCorrection, OnlineTuner};
pub use persist::{
    crc32, decode_drift, decode_journal, decode_prediction, encode_drift, encode_prediction, frame,
    journal_header, AbsorbStats, FaultyMedium, FileMedium, Journal, JournalKind, JournalMedium,
    MemMedium, PersistentStore, PredictionRecord, RecoveryEvent, RecoveryReport, WarmStats,
    JOURNAL_VERSION, MAX_RECORD_BYTES,
};
pub use predict::{predict_params, predict_params_resident, PredictedPerf};
pub use report::render_report;
pub use request::{TuneRequest, JOBS_ENV};
#[cfg(unix)]
pub use serve::serve_unix;
pub use serve::{
    overload_response, serve, serve_stdin, shutdown_flag, ServeConfig, ServeState, ServeStats,
    CALIBRATED_MACHINE_FILE,
};
pub use solution::{MeasuredPerf, Solution, ToolError};
pub use space::SearchSpace;
pub use status::{
    render_top, validate_prometheus_text, validate_status_json, CalibrationStatus, LatencyDigest,
    StatusCheck, StatusSnapshot, TenantUsage, PROM_CONTENT_TYPE, STATUS_SCHEMA_VERSION,
};
pub use trial::{
    run_trial, run_trial_observed, FallbackReason, FaultPlan, FaultyBackend, MeasureBackend,
    Provenance, SolutionBackend, TrialBudget, TrialConfig, TrialResult, TrialRng, TrialSummary,
};
pub use tuner::{TuneResult, TuneStrategy};

/// The in-tree observability layer: re-exported so downstream users need
/// only the `yasksite` dependency to build a [`yasksite_telemetry::Telemetry`]
/// handle for [`TuneRequest::telemetry`].
pub use yasksite_telemetry as telemetry;
