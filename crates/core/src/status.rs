//! Daemon status snapshots: schema-v1 JSON, the Prometheus text
//! exposition, `trace_check`-style validators, and the `yasksite top`
//! terminal rendering.
//!
//! [`StatusSnapshot`] is plain data the daemon assembles from its
//! rolling windows ([`yasksite_telemetry::RollingHistogram`]) and
//! lifetime counters. Everything downstream — the `status` protocol
//! response, the `status.json` file dropped into the state directory,
//! the Prometheus exposition, the `yasksite top` view and the CI
//! validators — renders from this one struct, so the JSON and
//! Prometheus forms can never disagree about the numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use yasksite_telemetry::json::{write_escaped, write_f64, Json};
use yasksite_telemetry::sanitize_metric_name;

/// Version of the `status` snapshot schema. Bumped whenever a field is
/// removed or changes meaning; additions are backwards-compatible.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// Content type of the Prometheus text exposition the daemon emits.
pub const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Rolling-window latency digest of one request kind (or one tenant):
/// sample count, sum and interpolated percentiles, all in milliseconds
/// over the snapshot's window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyDigest {
    /// Observations inside the window.
    pub count: u64,
    /// Sum of the observations (milliseconds).
    pub sum: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

impl LatencyDigest {
    /// Mean latency over the window (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One tenant's lifetime consumption, for the budget-burn column of
/// `yasksite top`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TenantUsage {
    /// Measurement runs charged so far.
    pub runs: usize,
    /// Target seconds charged so far.
    pub seconds: f64,
}

/// Calibration provenance of the machine model a daemon serves with,
/// lifted from the model's [`yasksite_arch::CalibrationProvenance`]
/// block plus the age of the calibrated machine file.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationStatus {
    /// Calibrator revision that produced the model.
    pub rev: String,
    /// Seed of the calibration run.
    pub seed: u64,
    /// UTC date of the calibration run, `YYYY-MM-DD`.
    pub date: String,
    /// Micro-benchmark probes the provenance block carries.
    pub probes: usize,
    /// Seconds since the calibrated machine file was written.
    pub age_secs: f64,
}

/// Point-in-time view of a running daemon: lifetime counters plus
/// rolling-window latency digests. Produced by
/// [`crate::ServeState::status_snapshot`], rendered by
/// [`StatusSnapshot::to_json_response`] and
/// [`StatusSnapshot::to_prometheus`].
#[derive(Debug, Clone, Default)]
pub struct StatusSnapshot {
    /// Seconds since the daemon state was built.
    pub uptime_secs: f64,
    /// Width of the rolling window the latency digests cover.
    pub window_secs: f64,
    /// Requests accepted but not yet processed.
    pub queue_depth: usize,
    /// Bound on the request queue.
    pub queue_capacity: usize,
    /// Requests that reached the protocol handler.
    pub received: usize,
    /// Requests answered `"ok":true`.
    pub completed: usize,
    /// Requests rejected because the queue was full.
    pub rejected_overload: usize,
    /// Requests rejected by tenant admission control.
    pub rejected_budget: usize,
    /// Requests answered `"ok":false` for any other reason.
    pub rejected_bad: usize,
    /// Sessions degraded to analytic after a worker panic.
    pub degraded: usize,
    /// Journal appends or snapshots that failed.
    pub persist_errors: usize,
    /// Requests per second over the rolling window.
    pub rate_per_sec: f64,
    /// Entries in the shared prediction cache.
    pub cache_entries: usize,
    /// Records in the daemon's drift ledger.
    pub drift_records: usize,
    /// Stencils the ledger flags model-SUSPECT.
    pub drift_suspects: usize,
    /// Drift records evicted by the bounded ledger.
    pub drift_evictions: usize,
    /// Drift-ledger keys currently SUSPECT and therefore carrying a
    /// fitted model correction (see
    /// [`crate::DriftLedger::per_key_corrections`]).
    pub corrected_keys: usize,
    /// Calibration provenance of the served machine model (`None` when
    /// the daemon runs on a builtin, uncalibrated model).
    pub calibration: Option<CalibrationStatus>,
    /// Distinct tenants served.
    pub tenants: usize,
    /// Head-sampling budget (`--trace-sample`); `None` traces everything.
    pub trace_sample: Option<u64>,
    /// Queue-wait digest per request kind.
    pub queue_wait_ms: BTreeMap<String, LatencyDigest>,
    /// Service-time digest per request kind.
    pub service_ms: BTreeMap<String, LatencyDigest>,
    /// End-to-end (queue wait + service) digest per request kind.
    pub e2e_ms: BTreeMap<String, LatencyDigest>,
    /// End-to-end digest per tenant (tune requests only).
    pub tenant_e2e_ms: BTreeMap<String, LatencyDigest>,
    /// Tuning sessions per winning execution tier.
    pub tier_ran: BTreeMap<String, u64>,
    /// Tuning sessions whose winner ran degraded, keyed by the planner's
    /// reason string.
    pub tier_degraded: BTreeMap<String, u64>,
    /// Lifetime budget burn per tenant.
    pub tenant_use: BTreeMap<String, TenantUsage>,
    /// Worker threads of the shared execution pool.
    pub pool_workers: usize,
    /// Batches the pool has dispatched.
    pub pool_sweeps: u64,
    /// Jobs the pool workers have executed.
    pub pool_jobs: u64,
    /// Whether the persistent store is healthy (`None` when serving from
    /// memory only).
    pub store_healthy: Option<bool>,
}

fn push_uint(out: &mut String, key: &str, v: u64) {
    out.push(',');
    write_escaped(out, key);
    out.push(':');
    let _ = write!(out, "{v}");
}

fn push_num(out: &mut String, key: &str, v: f64) {
    out.push(',');
    write_escaped(out, key);
    out.push(':');
    write_f64(out, v);
}

fn push_digest_map(out: &mut String, key: &str, map: &BTreeMap<String, LatencyDigest>) {
    out.push(',');
    write_escaped(out, key);
    out.push_str(":{");
    for (i, (kind, d)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, kind);
        out.push_str(":{\"count\":");
        let _ = write!(out, "{}", d.count);
        out.push_str(",\"p50\":");
        write_f64(out, d.p50);
        out.push_str(",\"p95\":");
        write_f64(out, d.p95);
        out.push_str(",\"p99\":");
        write_f64(out, d.p99);
        out.push_str(",\"mean\":");
        write_f64(out, d.mean());
        out.push('}');
    }
    out.push('}');
}

fn push_count_map(out: &mut String, key: &str, map: &BTreeMap<String, u64>) {
    out.push(',');
    write_escaped(out, key);
    out.push_str(":{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(out, k);
        out.push(':');
        let _ = write!(out, "{v}");
    }
    out.push('}');
}

impl StatusSnapshot {
    /// Renders the complete schema-v1 `status` response line (also the
    /// body of the `status.json` file in the state directory).
    #[must_use]
    pub fn to_json_response(&self, id: &str) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"id\":");
        write_escaped(&mut out, id);
        out.push_str(",\"ok\":true,\"op\":\"status\"");
        push_uint(&mut out, "schema", STATUS_SCHEMA_VERSION);
        push_num(&mut out, "uptime_secs", self.uptime_secs);
        push_num(&mut out, "window_secs", self.window_secs);
        push_uint(&mut out, "queue_depth", self.queue_depth as u64);
        push_uint(&mut out, "queue_capacity", self.queue_capacity as u64);
        push_uint(&mut out, "received", self.received as u64);
        push_uint(&mut out, "completed", self.completed as u64);
        push_uint(&mut out, "rejected_overload", self.rejected_overload as u64);
        push_uint(&mut out, "rejected_budget", self.rejected_budget as u64);
        push_uint(&mut out, "rejected_bad", self.rejected_bad as u64);
        push_uint(&mut out, "degraded", self.degraded as u64);
        push_uint(&mut out, "persist_errors", self.persist_errors as u64);
        push_num(&mut out, "rate_per_sec", self.rate_per_sec);
        push_uint(&mut out, "cache_entries", self.cache_entries as u64);
        push_uint(&mut out, "drift_records", self.drift_records as u64);
        push_uint(&mut out, "drift_suspects", self.drift_suspects as u64);
        push_uint(&mut out, "drift_evictions", self.drift_evictions as u64);
        push_uint(&mut out, "corrected_keys", self.corrected_keys as u64);
        push_uint(&mut out, "tenants", self.tenants as u64);
        if let Some(n) = self.trace_sample {
            push_uint(&mut out, "trace_sample", n);
        }
        push_digest_map(&mut out, "queue_wait_ms", &self.queue_wait_ms);
        push_digest_map(&mut out, "service_ms", &self.service_ms);
        push_digest_map(&mut out, "latency_ms", &self.e2e_ms);
        push_digest_map(&mut out, "tenant_latency_ms", &self.tenant_e2e_ms);
        push_count_map(&mut out, "tier_ran", &self.tier_ran);
        push_count_map(&mut out, "tier_degraded", &self.tier_degraded);
        out.push_str(",\"tenant_use\":{");
        for (i, (t, u)) in self.tenant_use.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(&mut out, t);
            out.push_str(":{\"runs\":");
            let _ = write!(out, "{}", u.runs);
            out.push_str(",\"seconds\":");
            write_f64(&mut out, u.seconds);
            out.push('}');
        }
        out.push('}');
        out.push_str(",\"pool\":{\"workers\":");
        let _ = write!(out, "{}", self.pool_workers);
        out.push_str(",\"sweeps\":");
        let _ = write!(out, "{}", self.pool_sweeps);
        out.push_str(",\"jobs\":");
        let _ = write!(out, "{}", self.pool_jobs);
        out.push('}');
        if let Some(c) = &self.calibration {
            out.push_str(",\"calibration\":{\"rev\":");
            write_escaped(&mut out, &c.rev);
            out.push_str(",\"seed\":");
            let _ = write!(out, "{}", c.seed);
            out.push_str(",\"date\":");
            write_escaped(&mut out, &c.date);
            out.push_str(",\"probes\":");
            let _ = write!(out, "{}", c.probes);
            out.push_str(",\"age_secs\":");
            write_f64(&mut out, c.age_secs);
            out.push('}');
        }
        if let Some(h) = self.store_healthy {
            out.push_str(",\"store_healthy\":");
            out.push_str(if h { "true" } else { "false" });
        }
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (content type [`PROM_CONTENT_TYPE`]): counters and gauges for the
    /// lifetime numbers, one `summary` family per latency digest with
    /// `kind`/`tenant` labels, and labelled tier-mix counters.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let gauge = |out: &mut String, name: &str, v: f64| {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = write!(out, "{n} ");
            if v.is_finite() {
                let _ = writeln!(out, "{v}");
            } else {
                let _ = writeln!(out, "0");
            }
        };
        let counter = |out: &mut String, name: &str, v: u64| {
            let n = sanitize_metric_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        };
        gauge(&mut out, "yasksite_up", 1.0);
        gauge(&mut out, "yasksite_uptime_seconds", self.uptime_secs);
        gauge(&mut out, "yasksite_status_window_seconds", self.window_secs);
        gauge(&mut out, "yasksite_queue_depth", self.queue_depth as f64);
        gauge(
            &mut out,
            "yasksite_queue_capacity",
            self.queue_capacity as f64,
        );
        counter(
            &mut out,
            "yasksite_requests_received_total",
            self.received as u64,
        );
        counter(
            &mut out,
            "yasksite_requests_completed_total",
            self.completed as u64,
        );
        counter(
            &mut out,
            "yasksite_requests_rejected_overload_total",
            self.rejected_overload as u64,
        );
        counter(
            &mut out,
            "yasksite_requests_rejected_budget_total",
            self.rejected_budget as u64,
        );
        counter(
            &mut out,
            "yasksite_requests_rejected_bad_total",
            self.rejected_bad as u64,
        );
        counter(
            &mut out,
            "yasksite_sessions_degraded_total",
            self.degraded as u64,
        );
        counter(
            &mut out,
            "yasksite_persist_errors_total",
            self.persist_errors as u64,
        );
        gauge(
            &mut out,
            "yasksite_request_rate_per_second",
            self.rate_per_sec,
        );
        gauge(
            &mut out,
            "yasksite_cache_entries",
            self.cache_entries as f64,
        );
        gauge(
            &mut out,
            "yasksite_drift_records",
            self.drift_records as f64,
        );
        gauge(
            &mut out,
            "yasksite_drift_suspects",
            self.drift_suspects as f64,
        );
        counter(
            &mut out,
            "yasksite_drift_evictions_total",
            self.drift_evictions as u64,
        );
        gauge(
            &mut out,
            "yasksite_corrected_keys",
            self.corrected_keys as f64,
        );
        if let Some(c) = &self.calibration {
            gauge(&mut out, "yasksite_calibration_age_seconds", c.age_secs);
            gauge(&mut out, "yasksite_calibration_probes", c.probes as f64);
            let _ = writeln!(out, "# TYPE yasksite_calibration_info gauge");
            let _ = writeln!(
                out,
                "yasksite_calibration_info{{rev=\"{}\",seed=\"{}\",date=\"{}\"}} 1",
                escape_label(&c.rev),
                c.seed,
                escape_label(&c.date),
            );
        }
        gauge(&mut out, "yasksite_tenants", self.tenants as f64);
        gauge(&mut out, "yasksite_pool_workers", self.pool_workers as f64);
        counter(&mut out, "yasksite_pool_sweeps_total", self.pool_sweeps);
        counter(&mut out, "yasksite_pool_jobs_total", self.pool_jobs);
        push_summary_family(
            &mut out,
            "yasksite_queue_wait_ms",
            "kind",
            &self.queue_wait_ms,
        );
        push_summary_family(&mut out, "yasksite_service_ms", "kind", &self.service_ms);
        push_summary_family(
            &mut out,
            "yasksite_request_latency_ms",
            "kind",
            &self.e2e_ms,
        );
        push_summary_family(
            &mut out,
            "yasksite_tenant_latency_ms",
            "tenant",
            &self.tenant_e2e_ms,
        );
        push_labelled_counters(&mut out, "yasksite_tier_ran_total", "tier", &self.tier_ran);
        push_labelled_counters(
            &mut out,
            "yasksite_tier_degraded_total",
            "reason",
            &self.tier_degraded,
        );
        out
    }
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn push_summary_family(
    out: &mut String,
    name: &str,
    label: &str,
    map: &BTreeMap<String, LatencyDigest>,
) {
    if map.is_empty() {
        return;
    }
    let _ = writeln!(out, "# TYPE {name} summary");
    for (key, d) in map {
        let k = escape_label(key);
        for (q, v) in [("0.5", d.p50), ("0.95", d.p95), ("0.99", d.p99)] {
            let _ = writeln!(out, "{name}{{{label}=\"{k}\",quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{name}_sum{{{label}=\"{k}\"}} {}", d.sum);
        let _ = writeln!(out, "{name}_count{{{label}=\"{k}\"}} {}", d.count);
    }
}

fn push_labelled_counters(out: &mut String, name: &str, label: &str, map: &BTreeMap<String, u64>) {
    if map.is_empty() {
        return;
    }
    let _ = writeln!(out, "# TYPE {name} counter");
    for (key, v) in map {
        let _ = writeln!(out, "{name}{{{label}=\"{}\"}} {v}", escape_label(key));
    }
}

// ---------------------------------------------------------------------------
// Validators (the `trace_check` analogue for the status surface)
// ---------------------------------------------------------------------------

/// What [`validate_status_json`] verified, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCheck {
    /// Request kinds carrying a latency digest.
    pub kinds: usize,
    /// Total latency observations across kinds (rolling window).
    pub latency_samples: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Drift-SUSPECT stencil count at snapshot time.
    pub drift_suspects: u64,
}

fn require_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("status: '{key}' missing or not a non-negative integer"))
}

fn require_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("status: '{key}' missing or not a number"))
}

/// Validates a parsed schema-v1 `status` snapshot: the envelope, the
/// required counters, and — for every kind with samples — that the
/// percentiles are finite and monotone (`p50 ≤ p95 ≤ p99`).
///
/// # Errors
/// A human-readable message naming the first violated invariant.
pub fn validate_status_json(j: &Json) -> Result<StatusCheck, String> {
    if j.get("ok") != Some(&Json::Bool(true)) {
        return Err("status: 'ok' is not true".into());
    }
    if j.get("op").and_then(Json::as_str) != Some("status") {
        return Err("status: 'op' is not \"status\"".into());
    }
    let schema = require_u64(j, "schema")?;
    if schema != STATUS_SCHEMA_VERSION {
        return Err(format!(
            "status: schema {schema} (this tool understands {STATUS_SCHEMA_VERSION})"
        ));
    }
    let uptime = require_f64(j, "uptime_secs")?;
    if !uptime.is_finite() || uptime < 0.0 {
        return Err("status: negative uptime".into());
    }
    let window = require_f64(j, "window_secs")?;
    if !window.is_finite() || window <= 0.0 {
        return Err("status: non-positive window".into());
    }
    let queue_depth = require_u64(j, "queue_depth")?;
    let capacity = require_u64(j, "queue_capacity")?;
    if capacity == 0 {
        return Err("status: zero queue capacity".into());
    }
    for key in [
        "received",
        "completed",
        "rejected_overload",
        "rejected_budget",
        "rejected_bad",
        "degraded",
        "persist_errors",
        "cache_entries",
        "drift_records",
        "drift_evictions",
        "tenants",
    ] {
        require_u64(j, key)?;
    }
    let drift_suspects = require_u64(j, "drift_suspects")?;
    // Additions past the original v1 surface stay optional so older
    // snapshots on disk keep validating; when present they must be
    // well-formed.
    if j.get("corrected_keys").is_some() {
        require_u64(j, "corrected_keys")?;
    }
    if let Some(c) = j.get("calibration") {
        if !matches!(c, Json::Obj(_)) {
            return Err("status: 'calibration' is not an object".into());
        }
        for key in ["rev", "date"] {
            if c.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("status: calibration.{key} missing or not a string"));
            }
        }
        require_u64(c, "seed").map_err(|e| format!("calibration: {e}"))?;
        require_u64(c, "probes").map_err(|e| format!("calibration: {e}"))?;
        let age = require_f64(c, "age_secs").map_err(|e| format!("calibration: {e}"))?;
        if !age.is_finite() || age < 0.0 {
            return Err("status: calibration age_secs is not a finite non-negative number".into());
        }
    }
    let rate = require_f64(j, "rate_per_sec")?;
    if !rate.is_finite() || rate < 0.0 {
        return Err("status: bad rate_per_sec".into());
    }
    let mut kinds = 0usize;
    let mut samples = 0u64;
    for map_key in [
        "queue_wait_ms",
        "service_ms",
        "latency_ms",
        "tenant_latency_ms",
    ] {
        let Some(Json::Obj(members)) = j.get(map_key) else {
            return Err(format!("status: '{map_key}' missing or not an object"));
        };
        for (kind, digest) in members {
            let count =
                require_u64(digest, "count").map_err(|e| format!("{map_key}.{kind}: {e}"))?;
            if count == 0 {
                continue;
            }
            let p50 = require_f64(digest, "p50").map_err(|e| format!("{map_key}.{kind}: {e}"))?;
            let p95 = require_f64(digest, "p95").map_err(|e| format!("{map_key}.{kind}: {e}"))?;
            let p99 = require_f64(digest, "p99").map_err(|e| format!("{map_key}.{kind}: {e}"))?;
            if !(p50.is_finite() && p95.is_finite() && p99.is_finite()) {
                return Err(format!(
                    "status: {map_key}.{kind} has non-finite percentiles"
                ));
            }
            if p50 > p95 || p95 > p99 {
                return Err(format!(
                    "status: {map_key}.{kind} percentiles not monotone ({p50} / {p95} / {p99})"
                ));
            }
            if map_key == "latency_ms" {
                kinds += 1;
                samples += count;
            }
        }
    }
    for map_key in ["tier_ran", "tier_degraded"] {
        if !matches!(j.get(map_key), Some(Json::Obj(_))) {
            return Err(format!("status: '{map_key}' missing or not an object"));
        }
    }
    Ok(StatusCheck {
        kinds,
        latency_samples: samples,
        queue_depth,
        drift_suspects,
    })
}

/// Validates a Prometheus text exposition: every non-comment line must
/// be `name[{labels}] value`, names must use the Prometheus charset,
/// every sample's family must have a preceding `# TYPE` header with a
/// known kind, and label values must be well-formed quoted strings.
/// Returns the number of sample lines.
///
/// # Errors
/// A message naming the offending line (1-based) and why it is invalid.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                let kind = it
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown TYPE kind '{kind}'"));
                }
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid metric name '{name}'"));
                }
                typed.insert(name.to_string(), kind.to_string());
            }
            continue; // other comments (e.g. HELP) are fine
        }
        let (name, rest) = split_name(line)
            .ok_or_else(|| format!("line {lineno}: sample does not start with a metric name"))?;
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: invalid metric name '{name}'"));
        }
        let rest = rest.trim_start();
        let value_part = if let Some(after) = rest.strip_prefix('{') {
            let close = find_label_end(after)
                .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
            validate_labels(&after[..close]).map_err(|e| format!("line {lineno}: {e}"))?;
            after[close + 1..].trim_start()
        } else {
            rest
        };
        let value = value_part.split_whitespace().next().unwrap_or("");
        let ok_value = value.parse::<f64>().is_ok()
            || matches!(value, "+Inf" | "-Inf" | "NaN" | "Nan" | "nan");
        if !ok_value {
            return Err(format!("line {lineno}: unparsable sample value '{value}'"));
        }
        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .or_else(|| name.strip_suffix("_bucket"))
            .filter(|f| typed.contains_key(*f))
            .unwrap_or(name);
        if !typed.contains_key(family) {
            return Err(format!(
                "line {lineno}: sample '{name}' has no preceding # TYPE header"
            ));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition contains no samples".into());
    }
    Ok(samples)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `line` at the end of its leading metric name.
fn split_name(line: &str) -> Option<(&str, &str)> {
    let end = line
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .map_or(line.len(), |(i, _)| i);
    if end == 0 {
        return None;
    }
    Some((&line[..end], &line[end..]))
}

/// Index of the unescaped `}` closing a label set (input starts just
/// after `{`).
fn find_label_end(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn validate_labels(body: &str) -> Result<(), String> {
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair without '=': '{rest}'"))?;
        let key = rest[..eq].trim();
        if key.is_empty() || !valid_metric_name(key) {
            return Err(format!("invalid label name '{key}'"));
        }
        let after = rest[eq + 1..].trim_start();
        let inner = after
            .strip_prefix('"')
            .ok_or_else(|| format!("label '{key}' value is not quoted"))?;
        let mut escaped = false;
        let mut close = None;
        for (i, c) in inner.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let close = close.ok_or_else(|| format!("label '{key}' value is unterminated"))?;
        rest = inner[close + 1..]
            .trim_start()
            .trim_start_matches(',')
            .trim_start();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// `yasksite top` rendering
// ---------------------------------------------------------------------------

fn opt_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn opt_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn digest_rows(j: &Json, key: &str) -> Vec<(String, u64, f64, f64, f64)> {
    let mut rows = Vec::new();
    if let Some(Json::Obj(members)) = j.get(key) {
        for (kind, d) in members {
            rows.push((
                kind.clone(),
                opt_u64(d, "count"),
                opt_f64(d, "p50"),
                opt_f64(d, "p95"),
                opt_f64(d, "p99"),
            ));
        }
    }
    rows
}

/// Renders one `yasksite top` frame from a parsed status snapshot.
/// `source` names where the snapshot came from (socket path or state
/// directory) for the header line.
#[must_use]
pub fn render_top(j: &Json, source: &str) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "yasksite daemon [{source}] — up {:.1}s, window {:.0}s",
        opt_f64(j, "uptime_secs"),
        opt_f64(j, "window_secs"),
    );
    let _ = writeln!(
        out,
        "requests: {} received, {} ok, {} overloaded, {} budget-rejected, {} bad, {} degraded | {:.2} req/s",
        opt_u64(j, "received"),
        opt_u64(j, "completed"),
        opt_u64(j, "rejected_overload"),
        opt_u64(j, "rejected_budget"),
        opt_u64(j, "rejected_bad"),
        opt_u64(j, "degraded"),
        opt_f64(j, "rate_per_sec"),
    );
    let pool = j.get("pool").cloned().unwrap_or(Json::Null);
    let _ = writeln!(
        out,
        "queue {}/{} | pool {} workers / {} jobs | cache {} | drift {} records, SUSPECT {}, {} corrected | persist errors {}",
        opt_u64(j, "queue_depth"),
        opt_u64(j, "queue_capacity"),
        opt_u64(&pool, "workers"),
        opt_u64(&pool, "jobs"),
        opt_u64(j, "cache_entries"),
        opt_u64(j, "drift_records"),
        opt_u64(j, "drift_suspects"),
        opt_u64(j, "corrected_keys"),
        opt_u64(j, "persist_errors"),
    );
    if let Some(c) = j.get("calibration") {
        let _ = writeln!(
            out,
            "calibration: rev {} seed {} ({}), {} probes, age {:.0}s",
            c.get("rev").and_then(Json::as_str).unwrap_or("?"),
            opt_u64(c, "seed"),
            c.get("date").and_then(Json::as_str).unwrap_or("?"),
            opt_u64(c, "probes"),
            opt_f64(c, "age_secs"),
        );
    }
    let lat = digest_rows(j, "latency_ms");
    if lat.is_empty() {
        let _ = writeln!(out, "latency: no samples in window");
    } else {
        let _ = writeln!(
            out,
            "{:<10} {:>7} {:>9} {:>9} {:>9}",
            "latency ms", "count", "p50", "p95", "p99"
        );
        for (kind, count, p50, p95, p99) in &lat {
            let _ = writeln!(
                out,
                "{kind:<10} {count:>7} {p50:>9.2} {p95:>9.2} {p99:>9.2}"
            );
        }
    }
    let waits = digest_rows(j, "queue_wait_ms");
    for (kind, count, p50, p95, p99) in &waits {
        let _ = writeln!(
            out,
            "wait {kind:<8} {count:>5} samples, p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms"
        );
    }
    if let Some(Json::Obj(tiers)) = j.get("tier_ran") {
        if !tiers.is_empty() {
            let mix: Vec<String> = tiers
                .iter()
                .map(|(t, n)| format!("{t} {}", n.as_u64().unwrap_or(0)))
                .collect();
            let _ = writeln!(out, "tiers: {}", mix.join(" | "));
        }
    }
    if let Some(Json::Obj(reasons)) = j.get("tier_degraded") {
        for (reason, n) in reasons {
            let _ = writeln!(out, "degraded x{}: {reason}", n.as_u64().unwrap_or(0));
        }
    }
    if let Some(Json::Obj(tenants)) = j.get("tenant_use") {
        for (tenant, u) in tenants {
            let _ = writeln!(
                out,
                "tenant {tenant}: {} runs, {:.3}s target time",
                opt_u64(u, "runs"),
                opt_f64(u, "seconds"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_telemetry::json::parse;

    fn sample_snapshot() -> StatusSnapshot {
        let digest = LatencyDigest {
            count: 3,
            sum: 45.0,
            p50: 10.0,
            p95: 19.0,
            p99: 19.8,
        };
        let mut s = StatusSnapshot {
            uptime_secs: 12.5,
            window_secs: 60.0,
            queue_depth: 1,
            queue_capacity: 16,
            received: 5,
            completed: 4,
            rejected_bad: 1,
            rate_per_sec: 0.4,
            cache_entries: 42,
            drift_records: 3,
            drift_suspects: 1,
            corrected_keys: 1,
            calibration: Some(CalibrationStatus {
                rev: "0.1.0".into(),
                seed: 42,
                date: "2026-08-09".into(),
                probes: 7,
                age_secs: 90.0,
            }),
            tenants: 1,
            trace_sample: Some(64),
            pool_workers: 4,
            pool_sweeps: 7,
            pool_jobs: 28,
            store_healthy: Some(true),
            ..StatusSnapshot::default()
        };
        s.e2e_ms.insert("tune".into(), digest);
        s.queue_wait_ms.insert("tune".into(), digest);
        s.service_ms.insert("tune".into(), digest);
        s.tenant_e2e_ms.insert("ci".into(), digest);
        s.tier_ran.insert("folded".into(), 3);
        s.tier_degraded.insert(
            "fold.x has no supported lane count: scalar row kernels".into(),
            1,
        );
        s.tenant_use.insert(
            "ci".into(),
            TenantUsage {
                runs: 4,
                seconds: 0.25,
            },
        );
        s
    }

    #[test]
    fn json_response_round_trips_and_validates() {
        let snap = sample_snapshot();
        let line = snap.to_json_response("s1");
        let j = parse(&line).expect("snapshot renders valid JSON");
        assert_eq!(j.get("id").and_then(Json::as_str), Some("s1"));
        assert_eq!(j.get("schema").and_then(Json::as_u64), Some(1));
        let check = validate_status_json(&j).expect("snapshot validates");
        assert_eq!(check.kinds, 1);
        assert_eq!(check.latency_samples, 3);
        assert_eq!(check.queue_depth, 1);
        assert_eq!(check.drift_suspects, 1);
        assert_eq!(j.get("corrected_keys").and_then(Json::as_u64), Some(1));
        let cal = j.get("calibration").expect("calibration block present");
        assert_eq!(cal.get("rev").and_then(Json::as_str), Some("0.1.0"));
        assert_eq!(cal.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(cal.get("probes").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn validator_accepts_snapshots_without_the_calibration_extras() {
        // Older daemons never wrote `corrected_keys` / `calibration`;
        // their status.json files must keep validating.
        let mut snap = sample_snapshot();
        snap.corrected_keys = 0;
        snap.calibration = None;
        let line = snap.to_json_response("old");
        let stripped = line.replace(",\"corrected_keys\":0", "");
        assert!(!stripped.contains("corrected_keys"));
        assert!(!stripped.contains("calibration"));
        let j = parse(&stripped).unwrap();
        validate_status_json(&j).expect("pre-calibration snapshots still validate");
    }

    #[test]
    fn validator_rejects_broken_snapshots() {
        let j = parse(r#"{"ok":true,"op":"status"}"#).unwrap();
        assert!(validate_status_json(&j).unwrap_err().contains("schema"));
        let mut snap = sample_snapshot();
        snap.e2e_ms.insert(
            "bad".into(),
            LatencyDigest {
                count: 2,
                sum: 10.0,
                p50: 9.0,
                p95: 5.0, // not monotone
                p99: 6.0,
            },
        );
        let j = parse(&snap.to_json_response("x")).unwrap();
        assert!(validate_status_json(&j)
            .unwrap_err()
            .contains("not monotone"));
        // A calibration block that is not an object is rejected.
        let j = parse(
            r#"{"ok":true,"op":"status","schema":1,"uptime_secs":1,"window_secs":60,
                "queue_depth":0,"queue_capacity":8,"received":0,"completed":0,
                "rejected_overload":0,"rejected_budget":0,"rejected_bad":0,
                "degraded":0,"persist_errors":0,"cache_entries":0,"drift_records":0,
                "drift_suspects":0,"drift_evictions":0,"tenants":0,"rate_per_sec":0,
                "calibration":7,
                "queue_wait_ms":{},"service_ms":{},"latency_ms":{},
                "tenant_latency_ms":{},"tier_ran":{},"tier_degraded":{}}"#,
        )
        .unwrap();
        assert!(validate_status_json(&j)
            .unwrap_err()
            .contains("'calibration' is not an object"));
    }

    #[test]
    fn prometheus_exposition_validates_and_carries_the_key_series() {
        let text = sample_snapshot().to_prometheus();
        let samples = validate_prometheus_text(&text).expect("exposition is well-formed");
        assert!(samples > 20, "expected a rich exposition, got {samples}");
        assert!(text.contains("yasksite_queue_depth 1"));
        assert!(text.contains("yasksite_drift_suspects 1"));
        assert!(text.contains("yasksite_corrected_keys 1"));
        assert!(text.contains("yasksite_calibration_age_seconds 90"));
        assert!(text.contains("yasksite_calibration_probes 7"));
        assert!(text.contains(
            "yasksite_calibration_info{rev=\"0.1.0\",seed=\"42\",date=\"2026-08-09\"} 1"
        ));
        assert!(text.contains("yasksite_tier_ran_total{tier=\"folded\"} 3"));
        assert!(text.contains("yasksite_request_latency_ms{kind=\"tune\",quantile=\"0.5\"} 10"));
        assert!(text.contains("# TYPE yasksite_request_latency_ms summary"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_text() {
        assert!(validate_prometheus_text("").is_err());
        assert!(validate_prometheus_text("no_type_header 1\n")
            .unwrap_err()
            .contains("no preceding # TYPE"));
        assert!(validate_prometheus_text("# TYPE x counter\nx notanumber\n")
            .unwrap_err()
            .contains("unparsable"));
        assert!(
            validate_prometheus_text("# TYPE x counter\nx{le=\"unterminated} 1\n")
                .unwrap_err()
                .contains("unterminated")
        );
        // Escaped quotes inside label values are accepted.
        let ok = "# TYPE x counter\nx{reason=\"a \\\"quoted\\\" bit\"} 3\n";
        assert_eq!(validate_prometheus_text(ok), Ok(1));
    }

    #[test]
    fn top_rendering_covers_the_dashboard_lines() {
        let j = parse(&sample_snapshot().to_json_response("t")).unwrap();
        let view = render_top(&j, "state-dir");
        assert!(view.contains("yasksite daemon [state-dir]"));
        assert!(view.contains("queue 1/16"));
        assert!(view.contains("SUSPECT 1, 1 corrected"));
        assert!(view.contains("calibration: rev 0.1.0 seed 42 (2026-08-09), 7 probes, age 90s"));
        assert!(view.contains("tune"));
        assert!(view.contains("tiers: folded 3"));
        assert!(view.contains("tenant ci: 4 runs"));
    }
}
