//! The `Solution` object: one stencil bound to a domain and a machine.

use std::fmt;

use yasksite_arch::{Machine, MachineFileError, MachineKind};
use yasksite_engine::{
    apply_simulated, codegen, plan_tier_with, run_wavefront_simulated, CodegenOutput, EngineError,
    ExecPool, ProfileReport, SimContext, SweepProfiler, SweepRequest, Tier, TierPolicy,
    TuningParams,
};
use yasksite_grid::Grid3;
use yasksite_memsim::HierarchyStats;
use yasksite_stencil::Stencil;

use crate::predict::{predict_params, predict_params_resident, PredictedPerf};

/// Errors reported by the tool layer — the single taxonomy every public
/// tuning entry point funnels into (no panics escape the public API).
#[derive(Debug)]
pub enum ToolError {
    /// The engine rejected the configuration.
    Engine(EngineError),
    /// A machine description file failed to parse or validate.
    MachineFile(MachineFileError),
    /// The caller broke the suggest/record protocol of a tuner.
    Protocol(String),
    /// The caller supplied input the API cannot act on (empty space,
    /// non-finite measurement, ...).
    InvalidInput(String),
    /// A measurement sample failed or produced unusable data.
    Measurement(String),
    /// Tool-level invariant violation.
    Other(String),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Engine(e) => write!(f, "engine: {e}"),
            ToolError::MachineFile(e) => write!(f, "machine file: {e}"),
            ToolError::Protocol(s) => write!(f, "protocol: {s}"),
            ToolError::InvalidInput(s) => write!(f, "invalid input: {s}"),
            ToolError::Measurement(s) => write!(f, "measurement: {s}"),
            ToolError::Other(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for ToolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ToolError::Engine(e) => Some(e),
            ToolError::MachineFile(e) => Some(e),
            ToolError::Protocol(_)
            | ToolError::InvalidInput(_)
            | ToolError::Measurement(_)
            | ToolError::Other(_) => None,
        }
    }
}

impl From<EngineError> for ToolError {
    fn from(e: EngineError) -> Self {
        ToolError::Engine(e)
    }
}

impl From<MachineFileError> for ToolError {
    fn from(e: MachineFileError) -> Self {
        ToolError::MachineFile(e)
    }
}

/// A measured (native or simulated) performance result.
#[derive(Debug, Clone)]
pub struct MeasuredPerf {
    /// Achieved MLUP/s in steady state.
    pub mlups: f64,
    /// Steady-state seconds per domain sweep.
    pub seconds_per_sweep: f64,
    /// Simulated traffic counters (None for native runs).
    pub stats: Option<HierarchyStats>,
    /// Whether the number came from the simulator or the host.
    pub simulated: bool,
    /// Threads that actually did work: the engine's count for native
    /// runs (non-empty slabs / plane chunks), the simulated core count
    /// otherwise. Can be below `params.threads` on small domains.
    pub threads_used: usize,
    /// The specialisation-ladder tier that executed (native runs report
    /// the engine's truth; simulated runs report the planner's pick for
    /// these parameters under the live policy).
    pub tier: Tier,
    /// Why the planner picked [`MeasuredPerf::tier`] — a static reason
    /// string, surfaced through traces, counters and the CLI.
    pub tier_reason: &'static str,
}

/// One stencil kernel bound to a domain size and a target machine — the
/// unit YaskSite tunes and external tuners query.
#[derive(Debug, Clone)]
pub struct Solution {
    stencil: Stencil,
    domain: [usize; 3],
    machine: Machine,
}

impl Solution {
    /// Binds `stencil` to a `domain` on `machine`.
    #[must_use]
    pub fn new(stencil: Stencil, domain: [usize; 3], machine: Machine) -> Self {
        Solution {
            stencil,
            domain,
            machine,
        }
    }

    /// The stencil.
    #[must_use]
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// The domain extents.
    #[must_use]
    pub fn domain(&self) -> [usize; 3] {
        self.domain
    }

    /// The target machine.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Lattice updates per sweep.
    #[must_use]
    pub fn updates_per_sweep(&self) -> u64 {
        (self.domain[0] * self.domain[1] * self.domain[2]) as u64
    }

    /// A hash identifying this solution's prediction inputs (stencil ×
    /// domain × machine). Two solutions with equal signatures produce
    /// identical analytic predictions, which is what lets
    /// [`crate::PredictionCache`] share entries across `Solution` values.
    /// Stable within a process; not a persistent format.
    #[must_use]
    pub fn signature(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        // Stencil and Machine hold f64s and do not implement Hash; their
        // Debug renderings are exact enough to distinguish any two values
        // the model would treat differently.
        format!("{:?}", self.stencil).hash(&mut h);
        self.domain.hash(&mut h);
        format!("{:?}", self.machine).hash(&mut h);
        h.finish()
    }

    /// Analytic (ECM) prediction for `params` at `cores` — runs nothing.
    #[must_use]
    pub fn predict(&self, params: &TuningParams, cores: usize) -> PredictedPerf {
        predict_params(&self.stencil, self.domain, &self.machine, params, cores)
    }

    /// Analytic prediction with an explicit steady-state resident-set
    /// size (bytes of all data live across repeated invocations).
    #[must_use]
    pub fn predict_with_resident(
        &self,
        params: &TuningParams,
        cores: usize,
        resident_bytes: f64,
    ) -> PredictedPerf {
        predict_params_resident(
            &self.stencil,
            self.domain,
            &self.machine,
            params,
            cores,
            Some(resident_bytes),
        )
    }

    /// Allocates the grid set (inputs + output) for this solution under a
    /// given parameter set.
    #[must_use]
    pub fn allocate_grids(&self, params: &TuningParams) -> (Vec<Grid3>, Grid3) {
        let info = self.stencil.info();
        let halo = info.radius;
        let inputs: Vec<Grid3> = (0..self.stencil.num_inputs())
            .map(|g| {
                let mut grid = Grid3::new(&format!("in{g}"), self.domain, halo, params.fold);
                grid.fill_with(|i, j, k| ((i * 7 + j * 3 + k) % 13) as f64 * 0.05);
                grid
            })
            .collect();
        let out = Grid3::new("out", self.domain, halo, params.fold);
        (inputs, out)
    }

    /// Measures `params`: natively when the machine is the host model,
    /// otherwise on the simulated hierarchy. One warm-up sweep is followed
    /// by one measured steady-state sweep.
    ///
    /// # Errors
    /// Propagates engine errors (bad parameters, unsupported wavefront).
    pub fn measure(&self, params: &TuningParams) -> Result<MeasuredPerf, ToolError> {
        if self.machine.kind == MachineKind::Host {
            self.measure_native(params)
        } else {
            self.measure_simulated(params)
        }
    }

    fn measure_native(&self, params: &TuningParams) -> Result<MeasuredPerf, ToolError> {
        let (mut inputs, mut out) = self.allocate_grids(params);
        let pool = ExecPool::global();
        let request = SweepRequest::new(params).pool(pool);
        if params.wavefront > 1 {
            let mut a = inputs.swap_remove(0);
            // Warm-up.
            request.run_wavefront(&self.stencil, &mut a, &mut out)?;
            let report = request.run_wavefront(&self.stencil, &mut a, &mut out)?;
            let secs = report.seconds / params.wavefront as f64;
            return Ok(MeasuredPerf {
                mlups: self.updates_per_sweep() as f64 / secs.max(1e-12) / 1e6,
                seconds_per_sweep: secs,
                stats: None,
                simulated: false,
                threads_used: report.threads_used,
                tier: report.tier,
                tier_reason: report.tier_reason,
            });
        }
        let refs: Vec<&Grid3> = inputs.iter().collect();
        request.apply(&self.stencil, &refs, &mut out)?; // warm-up
        let run = request.apply(&self.stencil, &refs, &mut out)?;
        Ok(MeasuredPerf {
            mlups: run.mlups,
            seconds_per_sweep: run.seconds,
            stats: None,
            simulated: false,
            threads_used: run.threads_used,
            tier: run.tier,
            tier_reason: run.tier_reason,
        })
    }

    fn measure_simulated(&self, params: &TuningParams) -> Result<MeasuredPerf, ToolError> {
        let (inputs, out) = self.allocate_grids(params);
        let mut ctx = SimContext::new(&self.machine, params.threads);
        let sweep = |ctx: &mut SimContext, a: &Grid3, b: &Grid3| -> Result<(), EngineError> {
            if params.wavefront > 1 {
                run_wavefront_simulated(&self.stencil, a, b, params, ctx)
            } else {
                let refs: Vec<&Grid3> = std::iter::once(a).chain(inputs.iter().skip(1)).collect();
                apply_simulated(&self.stencil, &refs, b, params, ctx)
            }
        };
        // Cold sweep warms the hierarchy, second sweep is steady state.
        sweep(&mut ctx, &inputs[0], &out)?;
        let warm = ctx.finish();
        sweep(&mut ctx, &out, &inputs[0])?;
        let total = ctx.finish();
        let steady = (total.time.seconds - warm.time.seconds).max(1e-12);
        let sweeps = params.wavefront.max(1) as f64;
        let per_sweep = steady / sweeps;
        // The simulator models traffic, not kernels; report the tier the
        // native planner would pick for these parameters so tier-mix
        // accounting stays meaningful for simulated machine models.
        let (tier, tier_reason) = self.plan_tier(params);
        Ok(MeasuredPerf {
            mlups: self.updates_per_sweep() as f64 / per_sweep / 1e6,
            seconds_per_sweep: per_sweep,
            stats: Some(total.stats),
            simulated: true,
            threads_used: params.threads,
            tier,
            tier_reason,
        })
    }

    /// The specialisation tier a spatial sweep of `params` would execute
    /// on, under the live [`TierPolicy`] (`YASKSITE_FORCE_TIER` wins
    /// over the default), assuming the shared grid geometry
    /// [`Solution::allocate_grids`] produces.
    #[must_use]
    pub fn plan_tier(&self, params: &TuningParams) -> (Tier, &'static str) {
        plan_tier_with(&self.stencil, params, TierPolicy::from_env())
    }

    /// Generates the kernel source for `params`.
    #[must_use]
    pub fn codegen(&self, params: &TuningParams) -> CodegenOutput {
        codegen(&self.stencil, self.domain, params)
    }

    /// Executes `params` once natively on **this host** with the
    /// engine's [`SweepProfiler`] attached, returning the measured
    /// throughput and the profile report (phase times, chunk/plane
    /// timing, pool occupancy). Always runs natively regardless of the
    /// solution's machine model — profiling a simulated hierarchy would
    /// time the simulator, not the kernel. A warm-up sweep runs
    /// unprofiled first.
    ///
    /// # Errors
    /// Propagates engine errors (bad parameters, unsupported wavefront).
    pub fn profile_native(
        &self,
        params: &TuningParams,
    ) -> Result<(MeasuredPerf, ProfileReport), ToolError> {
        let (mut inputs, mut out) = self.allocate_grids(params);
        let pool = ExecPool::global();
        let prof = SweepProfiler::enabled();
        let warmup = SweepRequest::new(params).pool(pool);
        let profiled = SweepRequest::new(params).pool(pool).profiler(&prof);
        if params.wavefront > 1 {
            let mut a = inputs.swap_remove(0);
            warmup.run_wavefront(&self.stencil, &mut a, &mut out)?; // warm-up
            let report = profiled.run_wavefront(&self.stencil, &mut a, &mut out)?;
            let secs = report.seconds / params.wavefront as f64;
            let perf = MeasuredPerf {
                mlups: self.updates_per_sweep() as f64 / secs.max(1e-12) / 1e6,
                seconds_per_sweep: secs,
                stats: None,
                simulated: false,
                threads_used: report.threads_used,
                tier: report.tier,
                tier_reason: report.tier_reason,
            };
            return Ok((perf, prof.report()));
        }
        let refs: Vec<&Grid3> = inputs.iter().collect();
        warmup.apply(&self.stencil, &refs, &mut out)?; // warm-up
        let run = profiled.apply(&self.stencil, &refs, &mut out)?;
        let perf = MeasuredPerf {
            mlups: run.mlups,
            seconds_per_sweep: run.seconds,
            stats: None,
            simulated: false,
            threads_used: run.threads_used,
            tier: run.tier,
            tier_reason: run.tier_reason,
        };
        Ok((perf, prof.report()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{heat3d, wave2d};

    #[test]
    fn native_measurement_on_host() {
        let sol = Solution::new(heat3d(1), [64, 32, 32], Machine::host());
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let m = sol.measure(&p).unwrap();
        assert!(!m.simulated);
        assert!(m.mlups > 1.0, "host should exceed 1 MLUP/s: {}", m.mlups);
        assert_eq!(m.threads_used, 1);
    }

    #[test]
    fn simulated_measurement_on_clx() {
        let sol = Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake());
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1)).threads(2);
        let m = sol.measure(&p).unwrap();
        assert!(m.simulated);
        assert!(m.stats.is_some());
        assert!(m.mlups > 0.0);
    }

    #[test]
    fn simulated_wavefront_measurement() {
        let sol = Solution::new(heat3d(1), [64, 32, 32], Machine::cascade_lake());
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1)).wavefront(2);
        let m = sol.measure(&p).unwrap();
        assert!(m.mlups > 0.0);
    }

    #[test]
    fn two_input_solution_measures() {
        let sol = Solution::new(wave2d(0.3), [64, 64, 1], Machine::cascade_lake());
        let p = TuningParams::new([64, 16, 1], Fold::new(8, 1, 1));
        let m = sol.measure(&p).unwrap();
        assert!(m.mlups > 0.0);
    }

    #[test]
    fn predict_is_pure() {
        let sol = Solution::new(heat3d(1), [128, 64, 64], Machine::cascade_lake());
        let p = TuningParams::new([128, 8, 8], Fold::new(8, 1, 1));
        let a = sol.predict(&p, 4);
        let b = sol.predict(&p, 4);
        assert_eq!(a.mlups, b.mlups);
    }

    #[test]
    fn profile_native_runs_on_host_even_for_simulated_machines() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let p = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1)).threads(2);
        let (perf, report) = sol.profile_native(&p).unwrap();
        assert!(!perf.simulated, "profiling always executes natively");
        assert!(perf.mlups > 0.0);
        assert!(report.enabled);
        assert!(report.phases.iter().any(|ph| ph.name == "sweep"));
        assert!(report.chunks.is_some());
        assert!(report.pool.is_some());
    }

    #[test]
    fn profile_native_wavefront_records_planes() {
        let sol = Solution::new(heat3d(1), [32, 16, 16], Machine::cascade_lake());
        let p = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1))
            .wavefront(2)
            .threads(2);
        let (perf, report) = sol.profile_native(&p).unwrap();
        assert!(perf.mlups > 0.0);
        assert!(report.phases.iter().any(|ph| ph.name == "wavefront"));
        assert!(report.planes.is_some());
    }

    #[test]
    fn codegen_delegates() {
        let sol = Solution::new(heat3d(1), [128, 64, 64], Machine::cascade_lake());
        let p = TuningParams::new([128, 8, 8], Fold::new(8, 1, 1));
        assert!(sol.codegen(&p).source.contains("kernel_heat_3d_r1"));
    }
}
