//! The model-drift ledger: every measured trial's predicted-vs-measured
//! residual, aggregated into the auditable statistics behind the
//! analytic-fallback decisions.
//!
//! The tuning engine appends one [`DriftRecord`] per genuinely measured
//! trial (fallbacks predicted, they did not measure, so they cannot
//! drift) keyed by `(stencil, params, cores)`. A [`DriftLedger`]
//! aggregates those records per stencil through
//! [`yasksite_ecm::DriftStats`], flagging a stencil *model suspect* when
//! its p95 absolute drift exceeds
//! [`yasksite_ecm::DRIFT_SUSPECT_THRESHOLD`]. The record count and
//! suspect count surface in [`crate::TuneCost`], the per-record and
//! per-stencil numbers in the telemetry trace (`drift` /
//! `drift_summary` events) and the `yasksite report` drift table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use yasksite_ecm::{drift_fraction, DriftStats};

/// One measured trial's prediction residual.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRecord {
    /// Stencil the trial ran.
    pub stencil: String,
    /// Compact rendering of the trial's tuning parameters.
    pub params: String,
    /// Active cores of the trial.
    pub cores: usize,
    /// The specialisation-ladder tier that executed the measured trial
    /// (`"folded"`, `"scalar"`, ... — `"?"` for records predating tier
    /// attribution), so SUSPECT entries are attributable to a kernel
    /// tier, not just a stencil.
    pub tier: String,
    /// What the ECM model predicted (MLUP/s).
    pub predicted_mlups: f64,
    /// What the trial measured (MLUP/s).
    pub measured_mlups: f64,
}

impl DriftRecord {
    /// Signed relative model error of this record (see
    /// [`yasksite_ecm::drift_fraction`]).
    #[must_use]
    pub fn drift(&self) -> f64 {
        drift_fraction(self.predicted_mlups, self.measured_mlups)
    }
}

/// Append-only collection of [`DriftRecord`]s with per-stencil
/// aggregation, optionally bounded per `(stencil, params, cores)` key so
/// a long-lived daemon cannot grow it without limit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftLedger {
    records: Vec<DriftRecord>,
    cap_per_key: Option<usize>,
    evicted: usize,
}

impl DriftLedger {
    /// An empty, unbounded ledger (the one-shot tuning default: a single
    /// session is already bounded by its search space and budget).
    #[must_use]
    pub fn new() -> Self {
        DriftLedger::default()
    }

    /// An empty ledger keeping at most `cap_per_key` records per
    /// `(stencil, params, cores)` key; the oldest record of that key is
    /// evicted first once the cap is reached. A cap of 0 is treated as 1
    /// (an empty ledger would silently drop all drift evidence).
    #[must_use]
    pub fn bounded(cap_per_key: usize) -> Self {
        DriftLedger {
            records: Vec::new(),
            cap_per_key: Some(cap_per_key.max(1)),
            evicted: 0,
        }
    }

    /// Appends one record, evicting the oldest record with the same
    /// `(stencil, params, cores)` key first when this ledger is bounded
    /// and the key is at capacity.
    pub fn push(&mut self, record: DriftRecord) {
        if let Some(cap) = self.cap_per_key {
            let same_key = |r: &DriftRecord| {
                r.stencil == record.stencil && r.params == record.params && r.cores == record.cores
            };
            if self.records.iter().filter(|r| same_key(r)).count() >= cap {
                if let Some(oldest) = self.records.iter().position(same_key) {
                    self.records.remove(oldest);
                    self.evicted += 1;
                }
            }
        }
        self.records.push(record);
    }

    /// Copies every record of `other` into this ledger, applying this
    /// ledger's own eviction policy. Used by the daemon to absorb each
    /// tuning session's ledger into its long-lived bounded one.
    pub fn absorb(&mut self, other: &DriftLedger) {
        for r in other.records() {
            self.push(r.clone());
        }
    }

    /// Records evicted over this ledger's lifetime (0 when unbounded).
    #[must_use]
    pub fn evictions(&self) -> usize {
        self.evicted
    }

    /// Records collected so far, in append order.
    #[must_use]
    pub fn records(&self) -> &[DriftRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no trial has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Per-stencil drift statistics, sorted by stencil name.
    #[must_use]
    pub fn per_stencil(&self) -> Vec<(String, DriftStats)> {
        let mut by_stencil: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for r in &self.records {
            by_stencil.entry(&r.stencil).or_default().push(r.drift());
        }
        by_stencil
            .into_iter()
            .filter_map(|(name, drifts)| {
                DriftStats::from_drifts(&drifts).map(|s| (name.to_string(), s))
            })
            .collect()
    }

    /// Per-`(stencil, tier)` drift statistics, sorted by stencil then
    /// tier — the attribution behind the drift table: a SUSPECT flag on
    /// a `(stencil, scalar)` row and an ok on `(stencil, folded)` points
    /// at the kernel tier, not the stencil.
    #[must_use]
    pub fn per_stencil_tier(&self) -> Vec<((String, String), DriftStats)> {
        let mut by_key: BTreeMap<(&str, &str), Vec<f64>> = BTreeMap::new();
        for r in &self.records {
            by_key
                .entry((&r.stencil, &r.tier))
                .or_default()
                .push(r.drift());
        }
        by_key
            .into_iter()
            .filter_map(|((name, tier), drifts)| {
                DriftStats::from_drifts(&drifts).map(|s| ((name.to_string(), tier.to_string()), s))
            })
            .collect()
    }

    /// Drift statistics over every record regardless of stencil.
    #[must_use]
    pub fn overall(&self) -> Option<DriftStats> {
        let drifts: Vec<f64> = self.records.iter().map(DriftRecord::drift).collect();
        DriftStats::from_drifts(&drifts)
    }

    /// How many stencils are currently flagged model suspect.
    #[must_use]
    pub fn suspect_count(&self) -> usize {
        self.per_stencil().iter().filter(|(_, s)| s.suspect).count()
    }

    /// Per-`(stencil, params, cores)` model-correction state for every
    /// key currently flagged SUSPECT: the key's display name, the fitted
    /// multiplicative throughput coefficient (1 + median signed drift —
    /// multiply a prediction by it to land on the measured behaviour)
    /// and the drift statistics behind the flag. This is the daemon-side
    /// analogue of the online tuner's per-key corrections, derived from
    /// the long-lived ledger; keys whose drift stays below the threshold
    /// carry no correction.
    #[must_use]
    pub fn per_key_corrections(&self) -> Vec<(String, f64, DriftStats)> {
        let mut by_key: BTreeMap<(&str, &str, usize), Vec<f64>> = BTreeMap::new();
        for r in &self.records {
            by_key
                .entry((&r.stencil, &r.params, r.cores))
                .or_default()
                .push(r.drift());
        }
        by_key
            .into_iter()
            .filter_map(|((stencil, params, cores), mut drifts)| {
                let stats = DriftStats::from_drifts(&drifts)?;
                if !stats.suspect {
                    return None;
                }
                drifts.sort_by(f64::total_cmp);
                let mid = drifts.len() / 2;
                let median = if drifts.len() % 2 == 1 {
                    drifts[mid]
                } else {
                    (drifts[mid - 1] + drifts[mid]) / 2.0
                };
                Some((
                    format!("{stencil} {params} @{cores}"),
                    (1.0 + median).max(1e-9),
                    stats,
                ))
            })
            .collect()
    }

    /// The drift table: one row per `(stencil, executing tier)` with
    /// count, percentiles of the absolute drift, worst record and the
    /// suspect flag.
    #[must_use]
    pub fn render_table(&self) -> String {
        if self.records.is_empty() {
            return "drift: no measured trials\n".to_string();
        }
        let mut out = String::from(
            "stencil                tier      count    p50%    p95%    p99%    max%  model\n",
        );
        for ((name, tier), s) in self.per_stencil_tier() {
            let _ = writeln!(
                out,
                "{:<22} {:<8} {:>6}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {}",
                name,
                tier,
                s.count,
                s.p50 * 100.0,
                s.p95 * 100.0,
                s.p99 * 100.0,
                s.max_abs * 100.0,
                if s.suspect { "SUSPECT" } else { "ok" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stencil: &str, predicted: f64, measured: f64) -> DriftRecord {
        rec_tier(stencil, "folded", predicted, measured)
    }

    fn rec_tier(stencil: &str, tier: &str, predicted: f64, measured: f64) -> DriftRecord {
        DriftRecord {
            stencil: stencil.to_string(),
            params: "b=8x8x8 t=1".to_string(),
            cores: 1,
            tier: tier.to_string(),
            predicted_mlups: predicted,
            measured_mlups: measured,
        }
    }

    #[test]
    fn ledger_aggregates_per_stencil() {
        let mut l = DriftLedger::new();
        assert!(l.is_empty());
        assert!(l.overall().is_none());
        l.push(rec("heat-3d", 100.0, 110.0));
        l.push(rec("heat-3d", 100.0, 95.0));
        l.push(rec("box-3d", 200.0, 40.0)); // -80% drift: suspect
        assert_eq!(l.len(), 3);
        let per = l.per_stencil();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, "box-3d"); // sorted
        assert!(per[0].1.suspect);
        assert!(!per[1].1.suspect);
        assert_eq!(l.suspect_count(), 1);
        assert_eq!(l.overall().unwrap().count, 3);
    }

    #[test]
    fn table_renders_rows_and_flags() {
        let mut l = DriftLedger::new();
        assert!(l.render_table().contains("no measured trials"));
        l.push(rec("heat-3d", 100.0, 104.0));
        l.push(rec("box-3d", 100.0, 10.0));
        let t = l.render_table();
        assert!(t.contains("heat-3d"), "{t}");
        assert!(t.contains("ok"), "{t}");
        assert!(t.contains("SUSPECT"), "{t}");
    }

    #[test]
    fn bounded_ledger_evicts_oldest_per_key() {
        let mut l = DriftLedger::bounded(2);
        l.push(rec("heat-3d", 100.0, 101.0));
        l.push(rec("heat-3d", 100.0, 102.0));
        l.push(rec("box-3d", 100.0, 99.0)); // different key: untouched
        l.push(rec("heat-3d", 100.0, 103.0)); // evicts the 101.0 record
        assert_eq!(l.len(), 3);
        assert_eq!(l.evictions(), 1);
        let heat: Vec<f64> = l
            .records()
            .iter()
            .filter(|r| r.stencil == "heat-3d")
            .map(|r| r.measured_mlups)
            .collect();
        assert_eq!(heat, vec![102.0, 103.0]);
    }

    #[test]
    fn table_attributes_drift_to_the_executing_tier() {
        let mut l = DriftLedger::new();
        // The scalar tier drifts wildly, the folded tier is fine — the
        // table must separate them instead of smearing the SUSPECT over
        // the whole stencil.
        l.push(rec_tier("heat-3d", "folded", 100.0, 103.0));
        l.push(rec_tier("heat-3d", "folded", 100.0, 98.0));
        l.push(rec_tier("heat-3d", "scalar", 100.0, 10.0));
        l.push(rec_tier("heat-3d", "scalar", 100.0, 12.0));
        let per = l.per_stencil_tier();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, ("heat-3d".to_string(), "folded".to_string()));
        assert!(!per[0].1.suspect);
        assert_eq!(per[1].0, ("heat-3d".to_string(), "scalar".to_string()));
        assert!(per[1].1.suspect);
        let t = l.render_table();
        let folded_row = t.lines().find(|l| l.contains("folded")).unwrap();
        let scalar_row = t.lines().find(|l| l.contains("scalar")).unwrap();
        assert!(folded_row.ends_with("ok"), "{t}");
        assert!(scalar_row.ends_with("SUSPECT"), "{t}");
        // Per-stencil aggregation still pools both tiers.
        assert_eq!(l.per_stencil().len(), 1);
    }

    #[test]
    fn per_key_corrections_cover_only_suspect_keys() {
        let mut l = DriftLedger::new();
        // Key A tracks the model (~+3%): no correction.
        l.push(rec("heat-3d", 100.0, 103.0));
        l.push(rec("heat-3d", 100.0, 102.0));
        // Key B measures 4x slower than predicted: suspect, coeff ~0.25.
        let slow = |m| DriftRecord {
            params: "b=16x16x16 t=1".to_string(),
            ..rec("box-3d", 100.0, m)
        };
        l.push(slow(25.0));
        l.push(slow(24.0));
        l.push(slow(26.0));
        let corrections = l.per_key_corrections();
        assert_eq!(corrections.len(), 1, "{corrections:?}");
        let (key, coeff, stats) = &corrections[0];
        assert!(key.contains("box-3d") && key.contains("@1"), "{key}");
        assert!((coeff - 0.25).abs() < 0.02, "coeff {coeff}");
        assert!(stats.suspect);
        // Applying the coefficient closes the loop for this key: the
        // corrected prediction re-derives to near-zero drift.
        for m in [25.0f64, 24.0, 26.0] {
            let corrected_pred = 100.0 * coeff;
            let residual = (m - corrected_pred).abs() / corrected_pred;
            assert!(residual < 0.1, "residual {residual} at measured {m}");
        }
    }

    #[test]
    fn bounded_ledger_evicts_strictly_oldest_first_per_key() {
        // Satellite coverage: under sustained --drift-cap pressure the
        // survivor set must always be the newest `cap` records of each
        // key, and the eviction count must be exact.
        let cap = 3;
        let mut l = DriftLedger::bounded(cap);
        for i in 0..10 {
            l.push(rec("heat-3d", 100.0, 100.0 + i as f64));
            l.push(rec("box-3d", 100.0, 200.0 + i as f64));
        }
        assert_eq!(l.len(), 2 * cap);
        assert_eq!(l.evictions(), 2 * (10 - cap));
        let heat: Vec<f64> = l
            .records()
            .iter()
            .filter(|r| r.stencil == "heat-3d")
            .map(|r| r.measured_mlups)
            .collect();
        assert_eq!(
            heat,
            vec![107.0, 108.0, 109.0],
            "newest survive, oldest-first order"
        );
        let boxd: Vec<f64> = l
            .records()
            .iter()
            .filter(|r| r.stencil == "box-3d")
            .map(|r| r.measured_mlups)
            .collect();
        assert_eq!(boxd, vec![207.0, 208.0, 209.0]);
    }

    #[test]
    fn eviction_counts_are_exact_across_absorb_chains() {
        // A daemon absorbing session ledgers repeatedly must account for
        // every single eviction, not just the last batch.
        let mut daemon = DriftLedger::bounded(2);
        for batch in 0..4 {
            let mut session = DriftLedger::new();
            for i in 0..3 {
                session.push(rec("heat-3d", 100.0, (batch * 10 + i) as f64));
            }
            daemon.absorb(&session);
        }
        // 12 pushed, 2 kept => 10 evicted, all charged to the daemon.
        assert_eq!(daemon.len(), 2);
        assert_eq!(daemon.evictions(), 10);
        let kept: Vec<f64> = daemon.records().iter().map(|r| r.measured_mlups).collect();
        assert_eq!(kept, vec![31.0, 32.0]);
    }

    #[test]
    fn unbounded_ledger_never_evicts() {
        let mut l = DriftLedger::new();
        for i in 0..100 {
            l.push(rec("heat-3d", 100.0, 100.0 + i as f64));
        }
        assert_eq!(l.len(), 100);
        assert_eq!(l.evictions(), 0);
    }

    #[test]
    fn absorb_applies_the_receivers_policy() {
        let mut session = DriftLedger::new();
        for i in 0..5 {
            session.push(rec("heat-3d", 100.0, 100.0 + i as f64));
        }
        let mut daemon = DriftLedger::bounded(3);
        daemon.absorb(&session);
        assert_eq!(daemon.len(), 3);
        assert_eq!(daemon.evictions(), 2);
        // The newest records survive.
        let kept: Vec<f64> = daemon.records().iter().map(|r| r.measured_mlups).collect();
        assert_eq!(kept, vec![102.0, 103.0, 104.0]);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let mut l = DriftLedger::bounded(0);
        l.push(rec("s", 100.0, 90.0));
        l.push(rec("s", 100.0, 95.0));
        assert_eq!(l.len(), 1);
        assert_eq!(l.records()[0].measured_mlups, 95.0);
    }

    #[test]
    fn record_drift_is_signed() {
        assert!((rec("s", 100.0, 150.0).drift() - 0.5).abs() < 1e-12);
        assert!((rec("s", 100.0, 50.0).drift() + 0.5).abs() < 1e-12);
    }
}
