//! End-to-end tests of the `yasksite` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_yasksite"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn usage_without_arguments() {
    let (stdout, _, ok) = run(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn machines_and_stencils_listings() {
    let (stdout, _, ok) = run(&["machines"]);
    assert!(ok);
    assert!(stdout.contains("CLX") && stdout.contains("ROME"));
    let (stdout, _, ok) = run(&["stencils"]);
    assert!(ok);
    assert!(stdout.contains("heat-3d-r1"));
}

#[test]
fn predict_pipeline() {
    let (stdout, _, ok) = run(&[
        "predict",
        "--stencil",
        "heat-3d-r1",
        "--domain",
        "128x128x128",
        "--block",
        "128x8x8",
        "--cores",
        "4",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("MLUP/s"));
    assert!(stdout.contains("T_ECM"));
}

#[test]
fn measure_small_simulated() {
    let (stdout, _, ok) = run(&["measure", "--stencil", "heat-2d-r1", "--domain", "64x64x1"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("simulated"));
    assert!(stdout.contains("memory traffic"));
}

#[test]
fn codegen_emits_c() {
    let (stdout, _, ok) = run(&[
        "codegen",
        "--stencil",
        "heat-2d-r1",
        "--domain",
        "256x256x1",
    ]);
    assert!(ok);
    assert!(stdout.contains("#pragma omp parallel for"));
    assert!(stdout.contains("kernel_heat_2d_r1"));
}

#[test]
fn tune_analytic() {
    let (stdout, _, ok) = run(&[
        "tune",
        "--stencil",
        "heat-2d-r1",
        "--domain",
        "512x512x1",
        "--machine",
        "rome",
        "--cores",
        "4",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("best:"));
    assert!(stdout.contains("0 runs"), "analytic strategy runs nothing");
}

#[test]
fn machine_file_flag() {
    let dir = std::env::temp_dir().join("yasksite-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("m.machine");
    std::fs::write(
        &path,
        yasksite_arch::format_machine(&yasksite_arch::Machine::rome()),
    )
    .unwrap();
    let (stdout, _, ok) = run(&[
        "predict",
        "--stencil",
        "heat-2d-r1",
        "--domain",
        "128x128x1",
        "--machine-file",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("MLUP/s"));
}

#[test]
fn errors_are_reported() {
    let (_, stderr, ok) = run(&["predict", "--stencil", "nope", "--domain", "8x8x8"]);
    assert!(!ok);
    assert!(stderr.contains("unknown stencil"));
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}
