//! Plan execution and time integration on the native engine.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use yasksite_engine::{EngineError, ExecPool, SweepRequest, TuningParams};
use yasksite_grid::{Fold, Grid3};

use crate::ivps::Ivp;
use crate::plan::StepPlan;

/// Errors from the integrator.
#[derive(Debug)]
pub enum OdeError {
    /// Engine failure while executing a sweep.
    Engine(EngineError),
    /// Inconsistent plan.
    Plan(String),
    /// The state left the finite range — the method blew up (unstable
    /// step size, stiff problem, bad coefficients).
    Diverged {
        /// The 1-based step on which non-finite state was detected.
        step: u64,
    },
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::Engine(e) => write!(f, "engine: {e}"),
            OdeError::Plan(s) => write!(f, "plan: {s}"),
            OdeError::Diverged { step } => {
                write!(
                    f,
                    "integration diverged: non-finite state after step {step}"
                )
            }
        }
    }
}

impl std::error::Error for OdeError {}

impl From<EngineError> for OdeError {
    fn from(e: EngineError) -> Self {
        OdeError::Engine(e)
    }
}

/// Executes a [`StepPlan`] natively, step after step, managing the grid
/// pool, boundary halos and state rotation.
pub struct Integrator {
    plan: StepPlan,
    pool: Vec<RefCell<Grid3>>,
    params: TuningParams,
    exec: Option<Arc<ExecPool>>,
    t: f64,
    h: f64,
    steps_done: u64,
}

impl fmt::Debug for Integrator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Integrator")
            .field("plan", &self.plan.name)
            .field("t", &self.t)
            .field("steps_done", &self.steps_done)
            .finish()
    }
}

impl Integrator {
    /// Builds an integrator: allocates the plan's grid pool, writes the
    /// IVP's initial condition into the state grids and the boundary
    /// values into the relevant halos.
    ///
    /// # Errors
    /// Returns [`OdeError::Plan`] if the plan fails validation.
    pub fn new(
        ivp: &dyn Ivp,
        plan: StepPlan,
        h: f64,
        params: TuningParams,
    ) -> Result<Self, OdeError> {
        plan.validate().map_err(OdeError::Plan)?;
        let f = ivp.fields();
        let mut pool = Vec::with_capacity(plan.num_grids);
        for g in 0..plan.num_grids {
            let mut grid = Grid3::new(&format!("pool{g}"), plan.domain, plan.halo, params.fold);
            // State-carrying grids (current state, stage scratch, next)
            // hold solution values, so their halos carry the boundary
            // value of their field; derivative grids keep zero halos.
            let halo_field = plan
                .state_grids
                .iter()
                .position(|&x| x == g)
                .or_else(|| plan.next_grids.iter().position(|&x| x == g))
                .or_else(|| plan.scratch_grids.iter().position(|&x| x == g))
                .map(|p| p % f.max(1));
            match halo_field {
                Some(fl) if fl < f => grid.fill_halo(ivp.boundary(fl)),
                _ => grid.fill_halo(0.0),
            }
            pool.push(RefCell::new(grid));
        }
        for (fl, &g) in plan.state_grids.iter().enumerate() {
            pool[g]
                .borrow_mut()
                .fill_with(|i, j, k| ivp.initial(fl, i, j, k));
        }
        Ok(Integrator {
            plan,
            pool,
            params,
            exec: None,
            t: 0.0,
            h,
            steps_done: 0,
        })
    }

    /// Runs every sweep of this integrator on `exec` instead of the
    /// process-global [`ExecPool`]. Sharing one pool across integrators
    /// (or with a tuning session) reuses its workers for every step —
    /// there is no per-sweep spawn/join either way, and results are
    /// bitwise identical for any pool because the engine decomposes work
    /// from `params.threads`, never from the pool width.
    #[must_use]
    pub fn with_pool(mut self, exec: Arc<ExecPool>) -> Self {
        self.exec = Some(exec);
        self
    }

    fn exec_pool(&self) -> &ExecPool {
        match &self.exec {
            Some(p) => p,
            None => ExecPool::global(),
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &StepPlan {
        &self.plan
    }

    /// Current simulation time.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Performs one method step.
    ///
    /// # Errors
    /// Propagates engine errors; returns [`OdeError::Diverged`] when the
    /// new state contains non-finite values.
    ///
    /// # Panics
    /// Panics if the plan aliases an op's output with an input (prevented
    /// by validation).
    pub fn step(&mut self) -> Result<(), OdeError> {
        for op in &self.plan.ops {
            let borrowed: Vec<std::cell::Ref<'_, Grid3>> =
                op.inputs.iter().map(|&g| self.pool[g].borrow()).collect();
            let refs: Vec<&Grid3> = borrowed.iter().map(|r| &**r).collect();
            let mut out = self.pool[op.output].borrow_mut();
            SweepRequest::new(&self.params)
                .pool(self.exec_pool())
                .apply(&op.stencil, &refs, &mut out)?;
        }
        for (&s, &n) in self.plan.state_grids.iter().zip(&self.plan.next_grids) {
            let mut a = self.pool[s].borrow_mut();
            let mut b = self.pool[n].borrow_mut();
            a.swap_data(&mut b)
                .map_err(|e| OdeError::Plan(e.to_string()))?;
        }
        self.t += self.h;
        self.steps_done += 1;
        // Divergence guard: an unstable step size turns the state
        // non-finite; detect it here instead of letting NaN/inf propagate
        // into downstream error norms and comparisons.
        for &s in &self.plan.state_grids {
            if !self.pool[s].borrow().interior_all_finite() {
                return Err(OdeError::Diverged {
                    step: self.steps_done,
                });
            }
        }
        Ok(())
    }

    /// Runs `n` steps.
    ///
    /// # Errors
    /// Propagates the first step failure.
    pub fn run(&mut self, n: usize) -> Result<(), OdeError> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// A copy of the current state of `field`.
    ///
    /// # Panics
    /// Panics if `field` is out of range.
    #[must_use]
    pub fn state(&self, field: usize) -> Grid3 {
        self.pool[self.plan.state_grids[field]].borrow().clone()
    }

    /// Maximum absolute error of all fields against the IVP's exact
    /// solution at the current time, if available.
    #[must_use]
    pub fn error_vs_exact(&self, ivp: &dyn Ivp) -> Option<f64> {
        let mut err = 0.0f64;
        for fl in 0..ivp.fields() {
            let g = self.pool[self.plan.state_grids[fl]].borrow();
            let n = g.n();
            for k in 0..n[2] {
                for j in 0..n[1] {
                    for i in 0..n[0] {
                        let e = ivp.exact(fl, i, j, k, self.t)?;
                        err = err.max((g.get(i as isize, j as isize, k as isize) - e).abs());
                    }
                }
            }
        }
        Some(err)
    }

    /// Maximum absolute state difference to another integrator (same IVP,
    /// presumably a reference run).
    ///
    /// # Panics
    /// Panics if the two integrators have different field counts or
    /// domains.
    #[must_use]
    pub fn max_diff(&self, other: &Integrator) -> f64 {
        let mut m = 0.0f64;
        for (fl, &g) in self.plan.state_grids.iter().enumerate() {
            let a = self.pool[g].borrow();
            let b = other.pool[other.plan.state_grids[fl]].borrow();
            m = m.max(a.max_abs_diff(&b).expect("comparable states"));
        }
        m
    }
}

/// Estimates the temporal convergence order of a method: integrates to
/// `t_end` with steps `h` and `h/2`, compares both against an `h/16`
/// reference of the same plan family, and returns
/// `log2(err(h) / err(h/2))`.
///
/// `make_plan(h)` must build the plan for a given step size (plans embed
/// `h` in their coefficients).
///
/// # Errors
/// Propagates integrator failures.
///
/// # Panics
/// Panics if `t_end` is not an integer multiple of `h` within rounding.
pub fn temporal_order(
    ivp: &dyn Ivp,
    make_plan: &dyn Fn(f64) -> StepPlan,
    t_end: f64,
    h: f64,
    params: &TuningParams,
) -> Result<f64, OdeError> {
    let run = |hh: f64| -> Result<Integrator, OdeError> {
        let steps = (t_end / hh).round() as usize;
        assert!(
            ((steps as f64 * hh) - t_end).abs() < 1e-9,
            "t_end must be a multiple of h"
        );
        let mut integ = Integrator::new(ivp, make_plan(hh), hh, params.clone())?;
        integ.run(steps)?;
        Ok(integ)
    };
    let reference = run(h / 16.0)?;
    let coarse = run(h)?;
    let fine = run(h / 2.0)?;
    let e1 = coarse.max_diff(&reference).max(1e-300);
    let e2 = fine.max_diff(&reference).max(1e-300);
    Ok((e1 / e2).log2())
}

/// Default execution parameters for integrator tests and examples: row
/// -major fold, modest blocks.
#[must_use]
pub fn default_params(domain: [usize; 3]) -> TuningParams {
    TuningParams::new(
        [domain[0], domain[1].min(16), domain[2].min(16)],
        Fold::new(8, 1, 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivps::{Heat2d, Heat3d, InverterChain, Wave2d};
    use crate::tableau::Tableau;
    use crate::variants::{erk_plan, pirk_plan, Variant};

    #[test]
    fn heat2d_rk4_tracks_exact_solution() {
        let ivp = Heat2d::new(15);
        let h = 5e-4;
        let p = default_params(ivp.domain());
        let mut integ =
            Integrator::new(&ivp, erk_plan(&Tableau::rk4(), &ivp, h, Variant::A), h, p).unwrap();
        integ.run(40).unwrap();
        let err = integ.error_vs_exact(&ivp).unwrap();
        // Dominated by the O(h_x^2) spatial error, ~1e-3 at n=15.
        assert!(err < 5e-3, "error {err}");
        // The solution must actually have decayed.
        let mid = integ.state(0).get(7, 7, 0);
        assert!(mid < 1.0 && mid > 0.5, "mid {mid}");
    }

    #[test]
    fn variants_agree_exactly() {
        let ivp = Heat2d::new(12);
        let h = 1e-3;
        let p = default_params(ivp.domain());
        let mut results = Vec::new();
        for v in Variant::all() {
            let mut integ =
                Integrator::new(&ivp, erk_plan(&Tableau::rk4(), &ivp, h, v), h, p.clone()).unwrap();
            integ.run(10).unwrap();
            results.push(integ);
        }
        for (i, r) in results.iter().enumerate().skip(1) {
            assert!(
                results[0].max_diff(r) < 1e-11,
                "variant {} diverges from A",
                Variant::all()[i]
            );
        }
    }

    #[test]
    fn dedicated_pool_is_bitwise_identical_to_global() {
        let ivp = Heat2d::new(12);
        let h = 1e-3;
        let p = default_params(ivp.domain()).threads(3);
        let plan = |v| erk_plan(&Tableau::rk4(), &ivp, h, v);
        let mut on_global = Integrator::new(&ivp, plan(Variant::A), h, p.clone()).unwrap();
        on_global.run(10).unwrap();
        let shared = Arc::new(ExecPool::new(2));
        let mut on_shared = Integrator::new(&ivp, plan(Variant::A), h, p)
            .unwrap()
            .with_pool(shared);
        on_shared.run(10).unwrap();
        assert_eq!(on_global.max_diff(&on_shared), 0.0);
    }

    #[test]
    fn pirk_variants_agree() {
        let ivp = Heat2d::new(10);
        let h = 2e-4;
        let p = default_params(ivp.domain());
        let mut res = Vec::new();
        for v in [Variant::A, Variant::D] {
            let plan = pirk_plan(&Tableau::radau_iia2(), 3, &ivp, h, v);
            let mut integ = Integrator::new(&ivp, plan, h, p.clone()).unwrap();
            integ.run(8).unwrap();
            res.push(integ);
        }
        assert!(res[0].max_diff(&res[1]) < 1e-11);
    }

    #[test]
    fn erk_orders_match_tableaus() {
        let ivp = Heat2d::new(8);
        let p = default_params(ivp.domain());
        let h = 1e-3;
        for (tab, expect) in [
            (Tableau::euler(), 1.0),
            (Tableau::heun2(), 2.0),
            (Tableau::rk4(), 4.0),
        ] {
            let order = temporal_order(
                &ivp,
                &|hh| erk_plan(&tab, &ivp, hh, Variant::D),
                16.0 * h,
                h,
                &p,
            )
            .unwrap();
            assert!(
                (order - expect).abs() < 0.6,
                "{}: measured order {order}, expected {expect}",
                tab.name()
            );
        }
    }

    #[test]
    fn pirk_order_grows_with_iterations() {
        let ivp = Heat2d::new(8);
        let p = default_params(ivp.domain());
        let h = 1e-3;
        let corrector = Tableau::radau_iia2();
        let mut orders = Vec::new();
        for iters in [1usize, 2, 4] {
            let order = temporal_order(
                &ivp,
                &|hh| pirk_plan(&corrector, iters, &ivp, hh, Variant::A),
                16.0 * h,
                h,
                &p,
            )
            .unwrap();
            orders.push(order);
        }
        assert!(orders[1] > orders[0] + 0.5, "orders {orders:?}");
        // Enough iterations recover the corrector's order 3.
        assert!(orders[2] > 2.4, "orders {orders:?}");
    }

    #[test]
    fn unstable_step_size_reports_divergence() {
        // Explicit Euler on heat2d at n=15 has a stability limit of
        // h < 2/λ_max ≈ 2e-3; h = 1.0 amplifies the stiffest mode by
        // ~1000x per step and must be caught as Diverged, not ridden
        // into NaN.
        let ivp = Heat2d::new(15);
        let h = 1.0;
        let p = default_params(ivp.domain());
        let plan = erk_plan(&Tableau::euler(), &ivp, h, Variant::A);
        let mut integ = Integrator::new(&ivp, plan, h, p).unwrap();
        let err = integ.run(500).unwrap_err();
        match err {
            OdeError::Diverged { step } => {
                assert!(step > 0 && step < 500, "diverged at step {step}");
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    #[test]
    fn stable_step_size_does_not_trip_the_guard() {
        let ivp = Heat2d::new(15);
        let h = 5e-4; // well inside the stability region
        let p = default_params(ivp.domain());
        let plan = erk_plan(&Tableau::euler(), &ivp, h, Variant::A);
        let mut integ = Integrator::new(&ivp, plan, h, p).unwrap();
        integ.run(50).unwrap();
    }

    #[test]
    fn wave2d_standing_wave() {
        let ivp = Wave2d::new(15, 1.0);
        let h = 2e-3;
        let p = default_params(ivp.domain());
        let plan = erk_plan(&Tableau::rk4(), &ivp, h, Variant::A);
        let mut integ = Integrator::new(&ivp, plan, h, p).unwrap();
        integ.run(50).unwrap(); // t = 0.1
        let err = integ.error_vs_exact(&ivp).unwrap();
        assert!(err < 0.05, "wave error {err}");
    }

    #[test]
    fn heat3d_decays() {
        let ivp = Heat3d::new(9);
        let h = 2e-4;
        let p = default_params(ivp.domain());
        let plan = erk_plan(&Tableau::heun2(), &ivp, h, Variant::D);
        let mut integ = Integrator::new(&ivp, plan, h, p).unwrap();
        integ.run(25).unwrap();
        let err = integ.error_vs_exact(&ivp).unwrap();
        assert!(err < 2e-2, "heat3d error {err}");
    }

    #[test]
    fn bruss2d_decays_to_steady_state_and_variants_agree() {
        use crate::ivps::Bruss2d;
        let ivp = Bruss2d::new(12);
        let h = 2e-3;
        let p = default_params(ivp.domain());
        let mut res = Vec::new();
        for v in Variant::all() {
            let plan = erk_plan(&Tableau::rk4(), &ivp, h, v);
            let mut integ = Integrator::new(&ivp, plan, h, p.clone()).unwrap();
            integ.run(300).unwrap();
            res.push(integ);
        }
        for (i, r) in res.iter().enumerate().skip(1) {
            assert!(
                res[0].max_diff(r) < 1e-9,
                "variant {} diverges",
                Variant::all()[i]
            );
        }
        // The perturbation of the stable steady state must have shrunk
        // (relaxation rate ~ (1 + a² - b) + 2απ²/h² ≈ 0.7 here).
        let (us, _) = ivp.steady_state();
        let u = res[0].state(0);
        let dev0 = 0.1; // initial bump amplitude
        let mid = (u.get(6, 6, 0) - us).abs();
        assert!(mid < dev0 * 0.85, "perturbation did not decay: {mid}");
    }

    #[test]
    fn inverter_chain_stays_bounded_and_variants_agree() {
        let ivp = InverterChain::new(128, 5.0, 1.0, 0.5);
        let h = 1e-3;
        let p = default_params(ivp.domain());
        let mut res = Vec::new();
        for v in [Variant::A, Variant::D] {
            let plan = erk_plan(&Tableau::rk4(), &ivp, h, v);
            let mut integ = Integrator::new(&ivp, plan, h, p.clone()).unwrap();
            integ.run(200).unwrap();
            res.push(integ);
        }
        assert!(res[0].max_diff(&res[1]) < 1e-9);
        let s = res[0].state(0);
        for i in 0..128 {
            let v = s.get(i, 0, 0);
            assert!((0.0..=6.0).contains(&v), "cell {i} diverged: {v}");
        }
    }
}
