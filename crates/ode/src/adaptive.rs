//! Embedded Runge–Kutta pairs with adaptive step-size control — the
//! Offsite line of work's natural extension beyond fixed-step methods.
//!
//! The adaptive integrator works directly on grids (layout-agnostic
//! accessors) rather than through [`crate::StepPlan`]s, because the step
//! size — and with it every plan coefficient — changes between steps.
//! Performance tuning of adaptive methods reuses the fixed-step plans at
//! a representative `h`; this module supplies the *numerics* side.

use yasksite_grid::{Fold, Grid3};

use crate::ivps::Ivp;
use crate::stepper::OdeError;
use crate::tableau::Tableau;

/// An explicit tableau plus an embedded lower-order weight vector for
/// error estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddedPair {
    /// The main (higher-order) method.
    pub tableau: Tableau,
    /// Embedded weights `b̂` (same stage count).
    pub b_hat: Vec<f64>,
    /// Order of the embedded solution.
    pub order_hat: usize,
}

impl EmbeddedPair {
    /// Bogacki–Shampine 3(2): four stages, FSAL in its classic form
    /// (the FSAL optimisation is not exploited here).
    ///
    /// # Panics
    /// Never; the coefficients are validated at construction.
    #[must_use]
    pub fn bogacki_shampine32() -> Self {
        let tableau = Tableau::new(
            "bs32",
            vec![
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.5, 0.0, 0.0, 0.0],
                vec![0.0, 0.75, 0.0, 0.0],
                vec![2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0.0],
            ],
            vec![2.0 / 9.0, 1.0 / 3.0, 4.0 / 9.0, 0.0],
            vec![0.0, 0.5, 0.75, 1.0],
            3,
        );
        EmbeddedPair {
            tableau,
            b_hat: vec![7.0 / 24.0, 0.25, 1.0 / 3.0, 0.125],
            order_hat: 2,
        }
    }

    /// Fehlberg 4(5) — the classic RKF45 pair (fourth-order propagation).
    #[must_use]
    pub fn fehlberg45() -> Self {
        let tableau = Tableau::new(
            "rkf45",
            vec![
                vec![0.0; 6],
                vec![0.25, 0.0, 0.0, 0.0, 0.0, 0.0],
                vec![3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0, 0.0],
                vec![
                    1932.0 / 2197.0,
                    -7200.0 / 2197.0,
                    7296.0 / 2197.0,
                    0.0,
                    0.0,
                    0.0,
                ],
                vec![
                    439.0 / 216.0,
                    -8.0,
                    3680.0 / 513.0,
                    -845.0 / 4104.0,
                    0.0,
                    0.0,
                ],
                vec![
                    -8.0 / 27.0,
                    2.0,
                    -3544.0 / 2565.0,
                    1859.0 / 4104.0,
                    -11.0 / 40.0,
                    0.0,
                ],
            ],
            vec![
                25.0 / 216.0,
                0.0,
                1408.0 / 2565.0,
                2197.0 / 4104.0,
                -0.2,
                0.0,
            ],
            vec![0.0, 0.25, 3.0 / 8.0, 12.0 / 13.0, 1.0, 0.5],
            4,
        );
        EmbeddedPair {
            tableau,
            b_hat: vec![
                16.0 / 135.0,
                0.0,
                6656.0 / 12825.0,
                28561.0 / 56430.0,
                -9.0 / 50.0,
                2.0 / 55.0,
            ],
            order_hat: 5,
        }
    }
}

/// Statistics of one adaptive integration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptiveStats {
    /// Accepted steps.
    pub accepted: u64,
    /// Rejected (redone) steps.
    pub rejected: u64,
    /// Smallest step used.
    pub h_min: f64,
    /// Largest step used.
    pub h_max: f64,
}

/// Adaptive integrator for one IVP with an embedded pair.
pub struct AdaptiveIntegrator<'a> {
    ivp: &'a dyn Ivp,
    pair: EmbeddedPair,
    /// Current solution per field.
    state: Vec<Grid3>,
    /// Absolute error tolerance per step (max norm).
    tol: f64,
    t: f64,
    h: f64,
    stats: AdaptiveStats,
}

impl std::fmt::Debug for AdaptiveIntegrator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveIntegrator")
            .field("pair", &self.pair.tableau.name())
            .field("t", &self.t)
            .field("h", &self.h)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'a> AdaptiveIntegrator<'a> {
    /// Creates the integrator with initial step `h0` and tolerance `tol`.
    ///
    /// # Panics
    /// Panics if `h0` or `tol` are not positive.
    #[must_use]
    pub fn new(ivp: &'a dyn Ivp, pair: EmbeddedPair, h0: f64, tol: f64) -> Self {
        assert!(h0 > 0.0 && tol > 0.0, "step and tolerance must be positive");
        let mut state = Vec::new();
        for fl in 0..ivp.fields() {
            let mut g = Grid3::new(&format!("y{fl}"), ivp.domain(), ivp.halo(), Fold::unit());
            g.fill_halo(ivp.boundary(fl));
            g.fill_with(|i, j, k| ivp.initial(fl, i, j, k));
            state.push(g);
        }
        AdaptiveIntegrator {
            ivp,
            pair,
            state,
            tol,
            t: 0.0,
            h: h0,
            stats: AdaptiveStats {
                h_min: f64::INFINITY,
                ..AdaptiveStats::default()
            },
        }
    }

    /// Current time.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Current step size.
    #[must_use]
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Step statistics so far.
    #[must_use]
    pub fn stats(&self) -> AdaptiveStats {
        self.stats
    }

    /// A copy of field `fl`'s current state.
    ///
    /// # Panics
    /// Panics if `fl` is out of range.
    #[must_use]
    pub fn state(&self, fl: usize) -> Grid3 {
        self.state[fl].clone()
    }

    /// Evaluates all RHS fields at `y` into fresh grids.
    fn eval_rhs(&self, y: &[Grid3]) -> Result<Vec<Grid3>, OdeError> {
        let refs: Vec<&Grid3> = y.iter().collect();
        let mut out = Vec::with_capacity(y.len());
        for fl in 0..self.ivp.fields() {
            let mut k = Grid3::new("k", self.ivp.domain(), self.ivp.halo(), Fold::unit());
            self.ivp
                .rhs(fl)
                .apply_reference(&refs, &mut k)
                .map_err(|e| OdeError::Plan(e.to_string()))?;
            out.push(k);
        }
        Ok(out)
    }

    /// `y + h·Σ w_j·k_j` per field, with solution-valued halos.
    fn combine(&self, y: &[Grid3], ks: &[Vec<Grid3>], ws: &[(usize, f64)]) -> Vec<Grid3> {
        let n = self.ivp.domain();
        let mut out = Vec::with_capacity(y.len());
        for (fl, base) in y.iter().enumerate() {
            let mut g = base.clone();
            for k in 0..n[2] as isize {
                for j in 0..n[1] as isize {
                    for i in 0..n[0] as isize {
                        let mut v = base.get(i, j, k);
                        for &(stage, w) in ws {
                            v += self.h * w * ks[stage][fl].get(i, j, k);
                        }
                        g.set(i, j, k, v);
                    }
                }
            }
            out.push(g);
        }
        out
    }

    /// Attempts steps until `t_end` is reached (the last step is clipped).
    ///
    /// # Errors
    /// Fails if the controller underflows the step size (stiffness), an
    /// RHS evaluation fails, or a blown-up stage makes the error estimate
    /// non-finite ([`OdeError::Diverged`]).
    pub fn integrate_to(&mut self, t_end: f64) -> Result<(), OdeError> {
        let s = self.pair.tableau.stages();
        let p = self.pair.tableau.order().min(self.pair.order_hat) as f64;
        while self.t < t_end - 1e-14 {
            let h = self.h.min(t_end - self.t);
            self.h = h;
            // Stage derivatives.
            let mut ks: Vec<Vec<Grid3>> = Vec::with_capacity(s);
            for i in 0..s {
                let ws: Vec<(usize, f64)> = (0..i)
                    .filter(|&j| self.pair.tableau.a(i, j) != 0.0)
                    .map(|j| (j, self.pair.tableau.a(i, j)))
                    .collect();
                let yi = if ws.is_empty() {
                    self.state.clone()
                } else {
                    self.combine(&self.state, &ks, &ws)
                };
                ks.push(self.eval_rhs(&yi)?);
            }
            // Error estimate: h·max|Σ (b−b̂)_i k_i|. Non-finite stage
            // values must be caught explicitly — `f64::max` ignores NaN,
            // so a blown-up stage would otherwise masquerade as err = 0
            // and be *accepted*.
            let n = self.ivp.domain();
            let mut err = 0.0f64;
            for fl in 0..self.ivp.fields() {
                for k in 0..n[2] as isize {
                    for j in 0..n[1] as isize {
                        for i in 0..n[0] as isize {
                            let mut d = 0.0;
                            for (st, kk) in ks.iter().enumerate() {
                                d += (self.pair.tableau.b(st) - self.pair.b_hat[st])
                                    * kk[fl].get(i, j, k);
                            }
                            let scaled = (h * d).abs();
                            if !scaled.is_finite() {
                                return Err(OdeError::Diverged {
                                    step: self.stats.accepted + self.stats.rejected + 1,
                                });
                            }
                            err = err.max(scaled);
                        }
                    }
                }
            }
            let safety = 0.9;
            if err <= self.tol {
                // Accept.
                let ws: Vec<(usize, f64)> = (0..s)
                    .filter(|&i| self.pair.tableau.b(i) != 0.0)
                    .map(|i| (i, self.pair.tableau.b(i)))
                    .collect();
                self.state = self.combine(&self.state, &ks, &ws);
                self.t += h;
                self.stats.accepted += 1;
                self.stats.h_min = self.stats.h_min.min(h);
                self.stats.h_max = self.stats.h_max.max(h);
                let grow = if err > 0.0 {
                    (self.tol / err).powf(1.0 / (p + 1.0))
                } else {
                    5.0
                };
                self.h = h * (safety * grow).clamp(0.2, 5.0);
            } else {
                self.stats.rejected += 1;
                let shrink = (self.tol / err).powf(1.0 / (p + 1.0));
                self.h = h * (safety * shrink).clamp(0.1, 0.9);
                if self.h < 1e-14 {
                    return Err(OdeError::Plan("step size underflow".into()));
                }
            }
        }
        Ok(())
    }

    /// Maximum error vs the IVP's exact solution at the current time.
    #[must_use]
    pub fn error_vs_exact(&self) -> Option<f64> {
        let n = self.ivp.domain();
        let mut err = 0.0f64;
        for (fl, g) in self.state.iter().enumerate() {
            for k in 0..n[2] {
                for j in 0..n[1] {
                    for i in 0..n[0] {
                        let e = self.ivp.exact(fl, i, j, k, self.t)?;
                        err = err.max((g.get(i as isize, j as isize, k as isize) - e).abs());
                    }
                }
            }
        }
        Some(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivps::Heat2d;

    #[test]
    fn pairs_are_consistent() {
        for pair in [
            EmbeddedPair::bogacki_shampine32(),
            EmbeddedPair::fehlberg45(),
        ] {
            assert_eq!(pair.b_hat.len(), pair.tableau.stages());
            let sum: f64 = pair.b_hat.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "{}: b̂ sums to {sum}",
                pair.tableau.name()
            );
        }
    }

    #[test]
    fn adaptive_meets_tolerance_on_heat2d() {
        let ivp = Heat2d::new(9);
        let mut integ =
            AdaptiveIntegrator::new(&ivp, EmbeddedPair::bogacki_shampine32(), 1e-4, 1e-6);
        integ.integrate_to(5e-3).unwrap();
        let stats = integ.stats();
        assert!(stats.accepted > 0);
        // The temporal error should be of tolerance order; the total error
        // is dominated by the O(h_x²) spatial term (~1e-2 at n=9).
        let err = integ.error_vs_exact().unwrap();
        assert!(err < 5e-2, "error {err}");
        assert!((integ.time() - 5e-3).abs() < 1e-12);
    }

    #[test]
    fn controller_grows_steps_on_smooth_decay() {
        let ivp = Heat2d::new(9);
        let mut integ = AdaptiveIntegrator::new(&ivp, EmbeddedPair::fehlberg45(), 1e-6, 1e-7);
        integ.integrate_to(4e-3).unwrap();
        let stats = integ.stats();
        assert!(
            stats.h_max > 4.0 * stats.h_min,
            "controller should expand the step: {stats:?}"
        );
    }

    #[test]
    fn oversized_initial_step_is_rejected() {
        let ivp = Heat2d::new(15); // stiffer (h_x smaller)
        let mut integ =
            AdaptiveIntegrator::new(&ivp, EmbeddedPair::bogacki_shampine32(), 1e-2, 1e-8);
        integ.integrate_to(1e-2).unwrap();
        assert!(integ.stats().rejected > 0, "{:?}", integ.stats());
    }

    #[test]
    fn blown_up_stages_report_divergence() {
        // An absurd initial step makes the stage cascade overflow within
        // one attempted step; the guard must return Diverged instead of
        // letting `f64::max` swallow the NaN error estimate.
        let ivp = Heat2d::new(9);
        let mut integ =
            AdaptiveIntegrator::new(&ivp, EmbeddedPair::bogacki_shampine32(), 1e150, 1e-6);
        let err = integ.integrate_to(1e150).unwrap_err();
        assert!(matches!(err, OdeError::Diverged { .. }), "{err}");
    }

    #[test]
    fn tighter_tolerance_means_more_steps() {
        let ivp = Heat2d::new(9);
        let mut loose =
            AdaptiveIntegrator::new(&ivp, EmbeddedPair::bogacki_shampine32(), 1e-4, 1e-4);
        let mut tight =
            AdaptiveIntegrator::new(&ivp, EmbeddedPair::bogacki_shampine32(), 1e-4, 1e-9);
        loose.integrate_to(5e-3).unwrap();
        tight.integrate_to(5e-3).unwrap();
        assert!(tight.stats().accepted > loose.stats().accepted);
    }
}
