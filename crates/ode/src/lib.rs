//! Explicit ODE methods over stencil right-hand sides.
//!
//! The paper's application layer: explicit Runge–Kutta methods and
//! parallel iterated Runge–Kutta (PIRK) predictor–corrector schemes,
//! applied to initial value problems whose right-hand side is a stencil
//! (semi-discretised PDEs and the inverter-chain circuit model). One time
//! step of a method compiles into a [`StepPlan`] — an ordered list of
//! stencil sweeps over a pool of logical grids — in one of several
//! *implementation variants* (Offsite's search dimension):
//!
//! * [`Variant::A`] keeps stage-value construction and right-hand-side
//!   evaluation as separate sweeps (most sweeps, most traffic);
//! * [`Variant::D`] fuses each stage's linear combination into its RHS
//!   sweep (fewer, wider sweeps);
//! * [`Variant::E`] additionally fuses the final update into the last
//!   stage (fewest sweeps).
//!
//! All variants are algebraically identical; they differ only in memory
//! traffic and sweep count — exactly the property the YaskSite/Offsite
//! pipeline exploits, because a [`StepPlan`]'s ops can each be predicted
//! by the ECM model or simulated on the cache hierarchy.
//!
//! # Examples
//!
//! ```
//! use yasksite_ode::{erk_plan, ivps::Heat2d, Tableau, Variant};
//!
//! let ivp = Heat2d::new(32);
//! let plan = erk_plan(&Tableau::rk4(), &ivp, 1e-4, Variant::D);
//! assert_eq!(plan.ops.len(), 5); // 4 fused stages + final update
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod ivps;
mod plan;
mod stepper;
mod tableau;
mod variants;

pub use adaptive::{AdaptiveIntegrator, AdaptiveStats, EmbeddedPair};
pub use ivps::Ivp;
pub use plan::{compose_rhs, lincomb_stencil, StepOp, StepPlan};
pub use stepper::{default_params, temporal_order, Integrator, OdeError};
pub use tableau::Tableau;
pub use variants::{erk_plan, pirk_plan, Variant};
