//! Step plans: one ODE method step as an ordered list of stencil sweeps.

use yasksite_stencil::{at, c, Expr, Stencil};

/// One sweep: apply `stencil` reading the pool grids listed in `inputs`
/// (in stencil-input order) and writing pool grid `output`.
#[derive(Debug, Clone)]
pub struct StepOp {
    /// The stencil to apply.
    pub stencil: Stencil,
    /// Pool indices of the stencil's inputs.
    pub inputs: Vec<usize>,
    /// Pool index of the output grid.
    pub output: usize,
    /// Human-readable label ("stage 2 rhs", "final update"...).
    pub label: String,
}

/// A complete method step over a pool of logical grids.
///
/// Pool layout conventions are fixed by the plan builders; consumers only
/// need `state_grids` (current solution fields, read by the step) and
/// `next_grids` (where the step leaves the new solution; the integrator
/// swaps them afterwards).
#[derive(Debug, Clone)]
pub struct StepPlan {
    /// The sweeps, in execution order.
    pub ops: Vec<StepOp>,
    /// Total pool size.
    pub num_grids: usize,
    /// Pool indices of the current-state fields.
    pub state_grids: Vec<usize>,
    /// Pool indices receiving the stepped fields.
    pub next_grids: Vec<usize>,
    /// Pool indices of solution-valued stage scratch grids, one per field
    /// (empty when the variant fuses stage assembly away). These carry
    /// boundary halos like the state grids; all other pool grids hold
    /// derivatives and keep zero halos.
    pub scratch_grids: Vec<usize>,
    /// Domain of every pool grid.
    pub domain: [usize; 3],
    /// Halo of every pool grid.
    pub halo: [usize; 3],
    /// Label, e.g. "rk4/D".
    pub name: String,
}

impl StepPlan {
    /// Total lattice updates one step performs.
    #[must_use]
    pub fn updates_per_step(&self) -> u64 {
        self.ops.len() as u64 * (self.domain[0] * self.domain[1] * self.domain[2]) as u64
    }

    /// Validates internal consistency: every op's arity matches its
    /// stencil, indices are in range, and no op reads its own output.
    ///
    /// # Errors
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for (n, op) in self.ops.iter().enumerate() {
            if op.inputs.len() != op.stencil.num_inputs() {
                return Err(format!(
                    "op {n} '{}': {} inputs for a {}-input stencil",
                    op.label,
                    op.inputs.len(),
                    op.stencil.num_inputs()
                ));
            }
            if op.inputs.iter().any(|&g| g >= self.num_grids) || op.output >= self.num_grids {
                return Err(format!("op {n} '{}': grid index out of range", op.label));
            }
            if op.inputs.contains(&op.output) {
                return Err(format!("op {n} '{}': output aliases an input", op.label));
            }
        }
        for &g in self.state_grids.iter().chain(&self.next_grids) {
            if g >= self.num_grids {
                return Err("state/next grid out of range".into());
            }
        }
        Ok(())
    }
}

/// Builds the linear-combination stencil `out = Σ coeffs[i] · in_i`
/// (pointwise, radius 0). Zero coefficients are kept so input order stays
/// aligned with the caller's grid list; filter before calling to drop
/// them.
///
/// # Panics
/// Panics if `coeffs` is empty.
#[must_use]
pub fn lincomb_stencil(name: &str, coeffs: &[f64]) -> Stencil {
    assert!(!coeffs.is_empty(), "lincomb of nothing");
    let terms: Vec<Expr> = coeffs
        .iter()
        .enumerate()
        .map(|(g, &w)| {
            if (w - 1.0).abs() < f64::EPSILON {
                at(g, 0, 0, 0)
            } else {
                c(w) * at(g, 0, 0, 0)
            }
        })
        .collect();
    Stencil::new(name, 3, coeffs.len(), Expr::sum(terms))
}

/// Substitutes every access `g(off)` in `rhs` with
/// `Σ (coeff · new_g(off))` for `(new_g, coeff)` in `subs[g]`, producing a
/// fused stencil with `num_inputs` inputs. This is how variant D/E plans
/// fold a stage's linear combination into its RHS sweep.
///
/// # Panics
/// Panics if a substitution list is empty or indices exceed `num_inputs`.
#[must_use]
pub fn compose_rhs(rhs: &Stencil, subs: &[Vec<(usize, f64)>], num_inputs: usize) -> Stencil {
    fn rewrite(e: &Expr, subs: &[Vec<(usize, f64)>]) -> Expr {
        match e {
            Expr::Const(v) => c(*v),
            Expr::At { grid, dx, dy, dz } => {
                let list = &subs[*grid];
                assert!(!list.is_empty(), "empty substitution for grid {grid}");
                let terms: Vec<Expr> = list
                    .iter()
                    .map(|&(g, w)| {
                        if (w - 1.0).abs() < f64::EPSILON {
                            at(g, *dx, *dy, *dz)
                        } else {
                            c(w) * at(g, *dx, *dy, *dz)
                        }
                    })
                    .collect();
                Expr::sum(terms)
            }
            Expr::Add(a, b) => rewrite(a, subs) + rewrite(b, subs),
            Expr::Sub(a, b) => rewrite(a, subs) - rewrite(b, subs),
            Expr::Mul(a, b) => rewrite(a, subs) * rewrite(b, subs),
            Expr::Neg(a) => -rewrite(a, subs),
        }
    }
    let expr = rewrite(rhs.expr(), subs);
    Stencil::new(
        &format!("{}-fused", rhs.name()),
        rhs.dims(),
        num_inputs,
        expr,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::{Fold, Grid3};
    use yasksite_stencil::builders::heat2d_rhs;

    #[test]
    fn lincomb_evaluates() {
        let s = lincomb_stencil("lc", &[1.0, 0.5, -2.0]);
        assert_eq!(s.num_inputs(), 3);
        let mk = |v: f64| {
            let mut g = Grid3::new("g", [2, 1, 1], [0, 0, 0], Fold::unit());
            g.fill_all(v);
            g
        };
        let (a, b, d) = (mk(1.0), mk(2.0), mk(3.0));
        assert!((s.eval(&[&a, &b, &d], 0, 0, 0) - (1.0 + 1.0 - 6.0)).abs() < 1e-14);
    }

    #[test]
    fn compose_matches_manual_combination() {
        // rhs(u) with u := y + 0.5*k  must equal rhs evaluated on a grid
        // holding y + 0.5*k.
        let rhs = heat2d_rhs(7);
        let fused = compose_rhs(&rhs, &[vec![(0, 1.0), (1, 0.5)]], 2);
        assert_eq!(fused.num_inputs(), 2);

        let mut y = Grid3::new("y", [7, 7, 1], [1, 1, 0], Fold::unit());
        let mut k = Grid3::new("k", [7, 7, 1], [1, 1, 0], Fold::unit());
        y.fill_with(|i, j, _| (i * 3 + j) as f64 * 0.1);
        k.fill_with(|i, j, _| (j * 5 + i) as f64 * 0.01);
        let mut u = Grid3::new("u", [7, 7, 1], [1, 1, 0], Fold::unit());
        u.fill_with(|i, j, _| {
            y.get(i as isize, j as isize, 0) + 0.5 * k.get(i as isize, j as isize, 0)
        });
        for p in [(1, 1), (3, 4), (5, 5)] {
            let direct = rhs.eval(&[&u], p.0, p.1, 0);
            let composed = fused.eval(&[&y, &k], p.0, p.1, 0);
            assert!((direct - composed).abs() < 1e-12);
        }
    }

    #[test]
    fn plan_validation_catches_aliasing() {
        let plan = StepPlan {
            ops: vec![StepOp {
                stencil: lincomb_stencil("id", &[1.0]),
                inputs: vec![0],
                output: 0,
                label: "self".into(),
            }],
            num_grids: 1,
            state_grids: vec![0],
            next_grids: vec![0],
            scratch_grids: vec![],
            domain: [4, 4, 1],
            halo: [0, 0, 0],
            name: "bad".into(),
        };
        assert!(plan.validate().unwrap_err().contains("aliases"));
    }

    #[test]
    fn plan_validation_catches_arity() {
        let plan = StepPlan {
            ops: vec![StepOp {
                stencil: lincomb_stencil("two", &[1.0, 1.0]),
                inputs: vec![0],
                output: 1,
                label: "short".into(),
            }],
            num_grids: 2,
            state_grids: vec![0],
            next_grids: vec![1],
            scratch_grids: vec![],
            domain: [4, 4, 1],
            halo: [0, 0, 0],
            name: "bad".into(),
        };
        assert!(plan.validate().unwrap_err().contains("inputs"));
    }
}
