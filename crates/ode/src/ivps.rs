//! Initial value problems with stencil right-hand sides.

use yasksite_stencil::{at, builders, c, Stencil};

/// An initial value problem `y' = f(y)` whose right-hand side is one
/// stencil per field, evaluated over a 3-D grid.
pub trait Ivp {
    /// Problem name.
    fn name(&self) -> &str;
    /// Number of coupled fields (1 for scalar PDEs, 2 for the wave
    /// system).
    fn fields(&self) -> usize {
        1
    }
    /// Domain extents.
    fn domain(&self) -> [usize; 3];
    /// Halo widths the fields need (max RHS radius).
    fn halo(&self) -> [usize; 3];
    /// RHS stencil of `field`; its inputs are all fields in order.
    fn rhs(&self, field: usize) -> Stencil;
    /// Initial value of `field` at grid point `(i, j, k)`.
    fn initial(&self, field: usize, i: usize, j: usize, k: usize) -> f64;
    /// Fixed halo (boundary) value of `field`.
    fn boundary(&self, field: usize) -> f64 {
        let _ = field;
        0.0
    }
    /// Exact solution, if known.
    fn exact(&self, field: usize, i: usize, j: usize, k: usize, t: f64) -> Option<f64> {
        let _ = (field, i, j, k, t);
        None
    }
}

/// 2-D heat equation `u' = Δu` on the unit square with homogeneous
/// Dirichlet boundaries, discretised with `n×n` interior points.
/// Exact solution: `sin(πx)·sin(πy)·e^(−2π²t)`.
#[derive(Debug, Clone)]
pub struct Heat2d {
    n: usize,
    h: f64,
}

impl Heat2d {
    /// `n` interior points per dimension.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Heat2d {
            n,
            h: 1.0 / (n as f64 + 1.0),
        }
    }

    fn x(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.h
    }
}

impl Ivp for Heat2d {
    fn name(&self) -> &str {
        "Heat2D"
    }
    fn domain(&self) -> [usize; 3] {
        [self.n, self.n, 1]
    }
    fn halo(&self) -> [usize; 3] {
        [1, 1, 0]
    }
    fn rhs(&self, _field: usize) -> Stencil {
        builders::heat2d_rhs(self.n)
    }
    fn initial(&self, _field: usize, i: usize, j: usize, _k: usize) -> f64 {
        let pi = std::f64::consts::PI;
        (pi * self.x(i)).sin() * (pi * self.x(j)).sin()
    }
    fn exact(&self, _field: usize, i: usize, j: usize, _k: usize, t: f64) -> Option<f64> {
        let pi = std::f64::consts::PI;
        Some((pi * self.x(i)).sin() * (pi * self.x(j)).sin() * (-2.0 * pi * pi * t).exp())
    }
}

/// 3-D heat equation on the unit cube, Dirichlet boundaries; exact
/// solution `sin(πx)sin(πy)sin(πz)·e^(−3π²t)`.
#[derive(Debug, Clone)]
pub struct Heat3d {
    n: usize,
    h: f64,
}

impl Heat3d {
    /// `n` interior points per dimension.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Heat3d {
            n,
            h: 1.0 / (n as f64 + 1.0),
        }
    }

    fn x(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.h
    }
}

impl Ivp for Heat3d {
    fn name(&self) -> &str {
        "Heat3D"
    }
    fn domain(&self) -> [usize; 3] {
        [self.n, self.n, self.n]
    }
    fn halo(&self) -> [usize; 3] {
        [1, 1, 1]
    }
    fn rhs(&self, _field: usize) -> Stencil {
        builders::heat3d_rhs(self.n)
    }
    fn initial(&self, _field: usize, i: usize, j: usize, k: usize) -> f64 {
        let pi = std::f64::consts::PI;
        (pi * self.x(i)).sin() * (pi * self.x(j)).sin() * (pi * self.x(k)).sin()
    }
    fn exact(&self, _field: usize, i: usize, j: usize, k: usize, t: f64) -> Option<f64> {
        let pi = std::f64::consts::PI;
        Some(
            (pi * self.x(i)).sin()
                * (pi * self.x(j)).sin()
                * (pi * self.x(k)).sin()
                * (-3.0 * pi * pi * t).exp(),
        )
    }
}

/// 2-D wave equation `u'' = c²Δu` as the first-order system
/// `(u, v)' = (v, c²Δu)`, Dirichlet boundaries; exact standing wave
/// `u = sin(πx)sin(πy)cos(√2·πc·t)`.
#[derive(Debug, Clone)]
pub struct Wave2d {
    n: usize,
    h: f64,
    speed: f64,
}

impl Wave2d {
    /// `n` interior points per dimension, wave speed `speed`.
    #[must_use]
    pub fn new(n: usize, speed: f64) -> Self {
        Wave2d {
            n,
            h: 1.0 / (n as f64 + 1.0),
            speed,
        }
    }

    fn x(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.h
    }

    fn omega(&self) -> f64 {
        std::f64::consts::SQRT_2 * std::f64::consts::PI * self.speed
    }
}

impl Ivp for Wave2d {
    fn name(&self) -> &str {
        "Wave2D"
    }
    fn fields(&self) -> usize {
        2
    }
    fn domain(&self) -> [usize; 3] {
        [self.n, self.n, 1]
    }
    fn halo(&self) -> [usize; 3] {
        [1, 1, 0]
    }
    fn rhs(&self, field: usize) -> Stencil {
        if field == 0 {
            // u' = v.
            Stencil::new("wave-u-rhs", 2, 2, at(1, 0, 0, 0))
        } else {
            // v' = c² Δu / h².
            let ih2 = self.speed * self.speed / (self.h * self.h);
            let lap = at(0, -1, 0, 0) + at(0, 1, 0, 0) + at(0, 0, -1, 0) + at(0, 0, 1, 0)
                - c(4.0) * at(0, 0, 0, 0);
            Stencil::new("wave-v-rhs", 2, 2, c(ih2) * lap)
        }
    }
    fn initial(&self, field: usize, i: usize, j: usize, _k: usize) -> f64 {
        let pi = std::f64::consts::PI;
        if field == 0 {
            (pi * self.x(i)).sin() * (pi * self.x(j)).sin()
        } else {
            0.0
        }
    }
    fn exact(&self, field: usize, i: usize, j: usize, _k: usize, t: f64) -> Option<f64> {
        let pi = std::f64::consts::PI;
        let space = (pi * self.x(i)).sin() * (pi * self.x(j)).sin();
        Some(if field == 0 {
            space * (self.omega() * t).cos()
        } else {
            -space * self.omega() * (self.omega() * t).sin()
        })
    }
}

/// Inverter chain: a 1-D cascade of CMOS inverters,
/// `u_i' = k1(u_op − u_i) − k2·u_{i−1}²·u_i` (see
/// [`builders::inverter_chain_rhs`] for the substitution note). No closed
/// form; convergence is assessed against fine-step references.
#[derive(Debug, Clone)]
pub struct InverterChain {
    n: usize,
    u_op: f64,
    k1: f64,
    k2: f64,
}

impl InverterChain {
    /// Chain of `n` inverters with operating voltage `u_op`.
    #[must_use]
    pub fn new(n: usize, u_op: f64, k1: f64, k2: f64) -> Self {
        InverterChain { n, u_op, k1, k2 }
    }
}

impl Ivp for InverterChain {
    fn name(&self) -> &str {
        "InverterChain"
    }
    fn domain(&self) -> [usize; 3] {
        [self.n, 1, 1]
    }
    fn halo(&self) -> [usize; 3] {
        [1, 0, 0]
    }
    fn rhs(&self, _field: usize) -> Stencil {
        builders::inverter_chain_rhs(self.u_op, self.k1, self.k2)
    }
    fn initial(&self, _field: usize, i: usize, _j: usize, _k: usize) -> f64 {
        // Alternating high/low levels along the chain.
        if i.is_multiple_of(2) {
            self.u_op
        } else {
            0.05 * self.u_op
        }
    }
    fn boundary(&self, _field: usize) -> f64 {
        // The chain input drives the first inverter.
        self.u_op
    }
}

/// 2-D Brusselator reaction–diffusion system (BRUSS2D, a standard
/// Offsite-suite IVP):
///
/// ```text
/// u' = a + u²v − (b+1)·u + α·Δu
/// v' = b·u − u²v          + α·Δv
/// ```
///
/// With `b < 1 + a²` the homogeneous steady state `(a, b/a)` is stable;
/// the default parameters start from a smooth perturbation of it and
/// decay back, which gives tests a bounded, convergent trajectory.
/// Dirichlet boundaries pinned at the steady state.
#[derive(Debug, Clone)]
pub struct Bruss2d {
    n: usize,
    h: f64,
    a: f64,
    b: f64,
    alpha: f64,
}

impl Bruss2d {
    /// `n` interior points per dimension with the stable default reaction
    /// parameters `a = 1`, `b = 1.7`, diffusion `alpha = 0.02`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_params(n, 1.0, 1.7, 0.02)
    }

    /// Fully parameterised constructor.
    #[must_use]
    pub fn with_params(n: usize, a: f64, b: f64, alpha: f64) -> Self {
        Bruss2d {
            n,
            h: 1.0 / (n as f64 + 1.0),
            a,
            b,
            alpha,
        }
    }

    fn x(&self, i: usize) -> f64 {
        (i as f64 + 1.0) * self.h
    }

    /// The homogeneous steady state `(u*, v*) = (a, b/a)`.
    #[must_use]
    pub fn steady_state(&self) -> (f64, f64) {
        (self.a, self.b / self.a)
    }
}

impl Ivp for Bruss2d {
    fn name(&self) -> &str {
        "Bruss2D"
    }
    fn fields(&self) -> usize {
        2
    }
    fn domain(&self) -> [usize; 3] {
        [self.n, self.n, 1]
    }
    fn halo(&self) -> [usize; 3] {
        [1, 1, 0]
    }
    fn rhs(&self, field: usize) -> Stencil {
        let d = self.alpha / (self.h * self.h);
        let lap = |g: usize| {
            c(d) * (at(g, -1, 0, 0) + at(g, 1, 0, 0) + at(g, 0, -1, 0) + at(g, 0, 1, 0)
                - c(4.0) * at(g, 0, 0, 0))
        };
        let u = at(0, 0, 0, 0);
        let v = at(1, 0, 0, 0);
        let reaction_u =
            c(self.a) + u.clone() * u.clone() * v.clone() - c(self.b + 1.0) * u.clone();
        let reaction_v = c(self.b) * u.clone() - u.clone() * u * v;
        if field == 0 {
            Stencil::new("bruss-u-rhs", 2, 2, reaction_u + lap(0))
        } else {
            Stencil::new("bruss-v-rhs", 2, 2, reaction_v + lap(1))
        }
    }
    fn initial(&self, field: usize, i: usize, j: usize, _k: usize) -> f64 {
        let pi = std::f64::consts::PI;
        let bump = (pi * self.x(i)).sin() * (pi * self.x(j)).sin();
        let (us, vs) = self.steady_state();
        if field == 0 {
            us + 0.1 * bump
        } else {
            vs - 0.05 * bump
        }
    }
    fn boundary(&self, field: usize) -> f64 {
        let (us, vs) = self.steady_state();
        if field == 0 {
            us
        } else {
            vs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bruss2d_rhs_vanishes_at_steady_state() {
        use yasksite_grid::{Fold, Grid3};
        let p = Bruss2d::new(8);
        let (us, vs) = p.steady_state();
        let mut u = Grid3::new("u", p.domain(), p.halo(), Fold::unit());
        let mut v = Grid3::new("v", p.domain(), p.halo(), Fold::unit());
        u.fill_all(us);
        v.fill_all(vs);
        for f in 0..2 {
            let rhs = p.rhs(f);
            let val = rhs.eval(&[&u, &v], 4, 4, 0);
            assert!(val.abs() < 1e-12, "field {f} rhs at steady state: {val}");
        }
    }

    #[test]
    fn bruss2d_is_nonlinear_two_field() {
        let p = Bruss2d::new(8);
        assert_eq!(p.fields(), 2);
        let info = p.rhs(0).info();
        assert_eq!(info.read_grids, 2);
        assert!(info.muls >= 3, "needs the u²v term");
    }

    #[test]
    fn heat2d_exact_matches_initial_at_t0() {
        let p = Heat2d::new(9);
        for i in 0..9 {
            for j in 0..9 {
                assert!((p.initial(0, i, j, 0) - p.exact(0, i, j, 0, 0.0).unwrap()).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn heat2d_rhs_consistent_with_exact_derivative() {
        // At t=0: u' = -2π² u should match the discrete Laplacian within
        // O(h²) truncation error.
        let n = 63;
        let p = Heat2d::new(n);
        let s = p.rhs(0);
        use yasksite_grid::{Fold, Grid3};
        let mut u = Grid3::new("u", p.domain(), p.halo(), Fold::unit());
        u.fill_with(|i, j, k| p.initial(0, i, j, k));
        u.fill_halo(0.0);
        let mid = (n / 2) as isize;
        let got = s.eval(&[&u], mid, mid, 0);
        let pi = std::f64::consts::PI;
        let want = -2.0 * pi * pi * p.initial(0, n / 2, n / 2, 0);
        assert!(
            (got - want).abs() < 0.02 * want.abs(),
            "laplacian {got} vs analytic {want}"
        );
    }

    #[test]
    fn wave2d_fields_and_rhs_shapes() {
        let p = Wave2d::new(16, 1.0);
        assert_eq!(p.fields(), 2);
        assert_eq!(p.rhs(0).num_inputs(), 2);
        assert_eq!(p.rhs(1).num_inputs(), 2);
        assert_eq!(p.rhs(1).info().radius, [1, 1, 0]);
        // v starts at rest.
        assert_eq!(p.initial(1, 3, 3, 0), 0.0);
        assert_eq!(p.exact(1, 3, 3, 0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn inverter_chain_shapes() {
        let p = InverterChain::new(100, 5.0, 1.0, 2.0);
        assert_eq!(p.domain(), [100, 1, 1]);
        assert_eq!(p.boundary(0), 5.0);
        assert!(p.exact(0, 0, 0, 0, 1.0).is_none());
        assert_eq!(p.initial(0, 0, 0, 0), 5.0);
        assert!((p.initial(0, 1, 0, 0) - 0.25).abs() < 1e-12);
    }
}
