//! Plan builders: one step of an ERK or PIRK method in each Offsite-style
//! implementation variant.

use crate::ivps::Ivp;
use crate::plan::{compose_rhs, lincomb_stencil, StepOp, StepPlan};
use crate::tableau::Tableau;
use yasksite_stencil::{at, c, Expr};

/// Implementation variant of a method step (Offsite's naming scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Unfused: separate stage-assembly and RHS sweeps.
    A,
    /// Low-storage: like A, but the final combination accumulates
    /// incrementally after each stage (more, narrower sweeps — the
    /// smallest per-sweep working set).
    B,
    /// Stage-fused: each stage's linear combination folded into its RHS
    /// sweep.
    D,
    /// Fully fused: variant D plus the final update folded into the last
    /// stage's sweep.
    E,
}

impl Variant {
    /// All variants.
    #[must_use]
    pub fn all() -> [Variant; 4] {
        [Variant::A, Variant::B, Variant::D, Variant::E]
    }

    /// Short tag.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            Variant::A => "A",
            Variant::B => "B",
            Variant::D => "D",
            Variant::E => "E",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Builds one step of the explicit method `tab` on `ivp` with step size
/// `h` in the given variant.
///
/// Pool layout: `[y fields | k(stage,field)... | Y fields | next fields]`.
///
/// # Panics
/// Panics if the tableau is not explicit.
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn erk_plan(tab: &Tableau, ivp: &dyn Ivp, h: f64, variant: Variant) -> StepPlan {
    assert!(tab.is_explicit(), "erk_plan needs an explicit tableau");
    let f = ivp.fields();
    let s = tab.stages();
    let y0 = 0;
    let k0 = f; // k[i][fld] = k0 + i*f + fld
    let yscratch = k0 + s * f;
    let next0 = yscratch + f;
    // Variant B double-buffers its running accumulator.
    let acc_extra = next0 + f;
    let num_grids = if variant == Variant::B {
        acc_extra + f
    } else {
        next0 + f
    };
    let mut ops = Vec::new();

    for i in 0..s {
        let js: Vec<usize> = (0..s).filter(|&j| tab.a(i, j) != 0.0).collect();
        match variant {
            Variant::A | Variant::B => {
                let stage_inputs: Vec<usize> = if js.is_empty() {
                    (0..f).map(|fl| y0 + fl).collect()
                } else {
                    for fl in 0..f {
                        let mut coeffs = vec![1.0];
                        let mut inputs = vec![y0 + fl];
                        for &j in &js {
                            coeffs.push(h * tab.a(i, j));
                            inputs.push(k0 + j * f + fl);
                        }
                        ops.push(StepOp {
                            stencil: lincomb_stencil(&format!("Y{i}f{fl}"), &coeffs),
                            inputs,
                            output: yscratch + fl,
                            label: format!("stage {i} assemble f{fl}"),
                        });
                    }
                    (0..f).map(|fl| yscratch + fl).collect()
                };
                for fl in 0..f {
                    ops.push(StepOp {
                        stencil: ivp.rhs(fl),
                        inputs: stage_inputs.clone(),
                        output: k0 + i * f + fl,
                        label: format!("stage {i} rhs f{fl}"),
                    });
                }
            }
            Variant::D | Variant::E => {
                let last_fused_stage = if variant == Variant::E { s - 1 } else { s };
                if i >= last_fused_stage {
                    continue; // folded into the final op below
                }
                for fl in 0..f {
                    let (stencil, inputs) = fused_stage(ivp, tab, h, i, &js, fl, f, y0, k0);
                    ops.push(StepOp {
                        stencil,
                        inputs,
                        output: k0 + i * f + fl,
                        label: format!("stage {i} fused rhs f{fl}"),
                    });
                }
            }
        }
    }

    // Final update.
    match variant {
        Variant::B => {
            // Incremental accumulation: acc := y, then one narrow axpy
            // per b-weighted stage, double-buffered so no op aliases its
            // output, ending in the `next` grids.
            let active: Vec<usize> = (0..s).filter(|&i| tab.b(i) != 0.0).collect();
            for fl in 0..f {
                // Choose the start buffer so the last write lands in next.
                let buffers = if active.len().is_multiple_of(2) {
                    [next0 + fl, acc_extra + fl]
                } else {
                    [acc_extra + fl, next0 + fl]
                };
                ops.push(StepOp {
                    stencil: lincomb_stencil("acc-init", &[1.0]),
                    inputs: vec![y0 + fl],
                    output: buffers[0],
                    label: format!("acc init f{fl}"),
                });
                for (t, &i) in active.iter().enumerate() {
                    let src = buffers[t % 2];
                    let dst = buffers[(t + 1) % 2];
                    ops.push(StepOp {
                        stencil: lincomb_stencil("acc", &[1.0, h * tab.b(i)]),
                        inputs: vec![src, k0 + i * f + fl],
                        output: dst,
                        label: format!("acc stage {i} f{fl}"),
                    });
                }
            }
        }
        Variant::A | Variant::D => {
            for fl in 0..f {
                let mut coeffs = vec![1.0];
                let mut inputs = vec![y0 + fl];
                for i in 0..s {
                    if tab.b(i) != 0.0 {
                        coeffs.push(h * tab.b(i));
                        inputs.push(k0 + i * f + fl);
                    }
                }
                ops.push(StepOp {
                    stencil: lincomb_stencil("final", &coeffs),
                    inputs,
                    output: next0 + fl,
                    label: format!("final update f{fl}"),
                });
            }
        }
        Variant::E => {
            let i = s - 1;
            let js: Vec<usize> = (0..s).filter(|&j| tab.a(i, j) != 0.0).collect();
            for fl in 0..f {
                let (stencil, inputs) = fused_final(ivp, tab, h, i, &js, fl, f, y0, k0);
                ops.push(StepOp {
                    stencil,
                    inputs,
                    output: next0 + fl,
                    label: format!("final fused update f{fl}"),
                });
            }
        }
    }

    let plan = StepPlan {
        ops,
        num_grids,
        state_grids: (0..f).map(|fl| y0 + fl).collect(),
        next_grids: (0..f).map(|fl| next0 + fl).collect(),
        scratch_grids: match variant {
            Variant::A => (0..f).map(|fl| yscratch + fl).collect(),
            Variant::B => (0..f)
                .map(|fl| yscratch + fl)
                .chain((0..f).map(|fl| acc_extra + fl))
                .collect(),
            Variant::D | Variant::E => Vec::new(),
        },
        domain: ivp.domain(),
        halo: ivp.halo(),
        name: format!("{}/{}", tab.name(), variant),
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

/// Builds the fused stage stencil `k_i = rhs(y + h Σ a_ij k_j)` for one
/// field, returning `(stencil, pool inputs)`.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn fused_stage(
    ivp: &dyn Ivp,
    tab: &Tableau,
    h: f64,
    i: usize,
    js: &[usize],
    fl: usize,
    f: usize,
    y0: usize,
    k0: usize,
) -> (yasksite_stencil::Stencil, Vec<usize>) {
    // Positional inputs: y fields, then k_j fields for each active j.
    let mut inputs: Vec<usize> = (0..f).map(|g| y0 + g).collect();
    let mut subs: Vec<Vec<(usize, f64)>> = (0..f).map(|g| vec![(g, 1.0)]).collect();
    for (jj, &j) in js.iter().enumerate() {
        for g in 0..f {
            inputs.push(k0 + j * f + g);
            subs[g].push((f + jj * f + g, h * tab.a(i, j)));
        }
    }
    let fused = compose_rhs(&ivp.rhs(fl), &subs, inputs.len());
    (fused, inputs)
}

/// Builds variant E's final stencil
/// `y' = y + h Σ_{i<s-1} b_i k_i + h b_{s-1} rhs(y + h Σ a_{s-1,j} k_j)`
/// for one field.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn fused_final(
    ivp: &dyn Ivp,
    tab: &Tableau,
    h: f64,
    i: usize,
    js: &[usize],
    fl: usize,
    f: usize,
    y0: usize,
    k0: usize,
) -> (yasksite_stencil::Stencil, Vec<usize>) {
    let s = tab.stages();
    // Positional inputs: y fields, then the union of k stages needed:
    // all b-weighted stages < s-1 and the a-active stages of stage s-1.
    let mut stages: Vec<usize> = (0..s - 1).filter(|&q| tab.b(q) != 0.0).collect();
    for &j in js {
        if !stages.contains(&j) {
            stages.push(j);
        }
    }
    stages.sort_unstable();
    let mut inputs: Vec<usize> = (0..f).map(|g| y0 + g).collect();
    for &q in &stages {
        for g in 0..f {
            inputs.push(k0 + q * f + g);
        }
    }
    let pos_of_stage = |q: usize, g: usize| -> usize {
        f + stages.iter().position(|&x| x == q).expect("stage listed") * f + g
    };

    // Substituted last-stage RHS.
    let mut subs: Vec<Vec<(usize, f64)>> = (0..f).map(|g| vec![(g, 1.0)]).collect();
    for &j in js {
        for g in 0..f {
            subs[g].push((pos_of_stage(j, g), h * tab.a(i, j)));
        }
    }
    let rhs_sub = compose_rhs(&ivp.rhs(fl), &subs, inputs.len());

    let mut terms: Vec<Expr> = vec![at(fl, 0, 0, 0)];
    for q in 0..s - 1 {
        if tab.b(q) != 0.0 {
            terms.push(c(h * tab.b(q)) * at(pos_of_stage(q, fl), 0, 0, 0));
        }
    }
    if tab.b(i) != 0.0 {
        terms.push(c(h * tab.b(i)) * rhs_sub.expr().clone());
    }
    let stencil = yasksite_stencil::Stencil::new(
        &format!("{}-final-fused", ivp.rhs(fl).name()),
        ivp.rhs(fl).dims(),
        inputs.len(),
        Expr::sum(terms),
    );
    (stencil, inputs)
}

/// Builds one step of a PIRK method: `iters` fixed-point corrections of
/// the implicit `corrector` tableau, with predictor `F⁰_i = f(y_n)`.
///
/// Pool layout:
/// `[y | F_a(stage,field) | F_b(stage,field) | Y fields | next fields]`.
/// Only variants A and D are defined for PIRK.
///
/// # Panics
/// Panics if `iters == 0` or variant E is requested.
#[must_use]
#[allow(clippy::needless_range_loop)]
pub fn pirk_plan(
    corrector: &Tableau,
    iters: usize,
    ivp: &dyn Ivp,
    h: f64,
    variant: Variant,
) -> StepPlan {
    assert!(iters >= 1, "PIRK needs at least one correction");
    assert!(
        matches!(variant, Variant::A | Variant::D),
        "only variants A and D are defined for PIRK steps"
    );
    let f = ivp.fields();
    let s = corrector.stages();
    let y0 = 0;
    let fa0 = f;
    let fb0 = fa0 + s * f;
    let yscratch = fb0 + s * f;
    let next0 = yscratch + f;
    let num_grids = next0 + f;
    let mut ops = Vec::new();

    // Predictor: evaluate f(y) once per field, then replicate.
    for fl in 0..f {
        ops.push(StepOp {
            stencil: ivp.rhs(fl),
            inputs: (0..f).map(|g| y0 + g).collect(),
            output: fa0 + fl,
            label: format!("predictor rhs f{fl}"),
        });
    }
    for i in 1..s {
        for fl in 0..f {
            ops.push(StepOp {
                stencil: lincomb_stencil("copy", &[1.0]),
                inputs: vec![fa0 + fl],
                output: fa0 + i * f + fl,
                label: format!("predictor copy stage {i} f{fl}"),
            });
        }
    }

    for it in 0..iters {
        let (src, dst) = if it % 2 == 0 { (fa0, fb0) } else { (fb0, fa0) };
        for i in 0..s {
            let js: Vec<usize> = (0..s).filter(|&j| corrector.a(i, j) != 0.0).collect();
            match variant {
                Variant::A => {
                    for fl in 0..f {
                        let mut coeffs = vec![1.0];
                        let mut inputs = vec![y0 + fl];
                        for &j in &js {
                            coeffs.push(h * corrector.a(i, j));
                            inputs.push(src + j * f + fl);
                        }
                        ops.push(StepOp {
                            stencil: lincomb_stencil(&format!("Y{i}"), &coeffs),
                            inputs,
                            output: yscratch + fl,
                            label: format!("iter {it} stage {i} assemble f{fl}"),
                        });
                    }
                    for fl in 0..f {
                        ops.push(StepOp {
                            stencil: ivp.rhs(fl),
                            inputs: (0..f).map(|g| yscratch + g).collect(),
                            output: dst + i * f + fl,
                            label: format!("iter {it} stage {i} rhs f{fl}"),
                        });
                    }
                }
                Variant::B | Variant::D | Variant::E => {
                    for fl in 0..f {
                        let mut inputs: Vec<usize> = (0..f).map(|g| y0 + g).collect();
                        let mut subs: Vec<Vec<(usize, f64)>> =
                            (0..f).map(|g| vec![(g, 1.0)]).collect();
                        for (jj, &j) in js.iter().enumerate() {
                            for g in 0..f {
                                inputs.push(src + j * f + g);
                                subs[g].push((f + jj * f + g, h * corrector.a(i, j)));
                            }
                        }
                        ops.push(StepOp {
                            stencil: compose_rhs(&ivp.rhs(fl), &subs, inputs.len()),
                            inputs,
                            output: dst + i * f + fl,
                            label: format!("iter {it} stage {i} fused f{fl}"),
                        });
                    }
                }
            }
        }
    }

    // Final combination from the last-written buffer.
    let last = if iters % 2 == 1 { fb0 } else { fa0 };
    for fl in 0..f {
        let mut coeffs = vec![1.0];
        let mut inputs = vec![y0 + fl];
        for i in 0..s {
            if corrector.b(i) != 0.0 {
                coeffs.push(h * corrector.b(i));
                inputs.push(last + i * f + fl);
            }
        }
        ops.push(StepOp {
            stencil: lincomb_stencil("final", &coeffs),
            inputs,
            output: next0 + fl,
            label: format!("final update f{fl}"),
        });
    }

    let plan = StepPlan {
        ops,
        num_grids,
        state_grids: (0..f).map(|fl| y0 + fl).collect(),
        next_grids: (0..f).map(|fl| next0 + fl).collect(),
        scratch_grids: if variant == Variant::A {
            (0..f).map(|fl| yscratch + fl).collect()
        } else {
            Vec::new()
        },
        domain: ivp.domain(),
        halo: ivp.halo(),
        name: format!("pirk-{}x{}/{}", corrector.name(), iters, variant),
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivps::{Heat2d, Wave2d};

    #[test]
    fn erk_a_op_counts() {
        let ivp = Heat2d::new(16);
        let plan = erk_plan(&Tableau::rk4(), &ivp, 1e-4, Variant::A);
        // Stage 0: 1 rhs; stages 1-3: assemble + rhs each; final: 1.
        assert_eq!(plan.ops.len(), 1 + 3 * 2 + 1);
        plan.validate().unwrap();
    }

    #[test]
    fn erk_d_op_counts() {
        let ivp = Heat2d::new(16);
        let plan = erk_plan(&Tableau::rk4(), &ivp, 1e-4, Variant::D);
        assert_eq!(plan.ops.len(), 4 + 1);
    }

    #[test]
    fn erk_e_op_counts() {
        let ivp = Heat2d::new(16);
        let plan = erk_plan(&Tableau::rk4(), &ivp, 1e-4, Variant::E);
        assert_eq!(plan.ops.len(), 3 + 1);
    }

    #[test]
    fn multi_field_doubles_ops() {
        let ivp = Wave2d::new(16, 1.0);
        let a = erk_plan(&Tableau::heun2(), &ivp, 1e-4, Variant::A);
        // Stage 0: 2 rhs; stage 1: 2 assemble + 2 rhs; final: 2.
        assert_eq!(a.ops.len(), 2 + 4 + 2);
        assert_eq!(a.state_grids.len(), 2);
        a.validate().unwrap();
    }

    #[test]
    fn pirk_op_counts() {
        let ivp = Heat2d::new(16);
        let m = 3;
        let a = pirk_plan(&Tableau::radau_iia2(), m, &ivp, 1e-5, Variant::A);
        // Predictor: 1 rhs + 1 copy; per iter: 2*(assemble+rhs); final 1.
        assert_eq!(a.ops.len(), 2 + m * 4 + 1);
        let d = pirk_plan(&Tableau::radau_iia2(), m, &ivp, 1e-5, Variant::D);
        assert_eq!(d.ops.len(), 2 + m * 2 + 1);
    }

    #[test]
    #[should_panic(expected = "variants A and D")]
    fn pirk_rejects_variant_e() {
        let ivp = Heat2d::new(8);
        let _ = pirk_plan(&Tableau::gauss2(), 2, &ivp, 1e-5, Variant::E);
    }

    #[test]
    fn erk_b_op_counts_and_structure() {
        let ivp = Heat2d::new(16);
        let plan = erk_plan(&Tableau::rk4(), &ivp, 1e-4, Variant::B);
        // Stage ops like A (1 + 3*2 = 7) + acc init + 4 axpy sweeps.
        assert_eq!(plan.ops.len(), 7 + 1 + 4);
        plan.validate().unwrap();
        // Every accumulation sweep reads at most 2 grids (low storage).
        for op in plan.ops.iter().filter(|o| o.label.starts_with("acc")) {
            assert!(op.inputs.len() <= 2, "{}", op.label);
        }
        // The final write lands in the next grids.
        assert_eq!(plan.ops.last().unwrap().output, plan.next_grids[0]);
    }

    #[test]
    #[should_panic(expected = "explicit")]
    fn erk_rejects_implicit_tableau() {
        let ivp = Heat2d::new(8);
        let _ = erk_plan(&Tableau::gauss2(), &ivp, 1e-5, Variant::A);
    }
}
