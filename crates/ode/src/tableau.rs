//! Butcher tableaus.

use std::fmt;

/// A Runge–Kutta Butcher tableau. Explicit methods have a strictly lower
/// triangular `a`; the implicit tableaus here serve as PIRK correctors.
#[derive(Debug, Clone, PartialEq)]
pub struct Tableau {
    name: String,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    c: Vec<f64>,
    order: usize,
}

impl Tableau {
    /// Creates and validates a tableau.
    ///
    /// # Panics
    /// Panics on shape mismatches or if `b` does not sum to 1 or
    /// `c_i != Σ_j a_ij` beyond rounding (basic consistency conditions).
    #[must_use]
    pub fn new(name: &str, a: Vec<Vec<f64>>, b: Vec<f64>, c: Vec<f64>, order: usize) -> Self {
        let s = b.len();
        assert_eq!(a.len(), s, "{name}: a must have {s} rows");
        assert!(a.iter().all(|r| r.len() == s), "{name}: a must be {s}x{s}");
        assert_eq!(c.len(), s, "{name}: c must have {s} entries");
        let bsum: f64 = b.iter().sum();
        assert!((bsum - 1.0).abs() < 1e-12, "{name}: sum(b) = {bsum} != 1");
        for i in 0..s {
            let ci: f64 = a[i].iter().sum();
            assert!(
                (ci - c[i]).abs() < 1e-12,
                "{name}: row-sum condition violated at stage {i}"
            );
        }
        Tableau {
            name: name.to_string(),
            a,
            b,
            c,
            order,
        }
    }

    /// Method name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.b.len()
    }

    /// Classical order of convergence.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Coefficient `a[i][j]`.
    #[must_use]
    pub fn a(&self, i: usize, j: usize) -> f64 {
        self.a[i][j]
    }

    /// Weight `b[i]`.
    #[must_use]
    pub fn b(&self, i: usize) -> f64 {
        self.b[i]
    }

    /// Node `c[i]`.
    #[must_use]
    pub fn c(&self, i: usize) -> f64 {
        self.c[i]
    }

    /// Whether `a` is strictly lower triangular (explicit method).
    #[must_use]
    pub fn is_explicit(&self) -> bool {
        self.a
            .iter()
            .enumerate()
            .all(|(i, row)| row.iter().skip(i).all(|&v| v == 0.0))
    }

    /// Forward Euler (1 stage, order 1).
    #[must_use]
    pub fn euler() -> Self {
        Tableau::new("euler", vec![vec![0.0]], vec![1.0], vec![0.0], 1)
    }

    /// Heun's method (2 stages, order 2).
    #[must_use]
    pub fn heun2() -> Self {
        Tableau::new(
            "heun2",
            vec![vec![0.0, 0.0], vec![1.0, 0.0]],
            vec![0.5, 0.5],
            vec![0.0, 1.0],
            2,
        )
    }

    /// Kutta's third-order method (3 stages).
    #[must_use]
    pub fn kutta3() -> Self {
        Tableau::new(
            "kutta3",
            vec![
                vec![0.0, 0.0, 0.0],
                vec![0.5, 0.0, 0.0],
                vec![-1.0, 2.0, 0.0],
            ],
            vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0],
            vec![0.0, 0.5, 1.0],
            3,
        )
    }

    /// The classical RK4 (4 stages, order 4).
    #[must_use]
    pub fn rk4() -> Self {
        Tableau::new(
            "rk4",
            vec![
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.5, 0.0, 0.0, 0.0],
                vec![0.0, 0.5, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 0.0],
            ],
            vec![1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0],
            vec![0.0, 0.5, 0.5, 1.0],
            4,
        )
    }

    /// Radau IIA with two stages (order 3) — an implicit corrector for
    /// PIRK iteration.
    #[must_use]
    pub fn radau_iia2() -> Self {
        Tableau::new(
            "radauIIA2",
            vec![vec![5.0 / 12.0, -1.0 / 12.0], vec![3.0 / 4.0, 1.0 / 4.0]],
            vec![3.0 / 4.0, 1.0 / 4.0],
            vec![1.0 / 3.0, 1.0],
            3,
        )
    }

    /// Gauss–Legendre with two stages (order 4) — an implicit corrector.
    #[must_use]
    pub fn gauss2() -> Self {
        let r3 = 3.0f64.sqrt();
        Tableau::new(
            "gauss2",
            vec![vec![0.25, 0.25 - r3 / 6.0], vec![0.25 + r3 / 6.0, 0.25]],
            vec![0.5, 0.5],
            vec![0.5 - r3 / 6.0, 0.5 + r3 / 6.0],
            4,
        )
    }

    /// Lobatto IIIC with two stages (order 2) — an implicit corrector.
    #[must_use]
    pub fn lobatto_iiic2() -> Self {
        Tableau::new(
            "lobattoIIIC2",
            vec![vec![0.5, -0.5], vec![0.5, 0.5]],
            vec![0.5, 0.5],
            vec![0.0, 1.0],
            2,
        )
    }

    /// All built-in explicit tableaus.
    #[must_use]
    pub fn explicit_methods() -> Vec<Tableau> {
        vec![Self::euler(), Self::heun2(), Self::kutta3(), Self::rk4()]
    }

    /// All built-in PIRK correctors.
    #[must_use]
    pub fn correctors() -> Vec<Tableau> {
        vec![Self::radau_iia2(), Self::gauss2(), Self::lobatto_iiic2()]
    }
}

impl fmt::Display for Tableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (s={}, p={})", self.name, self.stages(), self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate() {
        for t in Tableau::explicit_methods() {
            assert!(t.is_explicit(), "{}", t.name());
            assert!(t.stages() >= 1);
        }
        for t in Tableau::correctors() {
            assert!(!t.is_explicit(), "{}", t.name());
        }
    }

    #[test]
    fn rk4_coefficients() {
        let t = Tableau::rk4();
        assert_eq!(t.stages(), 4);
        assert_eq!(t.order(), 4);
        assert!((t.a(3, 2) - 1.0).abs() < 1e-15);
        assert!((t.b(1) - 1.0 / 3.0).abs() < 1e-15);
        assert!((t.c(1) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sum(b)")]
    fn bad_weights_rejected() {
        let _ = Tableau::new("bad", vec![vec![0.0]], vec![0.5], vec![0.0], 1);
    }

    #[test]
    #[should_panic(expected = "row-sum")]
    fn bad_nodes_rejected() {
        let _ = Tableau::new("bad", vec![vec![0.0]], vec![1.0], vec![0.5], 1);
    }
}
