//! Wavefront temporal blocking (time skewing along z).
//!
//! A wavefront sweep performs `wf` Jacobi time steps in one pass over the
//! domain: plane `z` of time level `s+1` is computed as soon as the planes
//! it needs from level `s` are ready, with a skew of `shift = max(r_z, 1)`
//! planes per level. Two ping-pong buffers suffice for any depth because
//! the skew guarantees a level-`s-1` plane is dead before level `s+1`
//! overwrites it. Temporal blocking multiplies the arithmetic per memory
//! byte by `wf`, lifting the bandwidth ceiling — the paper's key lever for
//! memory-bound ODE stages.
//!
//! The native path composes all three YASK levers, as the paper does:
//! each skewed plane update runs through the same allocation-free linear
//! row kernels as a spatial [`crate::SweepRequest::apply`], tiled in x/y by
//! `params.block`, and the plane's rows are decomposed into
//! `params.threads` contiguous chunks executed on the persistent
//! [`ExecPool`]. The per-point operation order is identical to the plain
//! stepper's, so a depth-`wf` wavefront bitwise-matches `wf` plain
//! sweeps.

use yasksite_grid::Grid3;
use yasksite_stencil::Stencil;

use crate::compile::CompiledStencil;
use crate::error::EngineError;
use crate::native::{Geom, LinearKernel, Sink};
use crate::params::{chunk_ranges, TuningParams};
use crate::pool::{ExecPool, ScopedJob};
use crate::profile::SweepProfiler;
use crate::simulate::{apply_simulated, touch_row, Groups, RowAccess, SimContext};
use crate::sweep::{lane_count_supported, Tier, TierPolicy};

fn wavefront_checks(
    stencil: &Stencil,
    a: &Grid3,
    b: &Grid3,
    params: &TuningParams,
) -> Result<(usize, usize), EngineError> {
    if stencil.num_inputs() != 1 {
        return Err(EngineError::Unsupported {
            reason: "wavefront needs a single-input (ping-pong) stencil".into(),
        });
    }
    stencil.check_bindings(&[a], b)?;
    stencil.check_bindings(&[b], a)?;
    params
        .validate(a.n())
        .map_err(|reason| EngineError::BadParams { reason })?;
    let info = stencil.info();
    let shift = info.radius[2].max(1);
    Ok((params.wavefront, shift))
}

/// Picks the kernel tier for the skewed plane updates. The wavefront
/// fast path hands each pool job a contiguous window of plane rows, so
/// it needs a linear stencil on identically laid-out **row-major**
/// buffers; the folded lane kernel additionally needs a supported x-lane
/// count. Multi-dimensional folds scatter rows across bricks and fall
/// back to the per-point generic loop (the brick kernel sweeps whole
/// grids, not single planes).
fn plan_wavefront(
    compiled: &CompiledStencil,
    layouts_match: bool,
    params: &TuningParams,
    policy: TierPolicy,
) -> (Option<usize>, Tier, &'static str) {
    if !compiled.is_linear() {
        return (
            None,
            Tier::Generic,
            "non-linear stencil: per-point generic wavefront",
        );
    }
    if !layouts_match {
        return (
            None,
            Tier::Generic,
            "ping-pong buffers have mismatched layouts: per-point generic wavefront",
        );
    }
    if !params.row_major() {
        return (
            None,
            Tier::Generic,
            "wavefront folded tier requires a row-major fold: per-point generic wavefront",
        );
    }
    match policy {
        TierPolicy::ForceScalar => (Some(0), Tier::Scalar, "tier forced to scalar"),
        _ if lane_count_supported(params.fold.x) => (
            Some(params.fold.x),
            Tier::Folded,
            "row-major fold: folded lane kernel",
        ),
        TierPolicy::ForceFolded => (
            Some(0),
            Tier::Scalar,
            "folded tier forced but fold.x has no supported lane count: scalar row kernels",
        ),
        TierPolicy::Auto => (
            Some(0),
            Tier::Scalar,
            "fold.x has no supported lane count: scalar row kernels",
        ),
    }
}

/// The wavefront executor behind [`crate::SweepRequest::run_wavefront`]
/// and the deprecated free functions. Performs `params.wavefront` time
/// steps in one skewed sweep and returns
/// `(widest chunk count, executed tier, reason)`.
///
/// Linear stencils on matching row-major layouts take the fast path:
/// each plane update is tiled in x/y by `params.block` and its rows are
/// split into `params.threads` chunks run on the pool — through the
/// folded lane kernel when the fold's x-lane count is supported, the
/// scalar row kernels otherwise. Everything else falls back to the
/// per-point generic loop. Halo values of both buffers are left
/// untouched (fixed-value boundary), matching how the plain steppers
/// treat them.
pub(crate) fn execute_wavefront(
    pool: &ExecPool,
    stencil: &Stencil,
    a: &mut Grid3,
    b: &mut Grid3,
    params: &TuningParams,
    prof: &SweepProfiler,
    policy: TierPolicy,
) -> Result<(usize, Tier, &'static str), EngineError> {
    let (wf, shift) = wavefront_checks(stencil, a, b, params)?;
    let t_compile = prof.start();
    let compiled = CompiledStencil::compile(stencil);
    prof.phase_done("compile", t_compile);
    let n = a.n();
    // The fast path splits plane storage into contiguous row chunks, so
    // both buffers must really be row-major with identical layouts.
    let layouts_match = a.fold() == params.fold
        && b.fold() == params.fold
        && a.halo() == b.halo()
        && a.alloc() == b.alloc();
    let (lanes, tier, reason) = plan_wavefront(&compiled, layouts_match, params, policy);
    let zmax = n[2] + (wf - 1) * shift;
    let mut widest = 1usize;
    prof.pool_window(pool.stats());
    let t_wavefront = prof.start();
    for zt in 0..zmax {
        for s in 0..wf {
            let Some(z) = zt.checked_sub(s * shift) else {
                break;
            };
            if z >= n[2] {
                continue;
            }
            let (src, dst): (&Grid3, &mut Grid3) = if s % 2 == 0 {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            let t_plane = prof.start();
            if let Some(lanes) = lanes {
                let (terms, constant) = compiled.linear_terms().expect("fast implies linear");
                let used = wavefront_plane(pool, terms, constant, src, dst, z, params, prof, lanes);
                widest = widest.max(used);
            } else {
                for j in 0..n[1] as isize {
                    for i in 0..n[0] as isize {
                        let v = compiled.eval_at(&[src], i, j, z as isize);
                        dst.set(i, j, z as isize, v);
                    }
                }
            }
            prof.plane_done(t_plane);
        }
    }
    prof.phase_done("wavefront", t_wavefront);
    prof.pool_window(pool.stats());
    if wf % 2 == 1 {
        a.swap_data(b).expect("ping-pong pair has identical layout");
    }
    Ok((widest, tier, reason))
}

/// One skewed plane update `dst[·,·,z] = stencil(src)` through the
/// allocation-free linear row kernels (`lanes` selects the folded lane
/// kernel, `0` the scalar rows): x/y spatial blocking from
/// `params.block`, rows decomposed into `params.threads` contiguous
/// chunks at y-block boundaries, chunks run on the pool. Returns the
/// number of chunks that received work.
#[allow(clippy::too_many_arguments)] // internal helper; one call site per path
fn wavefront_plane(
    pool: &ExecPool,
    terms: &[((usize, [i32; 3]), f64)],
    constant: f64,
    src: &Grid3,
    dst: &mut Grid3,
    z: usize,
    params: &TuningParams,
    prof: &SweepProfiler,
    lanes: usize,
) -> usize {
    let n = dst.n();
    let block = params.clipped_block(n);
    let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));
    let kernel = LinearKernel::build(terms, constant, &[src], lanes);
    let out_geom = Geom::of(dst);
    let (ax, ay) = (out_geom.ax as usize, out_geom.ay as usize);
    let (hy, hz) = (out_geom.hy as usize, out_geom.hz as usize);
    let plane_start = (z + hz) * ax * ay;
    let plane = &mut dst.as_mut_slice()[plane_start..plane_start + ax * ay];

    // Contiguous row chunks at y-block boundaries; the chunk count
    // depends only on params, never on the pool width.
    let nblocks_y = n[1].div_ceil(block[1]);
    let kernel = &kernel;
    let mut jobs: Vec<ScopedJob<'_>> = Vec::new();
    let mut rest = plane;
    let mut consumed = 0usize; // storage rows of this plane handed out
    for (jb0, jb1) in chunk_ranges(nblocks_y, params.threads) {
        let j0 = jb0 * block[1];
        let j1 = (jb1 * block[1]).min(n[1]);
        let first_row = j0 + hy;
        let last_row = j1 + hy;
        let skip = (first_row - consumed) * ax;
        let take = (last_row - first_row) * ax;
        let (before, after) = rest.split_at_mut(skip + take);
        rest = after;
        consumed = last_row;
        let win = &mut before[skip..];
        let win_base = (plane_start + first_row * ax) as isize;
        jobs.push(Box::new(move || {
            let t0 = prof.start();
            let mut sink = Sink {
                win,
                base: win_base,
                geom: out_geom,
            };
            kernel.apply_blocked(&mut sink, (z, z + 1), (j0, j1), (0, n[0]), block, sub);
            prof.chunk_done(t0);
        }) as ScopedJob<'_>);
    }
    let used = jobs.len();
    pool.run(jobs);
    used
}

/// Simulated counterpart of the native wavefront executor: walks the identical
/// skewed plane order, issuing the touched cache lines to the context's
/// hierarchy. Planes are decomposed over the context's cores along y.
///
/// # Errors
/// Same conditions as the native variant, plus a core-count mismatch
/// between `ctx` and `params.threads`.
#[allow(clippy::needless_range_loop)]
pub fn run_wavefront_simulated(
    stencil: &Stencil,
    a: &Grid3,
    b: &Grid3,
    params: &TuningParams,
    ctx: &mut SimContext,
) -> Result<(), EngineError> {
    let (wf, shift) = wavefront_checks(stencil, a, b, params)?;
    if wf == 1 {
        // Plain spatial sweep.
        return apply_simulated(stencil, &[a], b, params, ctx);
    }
    if ctx.cores() != params.threads {
        return Err(EngineError::BadParams {
            reason: format!(
                "context has {} cores, params ask for {}",
                ctx.cores(),
                params.threads
            ),
        });
    }
    let groups = Groups::of(stencil);
    let info = stencil.info();
    let ic = yasksite_ecm::incore::incore(&info, &ctx.machine().ports, params.fold);
    let n = a.n();
    let cores = ctx.cores();
    let zmax = n[2] + (wf - 1) * shift;
    let mut units = vec![0u64; cores];
    for zt in 0..zmax {
        for s in 0..wf {
            let Some(z) = zt.checked_sub(s * shift) else {
                break;
            };
            if z >= n[2] {
                continue;
            }
            let (src, dst) = if s % 2 == 0 { (a, b) } else { (b, a) };
            for c in 0..cores {
                let j0 = c * n[1] / cores;
                let j1 = (c + 1) * n[1] / cores;
                for j in j0..j1 {
                    let mut i = 0usize;
                    while i < n[0] {
                        let iend = (i + 8).min(n[0]) - 1;
                        for &(_, dy, dz, lo, hi) in &groups.read {
                            touch_row(
                                &mut ctx.hierarchy,
                                c,
                                src,
                                i as isize + lo as isize,
                                iend as isize + hi as isize,
                                j as isize + dy as isize,
                                z as isize + dz as isize,
                                RowAccess::Read,
                            );
                        }
                        touch_row(
                            &mut ctx.hierarchy,
                            c,
                            dst,
                            i as isize,
                            iend as isize,
                            j as isize,
                            z as isize,
                            RowAccess::Write,
                        );
                        units[c] += 1;
                        i = iend + 1;
                    }
                }
            }
        }
    }
    ctx.add_incore(&units, ic.t_nol, ic.t_ol);
    ctx.add_updates(wf as u64 * (n[0] * n[1] * n[2]) as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRequest;
    use yasksite_arch::Machine;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{heat3d, wave2d};

    fn stepper_reference(stencil: &Stencil, a0: &Grid3, steps: usize) -> Grid3 {
        let mut a = a0.clone();
        let mut b = a0.clone();
        for _ in 0..steps {
            let mut tmp = Grid3::new("tmp", a.n(), a.halo(), a.fold());
            tmp.fill_halo(0.0);
            stencil.apply_reference(&[&a], &mut tmp).unwrap();
            // Keep halos identical to the wavefront path (fixed values).
            for k in 0..a.n()[2] as isize {
                for j in 0..a.n()[1] as isize {
                    for i in 0..a.n()[0] as isize {
                        b.set(i, j, k, tmp.get(i, j, k));
                    }
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        a
    }

    fn initial(n: [usize; 3]) -> Grid3 {
        let mut g = Grid3::new("a", n, [1, 1, 1], Fold::new(8, 1, 1));
        g.fill_with(|i, j, k| ((i * 3 + j * 5 + k * 7) % 11) as f64 * 0.1);
        g.fill_halo(0.0);
        g
    }

    #[test]
    fn wavefront_matches_sequential_steps() {
        let s = heat3d(1);
        let n = [16, 6, 10];
        for wf in [1, 2, 3, 4, 5] {
            let a0 = initial(n);
            let want = stepper_reference(&s, &a0, wf);
            let mut a = a0.clone();
            let mut b = a0.clone();
            b.fill_halo(0.0);
            let p = TuningParams::new([16, 6, 10], Fold::new(8, 1, 1)).wavefront(wf);
            let report = SweepRequest::new(&p)
                .tier(TierPolicy::Auto)
                .run_wavefront(&s, &mut a, &mut b)
                .unwrap();
            assert_eq!(report.tier, Tier::Folded);
            assert_eq!(report.wavefront_depth, wf);
            assert_eq!(report.updates, (16 * 6 * 10 * wf) as u64);
            assert!(
                a.max_abs_diff(&want).unwrap() < 1e-12,
                "wavefront depth {wf} diverges"
            );
        }
    }

    #[test]
    fn folded_wavefront_is_bitwise_identical_to_scalar_wavefront() {
        let s = heat3d(1);
        let n = [24, 13, 11];
        let run = |policy: TierPolicy, lanes: usize| {
            let fold = Fold::new(lanes, 1, 1);
            let mut a = Grid3::new("a", n, [1, 1, 1], fold);
            a.fill_with(|i, j, k| ((i * 3 + j * 5 + k * 7) % 11) as f64 * 0.1);
            a.fill_halo(0.0);
            let mut b = a.clone();
            let p = TuningParams::new([8, 4, 4], fold).wavefront(3).threads(2);
            let report = SweepRequest::new(&p)
                .tier(policy)
                .run_wavefront(&s, &mut a, &mut b)
                .unwrap();
            (a, report.tier)
        };
        for lanes in [2usize, 4, 8, 16] {
            let (scalar, ts) = run(TierPolicy::ForceScalar, lanes);
            assert_eq!(ts, Tier::Scalar);
            let (folded, tf) = run(TierPolicy::ForceFolded, lanes);
            assert_eq!(tf, Tier::Folded, "lanes={lanes}");
            assert_eq!(scalar.max_abs_diff(&folded).unwrap(), 0.0, "lanes={lanes}");
        }
    }

    #[test]
    fn threaded_wavefront_is_bitwise_identical_to_single_thread() {
        let s = heat3d(1);
        let n = [24, 13, 11];
        let wf = 3;
        let run = |threads: usize, block: [usize; 3]| {
            let mut a = initial(n);
            let mut b = initial(n);
            let p = TuningParams::new(block, Fold::new(8, 1, 1))
                .wavefront(wf)
                .threads(threads);
            let report = SweepRequest::new(&p)
                .tier(TierPolicy::Auto)
                .run_wavefront(&s, &mut a, &mut b)
                .unwrap();
            (a, report.threads_used)
        };
        let (base, base_used) = run(1, [8, 4, 4]);
        assert_eq!(base_used, 1);
        for threads in [2, 4, 7] {
            let (got, used) = run(threads, [8, 4, 4]);
            assert!(used >= 1 && used <= threads);
            assert_eq!(base.max_abs_diff(&got).unwrap(), 0.0, "threads={threads}");
        }
        // Blocking must not change values either.
        let (odd_blocks, _) = run(3, [5, 3, 2]);
        assert_eq!(base.max_abs_diff(&odd_blocks).unwrap(), 0.0);
    }

    #[test]
    fn profiled_wavefront_is_bitwise_identical_and_records_planes() {
        let s = heat3d(1);
        let n = [16, 8, 10];
        let wf = 3;
        let p = TuningParams::new([8, 4, 4], Fold::new(8, 1, 1))
            .wavefront(wf)
            .threads(2);
        let run = |prof: &SweepProfiler| {
            let mut a = initial(n);
            let mut b = initial(n);
            SweepRequest::new(&p)
                .tier(TierPolicy::Auto)
                .profiler(prof)
                .run_wavefront(&s, &mut a, &mut b)
                .unwrap();
            a
        };
        let plain = run(&SweepProfiler::disabled());
        let prof = SweepProfiler::enabled();
        let profiled = run(&prof);
        assert_eq!(plain.max_abs_diff(&profiled).unwrap(), 0.0);
        let r = prof.report();
        assert!(r.phases.iter().any(|ph| ph.name == "wavefront"));
        let planes = r.planes.expect("plane timings recorded");
        assert_eq!(planes.count as usize, wf * n[2]);
        let chunks = r.chunks.expect("chunk timings recorded");
        assert!(chunks.count >= planes.count);
        assert!(r.pool.is_some());
    }

    #[test]
    fn wavefront_rejects_two_input_stencils() {
        let s = wave2d(0.3);
        let mut a = Grid3::new("a", [8, 8, 1], [1, 1, 0], Fold::new(8, 1, 1));
        let mut b = a.clone();
        let p = TuningParams::new([8, 8, 1], Fold::new(8, 1, 1)).wavefront(2);
        assert!(matches!(
            SweepRequest::new(&p).run_wavefront(&s, &mut a, &mut b),
            Err(EngineError::Unsupported { .. })
        ));
    }

    #[test]
    fn mismatched_layouts_fall_back_to_generic_path() {
        // b allocates a wider halo than a: the fast path's identical
        // -layout precondition fails, the generic path must still give
        // the right answer and the report must say so.
        let s = heat3d(1);
        let n = [12, 6, 8];
        let a0 = initial(n);
        let want = stepper_reference(&s, &a0, 2);
        let mut a = a0.clone();
        let mut b = Grid3::new("b", n, [2, 2, 2], Fold::new(8, 1, 1));
        b.fill_halo(0.0);
        let p = TuningParams::new([12, 6, 8], Fold::new(8, 1, 1))
            .wavefront(2)
            .threads(2);
        let report = SweepRequest::new(&p)
            .tier(TierPolicy::Auto)
            .run_wavefront(&s, &mut a, &mut b)
            .unwrap();
        assert_eq!(
            report.threads_used, 1,
            "generic fallback is single-threaded"
        );
        assert_eq!(report.tier, Tier::Generic);
        assert!(report.tier_reason.contains("mismatched layouts"));
        assert!(a.max_abs_diff(&want).unwrap() < 1e-12);
    }

    /// A scaled-down Cascade-Lake-like machine whose LLC the test domain
    /// overflows, so the wavefront benefit shows at test-friendly sizes.
    fn shrunken_clx() -> Machine {
        let mut m = Machine::cascade_lake();
        m.kind = yasksite_arch::MachineKind::Custom;
        m.cores_per_socket = 4;
        m.caches[1].size_bytes = 128 * 1024;
        m.caches[2].size_bytes = 1024 * 1024;
        m.caches[2].assoc = 16;
        m.validate().unwrap();
        m
    }

    #[test]
    fn simulated_wavefront_cuts_memory_traffic() {
        let m = shrunken_clx();
        let s = heat3d(1);
        // 2 grids x 1 MiB: well beyond the shrunken 1 MiB LLC.
        let n = [128, 32, 32];
        let wf = 4;
        let mut mem = Vec::new();
        for depth in [1usize, wf] {
            let a = initial(n);
            let b = initial(n);
            let p = TuningParams::new([128, 8, 8], Fold::new(8, 1, 1)).wavefront(depth);
            let mut ctx = SimContext::new(&m, 1);
            // Equal total time steps: wf steps as either wf plain sweeps
            // or one wavefront sweep.
            if depth == 1 {
                let mut x = a.clone();
                let mut y = b.clone();
                for _ in 0..wf {
                    apply_simulated(&s, &[&x], &y, &p, &mut ctx).unwrap();
                    x.swap_data(&mut y).unwrap();
                }
            } else {
                run_wavefront_simulated(&s, &a, &b, &p, &mut ctx).unwrap();
            }
            let run = ctx.finish();
            assert_eq!(run.updates, (wf * n[0] * n[1] * n[2]) as u64);
            mem.push(run.stats.mem_read_lines + run.stats.mem_write_lines);
        }
        assert!(
            (mem[1] as f64) < mem[0] as f64 * 0.6,
            "wavefront should cut memory traffic: {} vs {}",
            mem[1],
            mem[0]
        );
    }

    #[test]
    fn simulated_wavefront_multicore_runs() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let n = [64, 32, 16];
        let a = initial(n);
        let b = initial(n);
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1))
            .wavefront(3)
            .threads(4);
        let mut ctx = SimContext::new(&m, 4);
        run_wavefront_simulated(&s, &a, &b, &p, &mut ctx).unwrap();
        let run = ctx.finish();
        assert_eq!(run.updates, (3 * 64 * 32 * 16) as u64);
        for c in 0..4 {
            assert!(run.stats.boundary_lines[0][c] > 0);
        }
    }
}
