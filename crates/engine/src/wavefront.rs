//! Wavefront temporal blocking (time skewing along z).
//!
//! A wavefront sweep performs `wf` Jacobi time steps in one pass over the
//! domain: plane `z` of time level `s+1` is computed as soon as the planes
//! it needs from level `s` are ready, with a skew of `shift = max(r_z, 1)`
//! planes per level. Two ping-pong buffers suffice for any depth because
//! the skew guarantees a level-`s-1` plane is dead before level `s+1`
//! overwrites it. Temporal blocking multiplies the arithmetic per memory
//! byte by `wf`, lifting the bandwidth ceiling — the paper's key lever for
//! memory-bound ODE stages.

use yasksite_grid::Grid3;
use yasksite_stencil::Stencil;

use crate::compile::CompiledStencil;
use crate::error::EngineError;
use crate::params::TuningParams;
use crate::simulate::{apply_simulated, touch_row, Groups, RowAccess, SimContext};

fn wavefront_checks(
    stencil: &Stencil,
    a: &Grid3,
    b: &Grid3,
    params: &TuningParams,
) -> Result<(usize, usize), EngineError> {
    if stencil.num_inputs() != 1 {
        return Err(EngineError::Unsupported {
            reason: "wavefront needs a single-input (ping-pong) stencil".into(),
        });
    }
    stencil.check_bindings(&[a], b)?;
    stencil.check_bindings(&[b], a)?;
    params
        .validate(a.n())
        .map_err(|reason| EngineError::BadParams { reason })?;
    let info = stencil.info();
    let shift = info.radius[2].max(1);
    Ok((params.wavefront, shift))
}

/// Performs `params.wavefront` time steps of `stencil` on the ping-pong
/// pair `(a, b)` using one skewed sweep; on return `a` holds the newest
/// time level.
///
/// Halo values of both buffers are left untouched (fixed-value boundary),
/// matching how the plain steppers treat them.
///
/// # Errors
/// Fails for multi-input stencils, binding problems, or invalid
/// parameters.
pub fn run_wavefront_native(
    stencil: &Stencil,
    a: &mut Grid3,
    b: &mut Grid3,
    params: &TuningParams,
) -> Result<(), EngineError> {
    let (wf, shift) = wavefront_checks(stencil, a, b, params)?;
    let compiled = CompiledStencil::compile(stencil);
    let n = a.n();
    let zmax = n[2] + (wf - 1) * shift;
    for zt in 0..zmax {
        for s in 0..wf {
            let Some(z) = zt.checked_sub(s * shift) else {
                break;
            };
            if z >= n[2] {
                continue;
            }
            let (src, dst): (&Grid3, &mut Grid3) = if s % 2 == 0 {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            for j in 0..n[1] as isize {
                for i in 0..n[0] as isize {
                    let v = compiled.eval_at(&[src], i, j, z as isize);
                    dst.set(i, j, z as isize, v);
                }
            }
        }
    }
    if wf % 2 == 1 {
        a.swap_data(b).expect("ping-pong pair has identical layout");
    }
    Ok(())
}

/// Simulated counterpart of [`run_wavefront_native`]: walks the identical
/// skewed iteration order, issuing the touched cache lines to the
/// context's hierarchy. Planes are decomposed over the context's cores
/// along y.
///
/// # Errors
/// Same conditions as the native variant, plus a core-count mismatch
/// between `ctx` and `params.threads`.
#[allow(clippy::needless_range_loop)]
pub fn run_wavefront_simulated(
    stencil: &Stencil,
    a: &Grid3,
    b: &Grid3,
    params: &TuningParams,
    ctx: &mut SimContext,
) -> Result<(), EngineError> {
    let (wf, shift) = wavefront_checks(stencil, a, b, params)?;
    if wf == 1 {
        // Plain spatial sweep.
        return apply_simulated(stencil, &[a], b, params, ctx);
    }
    if ctx.cores() != params.threads {
        return Err(EngineError::BadParams {
            reason: format!(
                "context has {} cores, params ask for {}",
                ctx.cores(),
                params.threads
            ),
        });
    }
    let groups = Groups::of(stencil);
    let info = stencil.info();
    let ic = yasksite_ecm::incore::incore(&info, &ctx.machine().ports, params.fold);
    let n = a.n();
    let cores = ctx.cores();
    let zmax = n[2] + (wf - 1) * shift;
    let mut units = vec![0u64; cores];
    for zt in 0..zmax {
        for s in 0..wf {
            let Some(z) = zt.checked_sub(s * shift) else {
                break;
            };
            if z >= n[2] {
                continue;
            }
            let (src, dst) = if s % 2 == 0 { (a, b) } else { (b, a) };
            for c in 0..cores {
                let j0 = c * n[1] / cores;
                let j1 = (c + 1) * n[1] / cores;
                for j in j0..j1 {
                    let mut i = 0usize;
                    while i < n[0] {
                        let iend = (i + 8).min(n[0]) - 1;
                        for &(_, dy, dz, lo, hi) in &groups.read {
                            touch_row(
                                &mut ctx.hierarchy,
                                c,
                                src,
                                i as isize + lo as isize,
                                iend as isize + hi as isize,
                                j as isize + dy as isize,
                                z as isize + dz as isize,
                                RowAccess::Read,
                            );
                        }
                        touch_row(
                            &mut ctx.hierarchy,
                            c,
                            dst,
                            i as isize,
                            iend as isize,
                            j as isize,
                            z as isize,
                            RowAccess::Write,
                        );
                        units[c] += 1;
                        i = iend + 1;
                    }
                }
            }
        }
    }
    ctx.add_incore(&units, ic.t_nol, ic.t_ol);
    ctx.add_updates(wf as u64 * (n[0] * n[1] * n[2]) as u64);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_arch::Machine;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::{heat3d, wave2d};

    fn stepper_reference(stencil: &Stencil, a0: &Grid3, steps: usize) -> Grid3 {
        let mut a = a0.clone();
        let mut b = a0.clone();
        for _ in 0..steps {
            let mut tmp = Grid3::new("tmp", a.n(), a.halo(), a.fold());
            tmp.fill_halo(0.0);
            stencil.apply_reference(&[&a], &mut tmp).unwrap();
            // Keep halos identical to the wavefront path (fixed values).
            for k in 0..a.n()[2] as isize {
                for j in 0..a.n()[1] as isize {
                    for i in 0..a.n()[0] as isize {
                        b.set(i, j, k, tmp.get(i, j, k));
                    }
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        a
    }

    fn initial(n: [usize; 3]) -> Grid3 {
        let mut g = Grid3::new("a", n, [1, 1, 1], Fold::new(8, 1, 1));
        g.fill_with(|i, j, k| ((i * 3 + j * 5 + k * 7) % 11) as f64 * 0.1);
        g.fill_halo(0.0);
        g
    }

    #[test]
    fn wavefront_matches_sequential_steps() {
        let s = heat3d(1);
        let n = [16, 6, 10];
        for wf in [1, 2, 3, 4, 5] {
            let a0 = initial(n);
            let want = stepper_reference(&s, &a0, wf);
            let mut a = a0.clone();
            let mut b = a0.clone();
            b.fill_halo(0.0);
            let p = TuningParams::new([16, 6, 10], Fold::new(8, 1, 1)).wavefront(wf);
            run_wavefront_native(&s, &mut a, &mut b, &p).unwrap();
            assert!(
                a.max_abs_diff(&want).unwrap() < 1e-12,
                "wavefront depth {wf} diverges"
            );
        }
    }

    #[test]
    fn wavefront_rejects_two_input_stencils() {
        let s = wave2d(0.3);
        let mut a = Grid3::new("a", [8, 8, 1], [1, 1, 0], Fold::new(8, 1, 1));
        let mut b = a.clone();
        let p = TuningParams::new([8, 8, 1], Fold::new(8, 1, 1)).wavefront(2);
        assert!(matches!(
            run_wavefront_native(&s, &mut a, &mut b, &p),
            Err(EngineError::Unsupported { .. })
        ));
    }

    /// A scaled-down Cascade-Lake-like machine whose LLC the test domain
    /// overflows, so the wavefront benefit shows at test-friendly sizes.
    fn shrunken_clx() -> Machine {
        let mut m = Machine::cascade_lake();
        m.kind = yasksite_arch::MachineKind::Custom;
        m.cores_per_socket = 4;
        m.caches[1].size_bytes = 128 * 1024;
        m.caches[2].size_bytes = 1024 * 1024;
        m.caches[2].assoc = 16;
        m.validate().unwrap();
        m
    }

    #[test]
    fn simulated_wavefront_cuts_memory_traffic() {
        let m = shrunken_clx();
        let s = heat3d(1);
        // 2 grids x 1 MiB: well beyond the shrunken 1 MiB LLC.
        let n = [128, 32, 32];
        let wf = 4;
        let mut mem = Vec::new();
        for depth in [1usize, wf] {
            let a = initial(n);
            let b = initial(n);
            let p = TuningParams::new([128, 8, 8], Fold::new(8, 1, 1)).wavefront(depth);
            let mut ctx = SimContext::new(&m, 1);
            // Equal total time steps: wf steps as either wf plain sweeps
            // or one wavefront sweep.
            if depth == 1 {
                let mut x = a.clone();
                let mut y = b.clone();
                for _ in 0..wf {
                    apply_simulated(&s, &[&x], &y, &p, &mut ctx).unwrap();
                    x.swap_data(&mut y).unwrap();
                }
            } else {
                run_wavefront_simulated(&s, &a, &b, &p, &mut ctx).unwrap();
            }
            let run = ctx.finish();
            assert_eq!(run.updates, (wf * n[0] * n[1] * n[2]) as u64);
            mem.push(run.stats.mem_read_lines + run.stats.mem_write_lines);
        }
        assert!(
            (mem[1] as f64) < mem[0] as f64 * 0.6,
            "wavefront should cut memory traffic: {} vs {}",
            mem[1],
            mem[0]
        );
    }

    #[test]
    fn simulated_wavefront_multicore_runs() {
        let m = Machine::cascade_lake();
        let s = heat3d(1);
        let n = [64, 32, 16];
        let a = initial(n);
        let b = initial(n);
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1))
            .wavefront(3)
            .threads(4);
        let mut ctx = SimContext::new(&m, 4);
        run_wavefront_simulated(&s, &a, &b, &p, &mut ctx).unwrap();
        let run = ctx.finish();
        assert_eq!(run.updates, (3 * 64 * 32 * 16) as u64);
        for c in 0..4 {
            assert!(run.stats.boundary_lines[0][c] > 0);
        }
    }
}
