//! Engine error type.

use std::fmt;

use yasksite_stencil::StencilError;

/// Errors reported by the execution engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Grid/stencil binding problem (arity, halo, domain).
    Binding(StencilError),
    /// Invalid tuning parameters for this kernel.
    BadParams {
        /// Human-readable reason.
        reason: String,
    },
    /// The requested feature needs a capability the configuration lacks
    /// (e.g. wavefront on a stencil without z extent).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Binding(e) => write!(f, "binding error: {e}"),
            EngineError::BadParams { reason } => write!(f, "bad tuning parameters: {reason}"),
            EngineError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Binding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StencilError> for EngineError {
    fn from(e: StencilError) -> Self {
        EngineError::Binding(e)
    }
}
