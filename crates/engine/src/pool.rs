//! A persistent worker pool for native kernel execution.
//!
//! The seed engine spawned fresh OS threads through [`std::thread::scope`]
//! on **every** sweep, so a tuning session or an ODE integration paid the
//! spawn/join cost (tens of microseconds per thread) once per kernel
//! application — easily dominating small sweeps and never amortising on
//! large ones. [`ExecPool`] spawns its workers once and reuses them for
//! every sweep: callers hand [`ExecPool::run`] a batch of jobs borrowing
//! stack data, and `run` blocks until the whole batch has finished, which
//! is what makes the borrow sound (see the safety notes below).
//!
//! Determinism: the pool never decides *how* work is decomposed — callers
//! split the domain into slabs/chunks from `TuningParams::threads` alone,
//! and every job writes a disjoint region with a fixed per-point operation
//! order. Results are therefore bitwise identical for any worker count,
//! including the degenerate single-worker pool.

// The engine forbids unsafe code everywhere except this module: erasing
// the lifetime of scoped jobs is the one operation that fundamentally
// needs it (rayon and crossbeam do the same internally). The soundness
// argument is local and documented at the single `unsafe` site.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A job scoped to the caller's stack frame: it may borrow data that
/// lives at least as long as the [`ExecPool::run`] call.
pub type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Lock that shrugs off poisoning: jobs never panic while holding pool
/// locks (panics are caught before the latch is touched), so a poisoned
/// mutex only means some *other* thread died elsewhere — the protected
/// state is still consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Queue {
    jobs: VecDeque<StaticJob>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_ready: Condvar,
    jobs_run: AtomicU64,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Countdown latch: `run` blocks on it until every job of its batch has
/// completed (or panicked). The first panic payload is kept and
/// re-thrown on the calling thread.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = lock(&self.state);
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut st = lock(&self.state);
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.panic.take()
    }
}

/// Cumulative counters of a pool, for `exec.*` telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool owns.
    pub workers: usize,
    /// `run` batches dispatched to the workers (single-job batches run
    /// inline on the caller and are not counted here).
    pub sweeps: u64,
    /// Jobs executed by the workers.
    pub jobs: u64,
}

/// A persistent worker pool: threads are spawned once (per pool, or once
/// per process for [`ExecPool::global`]) and reused for every sweep.
///
/// # Examples
///
/// ```
/// use yasksite_engine::ExecPool;
///
/// let pool = ExecPool::new(2);
/// let mut halves = [0u64; 2];
/// let (lo, hi) = halves.split_at_mut(1);
/// pool.run(vec![
///     Box::new(|| lo[0] = (0..50u64).sum()),
///     Box::new(|| hi[0] = (50..100u64).sum()),
/// ]);
/// assert_eq!(halves[0] + halves[1], 4950);
/// ```
pub struct ExecPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    sweeps: AtomicU64,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl ExecPool {
    /// Spawns a pool with `workers` threads (at least one).
    #[must_use]
    pub fn new(workers: usize) -> ExecPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            jobs_run: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("yasksite-exec-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ExecPool {
            shared,
            handles,
            workers,
            sweeps: AtomicU64::new(0),
        }
    }

    /// The process-wide pool, spawned on first use and sized to the
    /// host's available parallelism. This is what a
    /// [`crate::SweepRequest`] without an explicit `.pool(...)` executes
    /// on; callers that want isolation construct their own pool.
    #[must_use]
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4);
            ExecPool::new(workers)
        })
    }

    /// Worker threads this pool owns.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative execution counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            sweeps: self.sweeps.load(Ordering::Relaxed),
            jobs: self.shared.jobs_run.load(Ordering::Relaxed),
        }
    }

    /// Runs a batch of jobs to completion. Jobs may borrow the caller's
    /// stack; `run` returns only after every job has finished. A batch of
    /// zero or one jobs runs inline on the calling thread (no queue
    /// round-trip); larger batches are executed by the workers, in queue
    /// order, concurrently up to the pool width.
    ///
    /// # Panics
    /// If a job panics, the first panic payload is re-thrown here after
    /// the rest of the batch has completed, so the pool stays usable and
    /// borrowed data is never touched after `run` returns.
    pub fn run(&self, jobs: Vec<ScopedJob<'_>>) {
        match jobs.len() {
            0 => return,
            1 => {
                let job = jobs.into_iter().next().expect("one job");
                job();
                return;
            }
            _ => {}
        }
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let latch = Latch::new(jobs.len());
        {
            let mut q = lock(&self.shared.queue);
            for job in jobs {
                // SAFETY: the only thing done with the erased job is a
                // single call by a worker, and `latch.wait()` below keeps
                // this stack frame — and therefore everything the job
                // borrows — alive until every job of the batch has
                // reported completion through the latch. The wrapper
                // counts down even when the job panics (the payload is
                // carried back and re-thrown here), and the queue never
                // drops submitted jobs before running them while the pool
                // is alive, so no borrow escapes its true lifetime.
                let job: StaticJob =
                    unsafe { std::mem::transmute::<ScopedJob<'_>, StaticJob>(job) };
                let latch = Arc::clone(&latch);
                let shared = Arc::clone(&self.shared);
                q.jobs.push_back(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    // Count the job before releasing the latch: `run`
                    // returns the moment the last latch completes, and a
                    // stats snapshot taken right after (the profiler's
                    // pool window) must already include every job of the
                    // batch.
                    shared.jobs_run.fetch_add(1, Ordering::Relaxed);
                    latch.complete(outcome.err());
                }));
            }
            self.shared.work_ready.notify_all();
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = shared
                    .work_ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                // The job's own panics are caught inside the wrapper
                // installed by `run`, which also counts the job into
                // `jobs_run` before releasing the batch latch.
                job();
            }
            None => return,
        }
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_scoped_jobs_on_borrowed_data() {
        let pool = ExecPool::new(3);
        let mut data = vec![0usize; 8];
        let chunks: Vec<&mut [usize]> = data.chunks_mut(2).collect();
        let jobs: Vec<ScopedJob<'_>> = chunks
            .into_iter()
            .enumerate()
            .map(|(t, chunk)| {
                Box::new(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = t * 10 + i;
                    }
                }) as ScopedJob<'_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(data, vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn pool_is_reused_across_sweeps() {
        let pool = ExecPool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            let jobs: Vec<ScopedJob<'_>> = (0..4)
                .map(|_| {
                    Box::new(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as ScopedJob<'_>
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 40);
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.sweeps, 10);
        assert_eq!(stats.jobs, 40);
    }

    #[test]
    fn single_job_batches_run_inline() {
        let pool = ExecPool::new(2);
        let mut x = 0;
        pool.run(vec![Box::new(|| x = 7)]);
        assert_eq!(x, 7);
        assert_eq!(pool.stats().sweeps, 0); // inline, no dispatch
        pool.run(Vec::new()); // empty batch is a no-op
        assert_eq!(pool.stats().jobs, 0);
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let pool = ExecPool::new(1);
        let mut out = [0u32; 33];
        let jobs: Vec<ScopedJob<'_>> = out
            .iter_mut()
            .enumerate()
            .map(|(i, v)| Box::new(move || *v = i as u32 + 1) as ScopedJob<'_>)
            .collect();
        pool.run(jobs);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let pool = ExecPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| {}),
                Box::new(|| panic!("boom in job")),
                Box::new(|| {}),
            ]);
        }));
        assert!(caught.is_err());
        // The pool must still work after a job panicked.
        let mut ok = [false; 2];
        let (a, b) = ok.split_at_mut(1);
        pool.run(vec![Box::new(|| a[0] = true), Box::new(|| b[0] = true)]);
        assert!(ok[0] && ok[1]);
    }

    #[test]
    fn global_pool_exists_and_is_stable() {
        let p1 = ExecPool::global() as *const ExecPool;
        let p2 = ExecPool::global() as *const ExecPool;
        assert_eq!(p1, p2);
        assert!(ExecPool::global().workers() >= 1);
    }
}
