//! Simulated execution backend: drives the cache-hierarchy simulator with
//! the exact iteration order of the blocked kernel.

use yasksite_arch::Machine;
use yasksite_ecm::incore::incore;
use yasksite_grid::Grid3;
use yasksite_memsim::{compose_time, CoreWork, HierarchyStats, MemHierarchy, TimeBreakdown};
use yasksite_stencil::Stencil;

use crate::error::EngineError;
use crate::params::TuningParams;

/// A simulation context: the machine's cache hierarchy plus bookkeeping
/// that persists across kernel applications (so multi-sweep workloads see
/// warm caches, exactly like consecutive time steps on real hardware).
#[derive(Debug)]
pub struct SimContext {
    /// The simulated hierarchy.
    pub hierarchy: MemHierarchy,
    /// Accumulated in-core cycles per core across applications.
    incore_cycles: Vec<f64>,
    /// Accumulated `T_OL` lower bound per core.
    ol_cycles: Vec<f64>,
    updates: u64,
}

impl SimContext {
    /// Creates a context for `machine` with `cores` active cores.
    #[must_use]
    pub fn new(machine: &Machine, cores: usize) -> Self {
        SimContext {
            hierarchy: MemHierarchy::new(machine, cores),
            incore_cycles: vec![0.0; cores],
            ol_cycles: vec![0.0; cores],
            updates: 0,
        }
    }

    /// The machine being simulated.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        self.hierarchy.machine()
    }

    /// Active cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.hierarchy.ncores()
    }

    /// Total updates simulated so far.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Accounts per-core in-core cycles for `units[c]` units of work.
    pub(crate) fn add_incore(&mut self, units: &[u64], t_nol: f64, t_ol: f64) {
        for (c, &u) in units.iter().enumerate() {
            self.incore_cycles[c] += u as f64 * t_nol;
            self.ol_cycles[c] += u as f64 * t_ol;
        }
    }

    /// Accounts simulated lattice updates.
    pub(crate) fn add_updates(&mut self, u: u64) {
        self.updates += u;
    }

    /// Composes the accumulated traffic and in-core work into a runtime
    /// estimate for everything simulated in this context so far.
    #[must_use]
    pub fn finish(&self) -> SimulatedRun {
        let stats = self.hierarchy.stats();
        let work: Vec<CoreWork> = self
            .incore_cycles
            .iter()
            .map(|&c| CoreWork { incore_cycles: c })
            .collect();
        let machine = self.hierarchy.machine();
        let mut time = compose_time(machine, &stats, &work);
        // T_OL overlaps with transfers but still bounds the runtime.
        let ol_bound = self.ol_cycles.iter().copied().fold(0.0f64, f64::max);
        if ol_bound > time.total_cycles {
            time.total_cycles = ol_bound;
            time.seconds = ol_bound / (machine.freq_ghz * 1e9);
        }
        let mlups = self.updates as f64 / time.seconds.max(1e-30) / 1e6;
        SimulatedRun {
            time,
            stats,
            updates: self.updates,
            mlups,
        }
    }
}

/// Result of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimulatedRun {
    /// Composed runtime estimate.
    pub time: TimeBreakdown,
    /// Raw traffic counters.
    pub stats: HierarchyStats,
    /// Lattice updates simulated.
    pub updates: u64,
    /// Estimated MLUP/s.
    pub mlups: f64,
}

/// Read groups: per distinct `(grid, dy, dz)` row, the x-extent accessed.
pub(crate) struct Groups {
    pub read: Vec<(usize, i32, i32, i32, i32)>,
}

impl Groups {
    pub(crate) fn of(stencil: &Stencil) -> Groups {
        let info = stencil.info();
        let mut read: Vec<(usize, i32, i32, i32, i32)> = Vec::new();
        for (g, o) in &info.offsets {
            match read
                .iter_mut()
                .find(|(gg, dy, dz, _, _)| *gg == *g && *dy == o[1] && *dz == o[2])
            {
                Some((_, _, _, lo, hi)) => {
                    *lo = (*lo).min(o[0]);
                    *hi = (*hi).max(o[0]);
                }
                None => read.push((*g, o[1], o[2], o[0], o[0])),
            }
        }
        Groups { read }
    }
}

/// How a row of elements is touched by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowAccess {
    /// Plain load.
    Read,
    /// Write-allocate store.
    Write,
    /// Non-temporal (streaming) store.
    WriteNt,
}

/// Issues the cache lines touched by accessing row `(j+dy, k+dz)` of
/// `grid` over x ∈ `[x0, x1]` (inclusive), stepping at fold granularity.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn touch_row(
    h: &mut MemHierarchy,
    core: usize,
    grid: &Grid3,
    x0: isize,
    x1: isize,
    j: isize,
    k: isize,
    access: RowAccess,
) {
    let step = grid.fold().x.max(1) as isize;
    let mut last_line = u64::MAX;
    let mut x = x0;
    loop {
        let a = grid.addr(x, j, k);
        let line = a >> 6;
        if line != last_line {
            match access {
                RowAccess::Read => h.read(core, a),
                RowAccess::Write => h.write(core, a),
                RowAccess::WriteNt => h.write_nt(core, a),
            }
            last_line = line;
        }
        if x >= x1 {
            break;
        }
        x = (x + step).min(x1);
    }
}

/// Simulates one application of `stencil` over the domain of `out` with
/// the blocked loop structure, `params.threads` simulated cores
/// (contiguous z-slabs, blocks interleaved round-robin on the shared
/// levels), accumulating traffic into `ctx`.
///
/// # Errors
/// Returns binding/parameter errors; the context's core count must equal
/// `params.threads`.
#[allow(clippy::needless_range_loop)]
pub fn apply_simulated(
    stencil: &Stencil,
    inputs: &[&Grid3],
    out: &Grid3,
    params: &TuningParams,
    ctx: &mut SimContext,
) -> Result<(), EngineError> {
    stencil.check_bindings(inputs, out)?;
    params
        .validate(out.n())
        .map_err(|reason| EngineError::BadParams { reason })?;
    if ctx.cores() != params.threads {
        return Err(EngineError::BadParams {
            reason: format!(
                "context has {} cores, params ask for {}",
                ctx.cores(),
                params.threads
            ),
        });
    }

    let n = out.n();
    let block = params.clipped_block(n);
    let groups = Groups::of(stencil);
    let info = stencil.info();
    let ic = incore(&info, &ctx.hierarchy.machine().ports, params.fold);

    // Split the block list into contiguous per-core chunks (OpenMP static
    // schedule over the collapsed block loops): keeps each core's blocks
    // spatially adjacent while still splitting work when only one z-block
    // exists.
    let mut all_blocks: Vec<(usize, usize, usize)> = Vec::new();
    for kb in (0..n[2]).step_by(block[2]) {
        for jb in (0..n[1]).step_by(block[1]) {
            for ib in (0..n[0]).step_by(block[0]) {
                all_blocks.push((kb, jb, ib));
            }
        }
    }
    let cores = ctx.cores();
    let nb = all_blocks.len();
    let mut per_core_blocks: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); cores];
    for (c, chunk) in per_core_blocks.iter_mut().enumerate() {
        chunk.extend(&all_blocks[c * nb / cores..(c + 1) * nb / cores]);
    }
    let rounds = per_core_blocks.iter().map(Vec::len).max().unwrap_or(0);
    for r in 0..rounds {
        for c in 0..ctx.cores() {
            let Some(&(kb, jb, ib)) = per_core_blocks[c].get(r) else {
                continue;
            };
            let kz1 = (kb + block[2]).min(n[2]);
            let jy1 = (jb + block[1]).min(n[1]);
            let ix1 = (ib + block[0]).min(n[0]);
            let sub = params.sub_block.unwrap_or(block).map(|e| e.max(1));
            let mut units = 0u64;
            for skb in (kb..kz1).step_by(sub[2]) {
                let skz = (skb + sub[2]).min(kz1);
                for sjb in (jb..jy1).step_by(sub[1]) {
                    let sjy = (sjb + sub[1]).min(jy1);
                    for sib in (ib..ix1).step_by(sub[0]) {
                        let six = (sib + sub[0]).min(ix1);
                        for k in skb..skz {
                            for j in sjb..sjy {
                                let mut i = sib;
                                while i < six {
                                    let iend = (i + 8).min(six) - 1;
                                    for &(g, dy, dz, lo, hi) in &groups.read {
                                        touch_row(
                                            &mut ctx.hierarchy,
                                            c,
                                            inputs[g],
                                            i as isize + lo as isize,
                                            iend as isize + hi as isize,
                                            j as isize + dy as isize,
                                            k as isize + dz as isize,
                                            RowAccess::Read,
                                        );
                                    }
                                    let store = if params.streaming_stores {
                                        RowAccess::WriteNt
                                    } else {
                                        RowAccess::Write
                                    };
                                    touch_row(
                                        &mut ctx.hierarchy,
                                        c,
                                        out,
                                        i as isize,
                                        iend as isize,
                                        j as isize,
                                        k as isize,
                                        store,
                                    );
                                    units += 1;
                                    i = iend + 1;
                                }
                            }
                        }
                    }
                }
            }
            ctx.incore_cycles[c] += units as f64 * ic.t_nol;
            ctx.ol_cycles[c] += units as f64 * ic.t_ol;
            ctx.updates += (kz1 - kb) as u64 * (jy1 - jb) as u64 * (ix1 - ib) as u64;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasksite_grid::Fold;
    use yasksite_stencil::builders::heat3d;

    fn grids(n: [usize; 3]) -> (Grid3, Grid3) {
        let fold = Fold::new(8, 1, 1);
        (
            Grid3::new("u", n, [1, 1, 1], fold),
            Grid3::new("o", n, [1, 1, 1], fold),
        )
    }

    #[test]
    fn small_domain_traffic_matches_footprint() {
        // Domain fits L2: a single sweep reads each input line once from
        // memory (compulsory) plus write-allocates the output.
        let m = Machine::cascade_lake();
        let n = [64, 32, 32];
        let (u, o) = grids(n);
        let s = heat3d(1);
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1));
        let mut ctx = SimContext::new(&m, 1);
        apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
        let run = ctx.finish();
        assert_eq!(run.updates, (64 * 32 * 32) as u64);
        // Memory reads ≈ allocated footprint of both grids in lines.
        let footprint_lines = ((u.bytes() + o.bytes()) / 64) as u64;
        assert!(
            run.stats.mem_read_lines <= footprint_lines,
            "{} > {footprint_lines}",
            run.stats.mem_read_lines
        );
        assert!(run.stats.mem_read_lines >= footprint_lines / 2);
    }

    #[test]
    fn second_sweep_on_cached_domain_is_cheap() {
        let m = Machine::cascade_lake();
        let n = [64, 16, 16]; // 2 grids * 160 KB: fits L2
        let (u, o) = grids(n);
        let s = heat3d(1);
        let p = TuningParams::new([64, 16, 16], Fold::new(8, 1, 1));
        let mut ctx = SimContext::new(&m, 1);
        apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
        let cold = ctx.hierarchy.stats().mem_read_lines;
        apply_simulated(&s, &[&o], &u, &p, &mut ctx).unwrap();
        let warm = ctx.hierarchy.stats().mem_read_lines - cold;
        assert!(warm < cold / 4, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn multicore_splits_work() {
        let m = Machine::cascade_lake();
        let n = [64, 16, 32];
        let (u, o) = grids(n);
        let s = heat3d(1);
        let p = TuningParams::new([64, 8, 8], Fold::new(8, 1, 1)).threads(4);
        let mut ctx = SimContext::new(&m, 4);
        apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
        let run = ctx.finish();
        assert_eq!(run.updates, (64 * 16 * 32) as u64);
        // Every core moved some lines across its private boundary.
        for c in 0..4 {
            assert!(run.stats.boundary_lines[0][c] > 0, "core {c} idle");
        }
    }

    #[test]
    fn core_count_mismatch_rejected() {
        let m = Machine::cascade_lake();
        let (u, o) = grids([16, 8, 8]);
        let s = heat3d(1);
        let p = TuningParams::new([8, 8, 8], Fold::new(8, 1, 1)).threads(2);
        let mut ctx = SimContext::new(&m, 1);
        assert!(matches!(
            apply_simulated(&s, &[&u], &o, &p, &mut ctx),
            Err(EngineError::BadParams { .. })
        ));
    }

    #[test]
    fn sub_blocking_changes_traversal_not_traffic_totals() {
        // Sub-blocks only reorder accesses inside a block; compulsory
        // memory traffic stays identical, while L1 traffic may change.
        let m = Machine::cascade_lake();
        let n = [64, 32, 16];
        let s = heat3d(1);
        let fold = Fold::new(8, 1, 1);
        let mut mem = Vec::new();
        for sub in [None, Some([16, 4, 4])] {
            let (u, o) = grids(n);
            let mut p = TuningParams::new([64, 16, 16], fold);
            p.sub_block = sub;
            let mut ctx = SimContext::new(&m, 1);
            apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
            let st = ctx.finish().stats;
            mem.push(st.mem_read_lines);
        }
        let diff = mem[0].abs_diff(mem[1]) as f64;
        assert!(
            diff / (mem[0] as f64) < 0.05,
            "compulsory traffic diverged: {mem:?}"
        );
    }

    #[test]
    fn streaming_stores_cut_write_allocate_reads() {
        let m = Machine::cascade_lake();
        let n = [256, 64, 16]; // output exceeds caches between sweeps
        let s = heat3d(1);
        let mut reads = Vec::new();
        for nt in [false, true] {
            let (u, o) = grids(n);
            let p = TuningParams::new([256, 8, 8], Fold::new(8, 1, 1)).streaming_stores(nt);
            let mut ctx = SimContext::new(&m, 1);
            apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
            reads.push(ctx.finish().stats.mem_read_lines);
        }
        // NT stores avoid reading the output stream: roughly one third of
        // the cold-sweep read traffic disappears.
        assert!(
            (reads[1] as f64) < reads[0] as f64 * 0.75,
            "NT {} vs WA {}",
            reads[1],
            reads[0]
        );
    }

    #[test]
    fn blocking_reduces_memory_traffic_on_large_grids() {
        let m = Machine::cascade_lake();
        let n = [512, 96, 24]; // plane > L2, domain > L2
        let s = heat3d(1);
        let fold = Fold::new(8, 1, 1);
        let mut traffic = Vec::new();
        for block in [[512, 96, 24], [512, 8, 8]] {
            let (u, o) = grids(n);
            let p = TuningParams::new(block, fold);
            let mut ctx = SimContext::new(&m, 1);
            apply_simulated(&s, &[&u], &o, &p, &mut ctx).unwrap();
            traffic.push(ctx.finish().stats.boundary_total(1));
            drop((u, o));
        }
        // Blocked traversal moves no more L2<->L3 lines than unblocked.
        assert!(traffic[1] <= traffic[0], "{} > {}", traffic[1], traffic[0]);
    }
}
