//! The stencil kernel engine — this reproduction's stand-in for Intel YASK.
//!
//! YASK turns a stencil specification into an optimised kernel with a fixed
//! loop structure: the domain is cut into *blocks* (cache blocking), blocks
//! are visited by OpenMP threads, and inside a block the traversal runs
//! x-innermost over vector-folded bricks. Optionally, *wavefront temporal
//! blocking* sweeps several time steps through the domain in one pass.
//! This crate reimplements that structure with three interchangeable
//! execution backends:
//!
//! * **native** ([`SweepRequest::apply`], [`SweepRequest::run_wavefront`]):
//!   really runs the kernel on the host through a specialisation ladder —
//!   the explicitly vectorised folded tier, the scalar row kernels, the
//!   compiled tape interpreter, or the layout-agnostic generic path —
//!   and reports which tier executed; used for host measurements and as
//!   the correctness oracle's subject.
//! * **simulated** ([`apply_simulated`], [`run_wavefront_simulated`]):
//!   walks the *same* iteration order but issues the touched cache lines
//!   to [`yasksite_memsim::MemHierarchy`], producing the "measured"
//!   numbers for the paper's Cascade Lake and Rome configurations.
//! * **codegen** ([`codegen`]): emits the C kernel source YASK would
//!   generate for the configuration, for inspection and generation-cost
//!   accounting.
//!
//! # Examples
//!
//! ```
//! use yasksite_engine::{SweepRequest, Tier, TierPolicy, TuningParams};
//! use yasksite_grid::{Fold, Grid3};
//! use yasksite_stencil::builders::heat3d;
//!
//! let s = heat3d(1);
//! let mut u = Grid3::new("u", [32, 32, 32], [1, 1, 1], Fold::new(8, 1, 1));
//! u.fill_with(|i, j, k| (i + j + k) as f64);
//! let mut out = Grid3::new("out", [32, 32, 32], [1, 1, 1], Fold::new(8, 1, 1));
//! let params = TuningParams::new([32, 8, 8], Fold::new(8, 1, 1));
//! let report = SweepRequest::new(&params)
//!     .tier(TierPolicy::Auto)
//!     .apply(&s, &[&u], &mut out)?;
//! assert!(report.seconds >= 0.0);
//! assert_eq!(report.tier, Tier::Folded);
//! # Ok::<(), yasksite_engine::EngineError>(())
//! ```

// Unsafe is denied crate-wide; the single exception is the worker pool's
// lifetime erasure of scoped jobs (see `pool.rs` for the allow and the
// documented soundness argument).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod compile;
mod error;
mod fold_tier;
mod native;
mod params;
mod pool;
mod profile;
mod rank;
mod simulate;
mod sweep;
mod wavefront;

pub use codegen::{codegen, CodegenOutput};
pub use compile::CompiledStencil;
pub use error::EngineError;
pub use native::NativeRun;
pub use params::TuningParams;
pub use pool::{ExecPool, PoolStats, ScopedJob};
pub use profile::{IntervalStats, PhaseStat, PoolWindow, ProfileReport, SweepProfiler};
pub use rank::{predict_multirank, Interconnect, MultiRankPrediction, RankDecomposition};
pub use simulate::{apply_simulated, SimContext, SimulatedRun};
pub use sweep::{
    plan_tier, plan_tier_with, tier_reason_degraded, SweepReport, SweepRequest, Tier, TierPolicy,
    FORCE_TIER_ENV,
};
pub use wavefront::run_wavefront_simulated;
