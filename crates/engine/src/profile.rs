//! Opt-in sweep profiler: phase, chunk and plane timers around the
//! native execution paths.
//!
//! The profiler follows the same zero-cost-when-off discipline as the
//! telemetry handle: a [`SweepProfiler::disabled`] value carries
//! `Option::None` and every hook is a single branch on it — no clock
//! read, no lock, no allocation — so an unprofiled
//! [`crate::SweepRequest`] runs the identical code path as a profiled
//! one. Profiling is purely observational: it reads clocks
//! around the kernel code, never inside the numeric loops, so enabling
//! it cannot change results (a property the cross-crate proptest suite
//! pins down).
//!
//! What is recorded when enabled:
//!
//! * **phases** — wall time per named phase (`compile`, `sweep`,
//!   `wavefront`), aggregated as total + count;
//! * **chunks** — wall time of every per-slab / per-row-chunk job the
//!   worker pool executed, from which the report derives the chunk
//!   imbalance `(max − min) / max`;
//! * **planes** — wall time of every skewed wavefront plane update,
//!   timed on the dispatching thread;
//! * **pool window** — [`PoolStats`] deltas over the profiled region,
//!   from which the report derives occupancy
//!   `jobs / (sweeps × workers)`.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::pool::PoolStats;

/// Raw profile data behind the enabled profiler's mutex.
#[derive(Debug, Default)]
struct ProfData {
    /// `(phase name, total seconds, count)`, linear-scanned (few phases).
    phases: Vec<(&'static str, f64, u64)>,
    chunk_seconds: Vec<f64>,
    plane_seconds: Vec<f64>,
    pool_start: Option<PoolStats>,
    pool_end: Option<PoolStats>,
}

/// Collects per-sweep timing when enabled; a total no-op when disabled.
/// Shared by reference with pool worker threads (all mutation goes
/// through the internal mutex).
#[derive(Debug)]
pub struct SweepProfiler {
    inner: Option<Mutex<ProfData>>,
}

impl Default for SweepProfiler {
    fn default() -> Self {
        SweepProfiler::disabled()
    }
}

impl SweepProfiler {
    /// The no-op profiler: every hook is one `Option` branch.
    #[must_use]
    pub fn disabled() -> Self {
        SweepProfiler { inner: None }
    }

    /// A recording profiler.
    #[must_use]
    pub fn enabled() -> Self {
        SweepProfiler {
            inner: Some(Mutex::new(ProfData::default())),
        }
    }

    /// Whether this profiler records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a timing interval: `None` (free) when disabled.
    #[inline]
    pub(crate) fn start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Ends a chunk interval opened by [`SweepProfiler::start`].
    #[inline]
    pub(crate) fn chunk_done(&self, t0: Option<Instant>) {
        if let (Some(m), Some(t0)) = (&self.inner, t0) {
            let secs = t0.elapsed().as_secs_f64();
            m.lock()
                .expect("profiler poisoned")
                .chunk_seconds
                .push(secs);
        }
    }

    /// Ends a wavefront-plane interval opened by [`SweepProfiler::start`].
    #[inline]
    pub(crate) fn plane_done(&self, t0: Option<Instant>) {
        if let (Some(m), Some(t0)) = (&self.inner, t0) {
            let secs = t0.elapsed().as_secs_f64();
            m.lock()
                .expect("profiler poisoned")
                .plane_seconds
                .push(secs);
        }
    }

    /// Ends a named phase interval opened by [`SweepProfiler::start`].
    #[inline]
    pub(crate) fn phase_done(&self, name: &'static str, t0: Option<Instant>) {
        if let (Some(m), Some(t0)) = (&self.inner, t0) {
            let secs = t0.elapsed().as_secs_f64();
            let mut d = m.lock().expect("profiler poisoned");
            match d.phases.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, total, count)) => {
                    *total += secs;
                    *count += 1;
                }
                None => d.phases.push((name, secs, 1)),
            }
        }
    }

    /// Records the pool counters at the start of the profiled region
    /// (first call wins) and at the end (last call wins).
    pub(crate) fn pool_window(&self, stats: PoolStats) {
        if let Some(m) = &self.inner {
            let mut d = m.lock().expect("profiler poisoned");
            if d.pool_start.is_none() {
                d.pool_start = Some(stats);
            }
            d.pool_end = Some(stats);
        }
    }

    /// Snapshots the collected data into a report. Callable repeatedly;
    /// recording continues afterwards.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        let Some(m) = &self.inner else {
            return ProfileReport::default();
        };
        let d = m.lock().expect("profiler poisoned");
        let phases = d
            .phases
            .iter()
            .map(|&(name, seconds, count)| PhaseStat {
                name,
                seconds,
                count,
            })
            .collect();
        let pool = match (d.pool_start, d.pool_end) {
            (Some(s), Some(e)) => {
                let sweeps = e.sweeps.saturating_sub(s.sweeps);
                let jobs = e.jobs.saturating_sub(s.jobs);
                let occupancy = if sweeps > 0 && e.workers > 0 {
                    jobs as f64 / (sweeps as f64 * e.workers as f64)
                } else {
                    0.0
                };
                Some(PoolWindow {
                    workers: e.workers,
                    sweeps,
                    jobs,
                    occupancy,
                })
            }
            _ => None,
        };
        ProfileReport {
            enabled: true,
            phases,
            chunks: interval_stats(&d.chunk_seconds),
            planes: interval_stats(&d.plane_seconds),
            pool,
        }
    }
}

fn interval_stats(samples: &[f64]) -> Option<IntervalStats> {
    if samples.is_empty() {
        return None;
    }
    let total: f64 = samples.iter().sum();
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let imbalance = if samples.len() >= 2 && max > 0.0 {
        (max - min) / max
    } else {
        0.0
    };
    Some(IntervalStats {
        count: samples.len() as u64,
        total_seconds: total,
        min_seconds: min,
        max_seconds: max,
        imbalance,
    })
}

/// Aggregated wall time of one named phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStat {
    /// Phase name (`"compile"`, `"sweep"`, `"wavefront"`).
    pub name: &'static str,
    /// Total wall seconds across all intervals of this phase.
    pub seconds: f64,
    /// Intervals recorded.
    pub count: u64,
}

/// Aggregated statistics of a set of timed intervals (chunks or planes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    /// Intervals recorded.
    pub count: u64,
    /// Sum of interval wall times.
    pub total_seconds: f64,
    /// Shortest interval.
    pub min_seconds: f64,
    /// Longest interval.
    pub max_seconds: f64,
    /// Load imbalance `(max − min) / max`; 0 with fewer than two
    /// intervals.
    pub imbalance: f64,
}

/// Pool activity over the profiled region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolWindow {
    /// Worker threads the pool owns.
    pub workers: usize,
    /// Multi-job batches dispatched in the window.
    pub sweeps: u64,
    /// Jobs executed by workers in the window.
    pub jobs: u64,
    /// `jobs / (sweeps × workers)`: 1.0 means every worker had a job in
    /// every sweep; 0 when no multi-job batch ran (single-job batches
    /// execute inline on the caller and never reach the workers).
    pub occupancy: f64,
}

/// Everything the profiler collected, ready for rendering or export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Whether profiling was on (`false` reports are all-empty).
    pub enabled: bool,
    /// Per-phase totals, in first-recorded order.
    pub phases: Vec<PhaseStat>,
    /// Per-chunk (pool job) timing, if any chunks ran.
    pub chunks: Option<IntervalStats>,
    /// Per-plane (wavefront) timing, if any planes ran.
    pub planes: Option<IntervalStats>,
    /// Pool counter deltas, if a window was recorded.
    pub pool: Option<PoolWindow>,
}

impl ProfileReport {
    /// Human-readable multi-line rendering.
    #[must_use]
    pub fn render(&self) -> String {
        if !self.enabled {
            return "profile: (disabled)\n".to_string();
        }
        let mut out = String::from("profile:\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "  phase  {:<12} {:>10.6}s  x{}",
                p.name, p.seconds, p.count
            );
        }
        if let Some(c) = &self.chunks {
            let _ = writeln!(
                out,
                "  chunks {:>6}  total {:.6}s  min {:.6}s  max {:.6}s  imbalance {:.3}",
                c.count, c.total_seconds, c.min_seconds, c.max_seconds, c.imbalance
            );
        }
        if let Some(p) = &self.planes {
            let _ = writeln!(
                out,
                "  planes {:>6}  total {:.6}s  min {:.6}s  max {:.6}s  imbalance {:.3}",
                p.count, p.total_seconds, p.min_seconds, p.max_seconds, p.imbalance
            );
        }
        if let Some(w) = &self.pool {
            let _ = writeln!(
                out,
                "  pool   {} workers  {} sweeps  {} jobs  occupancy {:.3}",
                w.workers, w.sweeps, w.jobs, w.occupancy
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = SweepProfiler::disabled();
        assert!(!p.is_enabled());
        let t = p.start();
        assert!(t.is_none());
        p.chunk_done(t);
        p.plane_done(t);
        p.phase_done("sweep", t);
        p.pool_window(PoolStats {
            workers: 4,
            sweeps: 1,
            jobs: 4,
        });
        let r = p.report();
        assert!(!r.enabled);
        assert!(r.phases.is_empty() && r.chunks.is_none() && r.pool.is_none());
        assert!(r.render().contains("disabled"));
    }

    #[test]
    fn enabled_profiler_aggregates_phases_and_chunks() {
        let p = SweepProfiler::enabled();
        for _ in 0..3 {
            let t = p.start();
            assert!(t.is_some());
            p.chunk_done(t);
        }
        let t = p.start();
        p.phase_done("sweep", t);
        let t = p.start();
        p.phase_done("sweep", t);
        let t = p.start();
        p.plane_done(t);
        let r = p.report();
        assert!(r.enabled);
        let sweep = r.phases.iter().find(|s| s.name == "sweep").unwrap();
        assert_eq!(sweep.count, 2);
        assert!(sweep.seconds >= 0.0);
        let chunks = r.chunks.unwrap();
        assert_eq!(chunks.count, 3);
        assert!(chunks.min_seconds <= chunks.max_seconds);
        assert!((0.0..=1.0).contains(&chunks.imbalance));
        assert_eq!(r.planes.unwrap().count, 1);
        assert!(r.render().contains("phase  sweep"));
    }

    #[test]
    fn pool_window_derives_occupancy() {
        let p = SweepProfiler::enabled();
        p.pool_window(PoolStats {
            workers: 4,
            sweeps: 10,
            jobs: 40,
        });
        p.pool_window(PoolStats {
            workers: 4,
            sweeps: 12,
            jobs: 46,
        });
        let w = p.report().pool.unwrap();
        assert_eq!((w.sweeps, w.jobs), (2, 6));
        assert!((w.occupancy - 6.0 / 8.0).abs() < 1e-12);

        // No multi-job batch in the window: occupancy guards sweeps == 0.
        let p = SweepProfiler::enabled();
        let s = PoolStats {
            workers: 4,
            sweeps: 7,
            jobs: 21,
        };
        p.pool_window(s);
        p.pool_window(s);
        assert_eq!(p.report().pool.unwrap().occupancy, 0.0);
    }

    #[test]
    fn profiler_is_shareable_across_threads() {
        let p = SweepProfiler::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let t = p.start();
                    p.chunk_done(t);
                });
            }
        });
        assert_eq!(p.report().chunks.unwrap().count, 4);
    }
}
